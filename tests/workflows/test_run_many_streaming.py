"""Streaming semantics of :func:`run_many_iter`.

``run_many`` waits for the whole batch; ``run_many_iter`` must hand
results back incrementally — the first repetitions arrive while later
(or slower) ones are still running.  These tests pin that contract
without relying on wall-clock timing: the serial test counts factory
calls at first-yield, and the thread test gates a later repetition on
an explicit event that is only set *after* the first result arrives.
"""

import functools
import threading

import pytest

from repro.workflows import ImageProcessingWorkflow, run_many, run_many_iter
from repro.workflows.runner import _adaptive_chunk_count

SCALE = 0.03


class _CountingFactory:
    """Factory that records how many workflows it has built."""

    def __init__(self):
        self.calls = 0

    def __call__(self):
        self.calls += 1
        return ImageProcessingWorkflow(scale=SCALE)


def test_serial_iter_is_lazy():
    factory = _CountingFactory()
    gen = run_many_iter(factory, n_runs=3, seed=7, executor="serial")
    assert factory.calls == 0  # nothing ran at generator creation
    first = next(gen)
    assert first.run_index == 0
    assert factory.calls == 1  # runs 1 and 2 have not started yet
    rest = list(gen)
    assert [r.run_index for r in rest] == [1, 2]
    assert factory.calls == 3


def test_thread_iter_streams_before_slowest_completes():
    # Whichever repetition's factory runs first blocks on a gate we
    # only open after the *other* repetition's result has been
    # yielded.  If run_many_iter buffered until the pool drained,
    # next() would deadlock — the threading.Timer releases the gate
    # after 30s so a regression fails the assert instead of hanging.
    gate = threading.Event()
    safety = threading.Timer(30.0, gate.set)
    safety.start()
    calls = []
    lock = threading.Lock()

    def gated_factory():
        with lock:
            calls.append(None)
            should_block = len(calls) == 1
        if should_block:
            gate.wait()
        return ImageProcessingWorkflow(scale=SCALE)

    try:
        gen = run_many_iter(gated_factory, n_runs=2, seed=7,
                            workers=2, executor="thread")
        first = next(gen)
        streamed_early = not gate.is_set()
        gate.set()
        rest = list(gen)
    finally:
        safety.cancel()
        gate.set()

    assert streamed_early, "first result only arrived after the gate " \
        "timed out — run_many_iter is not streaming"
    assert {r.run_index for r in [first, *rest]} == {0, 1}


def test_iter_matches_run_many_results():
    factory = functools.partial(ImageProcessingWorkflow, scale=SCALE)
    batch = run_many(factory, n_runs=3, seed=7, executor="serial")
    streamed = sorted(
        run_many_iter(factory, n_runs=3, seed=7, workers=2,
                      executor="process"),
        key=lambda r: r.run_index)
    assert [r.run_index for r in streamed] == [0, 1, 2]
    for a, b in zip(batch, streamed):
        assert a.data.events == b.data.events
        assert a.data.logs == b.data.logs


def test_unknown_executor_rejected_at_first_next():
    gen = run_many_iter(lambda: None, n_runs=1, executor="mpi")
    with pytest.raises(ValueError, match="executor must be one of"):
        next(gen)


def test_adaptive_chunk_count_bounds():
    # Few runs: one chunk per repetition (capped by the oversubscribe
    # ceiling) so every core starts immediately.
    assert _adaptive_chunk_count(1, 4) == 1
    assert _adaptive_chunk_count(3, 4) == 3
    assert _adaptive_chunk_count(16, 4) == 16
    # Many runs: ~4 chunks per worker for pool rebalancing.
    assert _adaptive_chunk_count(1000, 4) == 16
    assert _adaptive_chunk_count(50, 2) == 8
    # Never more chunks than runs.
    for n_runs in (1, 2, 5, 9, 64):
        for workers in (1, 2, 4, 8):
            assert _adaptive_chunk_count(n_runs, workers) <= n_runs or \
                _adaptive_chunk_count(n_runs, workers) <= workers * 4
