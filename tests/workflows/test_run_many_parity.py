"""Executor parity: repetition fan-out must never change the data.

The paper's repetition protocol multiplies engine cost, so ``run_many``
fans repetitions out over thread or process pools — but every number in
the evaluation flows from the event streams, so the parity contract is
strict: for the same ``(seed, run_index)``, serial, threaded, and
process execution must produce byte-identical event streams.  The
process backend uses a fork context precisely so children inherit the
parent's hash randomization (set-iteration order feeds scheduler tie
order), keeping cross-executor streams identical without pinning
``PYTHONHASHSEED``.
"""

import functools
import json
import warnings

import pytest

from repro.workflows import ImageProcessingWorkflow, run_many
from repro.workflows.runner import EXECUTORS, _chunk_indices

SCALE = 0.03
N_RUNS = 3


def _factory():
    return functools.partial(ImageProcessingWorkflow, scale=SCALE)


def _stream_bytes(result) -> bytes:
    return json.dumps(result.data.events, sort_keys=True).encode()


@pytest.fixture(scope="module")
def serial_runs():
    return run_many(_factory(), n_runs=N_RUNS, seed=7, executor="serial")


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_streams_identical_across_executors(serial_runs, executor):
    runs = run_many(_factory(), n_runs=N_RUNS, seed=7,
                    workers=2, executor=executor)
    assert [r.run_index for r in runs] == list(range(N_RUNS))
    for serial, parallel in zip(serial_runs, runs):
        assert _stream_bytes(serial) == _stream_bytes(parallel)
        assert serial.data.logs == parallel.data.logs


def test_auto_prefers_process_when_viable(serial_runs):
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # no fallback warning expected
        runs = run_many(_factory(), n_runs=N_RUNS, seed=7,
                        workers=2, executor="auto")
    for serial, parallel in zip(serial_runs, runs):
        assert _stream_bytes(serial) == _stream_bytes(parallel)


def test_process_falls_back_to_threads_for_unpicklable_factory():
    factory = lambda: ImageProcessingWorkflow(scale=SCALE)  # noqa: E731
    with pytest.warns(RuntimeWarning, match="falling back to threads"):
        runs = run_many(factory, n_runs=2, seed=7,
                        workers=2, executor="process")
    assert [r.run_index for r in runs] == [0, 1]


def test_process_falls_back_when_observers_present():
    class Monitor:
        def attach(self, env):
            env.add_monitor(self)

        def on_schedule(self, *a):
            pass

        def on_step(self, *a):
            pass

        def before_callback(self, *a):
            pass

    with pytest.warns(RuntimeWarning, match="falling back to threads"):
        runs = run_many(_factory(), n_runs=2, seed=7, workers=2,
                        executor="process", monitor=Monitor())
    assert len(runs) == 2


def test_unknown_executor_rejected():
    with pytest.raises(ValueError, match="executor must be one of"):
        run_many(_factory(), n_runs=1, executor="mpi")
    assert set(EXECUTORS) == {"serial", "thread", "process", "auto"}


def test_chunk_indices_cover_all_runs_in_order():
    for n_runs in (1, 2, 7, 8, 9):
        for workers in (1, 2, 3, 4, 16):
            chunks = _chunk_indices(n_runs, workers)
            assert len(chunks) == min(workers, n_runs)
            flat = [i for chunk in chunks for i in chunk]
            assert flat == list(range(n_runs))
            sizes = [len(c) for c in chunks]
            assert max(sizes) - min(sizes) <= 1
