"""Tests for the synthetic dataset generators."""

import pytest

from repro.platform import Cluster, ClusterSpec
from repro.sim import Environment, RandomStreams
from repro.workflows import bcss_images, imagewang_files, nyc_taxi_parquet


def make_cluster(seed=0, run_index=0):
    env = Environment()
    streams = RandomStreams(seed, run_index=run_index)
    return Cluster(env, ClusterSpec(num_nodes=4), streams), streams


class TestBCSS:
    def test_count_and_size_band(self):
        cluster, streams = make_cluster()
        inventory = bcss_images(cluster, streams, n_images=20)
        assert len(inventory) == 20
        for path, size in inventory:
            assert 40 * 2**20 <= size <= 100 * 2**20
            assert size % 2**20 == 0  # MiB aligned for 4 MiB reads
            assert cluster.pfs.exists(path)

    def test_run_index_does_not_change_dataset(self):
        a_cluster, a_streams = make_cluster(run_index=0)
        b_cluster, b_streams = make_cluster(run_index=5)
        a = bcss_images(a_cluster, a_streams, n_images=10)
        b = bcss_images(b_cluster, b_streams, n_images=10)
        assert a == b

    def test_different_seed_different_dataset(self):
        a_cluster, a_streams = make_cluster(seed=1)
        b_cluster, b_streams = make_cluster(seed=2)
        a = bcss_images(a_cluster, a_streams, n_images=10)
        b = bcss_images(b_cluster, b_streams, n_images=10)
        assert a != b


class TestImagewang:
    def test_small_files_and_class_layout(self):
        cluster, streams = make_cluster()
        inventory = imagewang_files(cluster, streams, n_files=40)
        assert len(inventory) == 40
        classes = set()
        for path, size in inventory:
            assert 30 * 2**10 <= size <= 350 * 2**10
            classes.add(path.split("/")[-2])
        assert len(classes) == 20  # the paper's 20-class subset


class TestNYCParquet:
    def test_total_size_and_monthly_names(self):
        cluster, streams = make_cluster()
        inventory = nyc_taxi_parquet(cluster, streams, n_files=61,
                                     total_bytes=2 * 2**30)
        assert len(inventory) == 61
        total = sum(size for _, size in inventory)
        assert total == pytest.approx(2 * 2**30, rel=0.01)
        assert inventory[0][0].endswith("fhvhv_tripdata_2019-01.parquet")
        assert inventory[12][0].endswith("fhvhv_tripdata_2020-01.parquet")
        # 61 months starting 2019-01 ends in 2024-01.
        assert inventory[-1][0].endswith("fhvhv_tripdata_2024-01.parquet")

    def test_sizes_vary_seasonally(self):
        cluster, streams = make_cluster()
        inventory = nyc_taxi_parquet(cluster, streams, n_files=24,
                                     total_bytes=2**30)
        sizes = [size for _, size in inventory]
        assert max(sizes) > 1.5 * min(sizes)
