"""Tests for the three evaluation workflows and the runner."""

import os

import numpy as np
import pytest

from repro.core import (
    AnalysisSession,
    detect_phases,
    longest_categories,
    oversized_tasks,
)
from repro.workflows import (
    ImageProcessingWorkflow,
    ResNet152Workflow,
    XGBoostWorkflow,
    run_many,
    run_workflow,
    scaled,
)


class TestScaled:
    def test_rounds_and_floors(self):
        assert scaled(151, 1.0) == 151
        assert scaled(151, 0.1) == 15
        assert scaled(151, 0.0001, minimum=4) == 4

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            ImageProcessingWorkflow(scale=0)


@pytest.fixture(scope="module")
def imageproc_run():
    return run_workflow(ImageProcessingWorkflow(scale=0.08), seed=3)


@pytest.fixture(scope="module")
def resnet_run():
    return run_workflow(ResNet152Workflow(scale=0.04), seed=3)


@pytest.fixture(scope="module")
def xgboost_run():
    return run_workflow(XGBoostWorkflow(scale=0.08), seed=3)


class TestImageProcessing:
    def test_three_task_graphs(self, imageproc_run):
        tasks = AnalysisSession.of(imageproc_run.data).task_view()
        assert set(tasks.unique("graph_index")) == {0, 1, 2}

    def test_read_write_phase_structure(self, imageproc_run):
        """Fig. 4: read bursts followed by write bursts."""
        phases = detect_phases(AnalysisSession.of(imageproc_run.data).io_view(), gap=30.0,
                               min_ops=3)
        ops = [p.op for p in phases]
        assert "read" in ops and "write" in ops
        assert ops[0] == "read"
        # At least two read->write alternations.
        alternations = sum(
            1 for a, b in zip(ops, ops[1:]) if (a, b) == ("read", "write")
        )
        assert alternations >= 2

    def test_reads_are_4mb_capped(self, imageproc_run):
        io = AnalysisSession.of(imageproc_run.data).io_view()
        reads = io.filter(np.array([o == "read" for o in io["op"]]))
        assert int(np.max(reads["length"])) <= 4 * 2**20

    def test_later_writes_smaller_than_first(self, imageproc_run):
        """Phase 2/3 written images are KB-scale vs the MB-scale
        normalized images of phase 1 (the Fig.-4 opacity contrast)."""
        io = AnalysisSession.of(imageproc_run.data).io_view()
        writes = io.filter(np.array([o == "write" for o in io["op"]]))
        phase1 = writes.filter(np.array(
            ["normalized.zarr" in f for f in writes["file"]]))
        later = writes.filter(np.array(
            ["preview.zarr" in f or "masks.zarr" in f
             for f in writes["file"]]))
        assert len(phase1) and len(later)
        assert float(np.mean(phase1["length"])) > \
            50 * float(np.mean(later["length"]))
        # And the later phases start after the first write phase began.
        assert float(np.min(later["start"])) > \
            float(np.min(phase1["start"]))

    def test_distinct_files_scale(self, imageproc_run):
        # originals + 3 consolidated stage stores (Table I: 151 files).
        n_images = ImageProcessingWorkflow(scale=0.08).n_images
        files = imageproc_run.data.darshan.distinct_files()
        assert len(files) == n_images + 3


class TestResNet152:
    def test_single_task_graph(self, resnet_run):
        tasks = AnalysisSession.of(resnet_run.data).task_view()
        assert set(tasks.unique("graph_index")) == {0}

    def test_task_count_shape(self, resnet_run):
        """load + transform per file, predict per batch, one model task."""
        wf = ResNet152Workflow(scale=0.04)
        tasks = AnalysisSession.of(resnet_run.data).task_view()
        n = wf.n_files
        batches = -(-n // wf.BATCH_SIZE)
        assert len(tasks) == 2 * n + batches + 1
        prefixes = dict(zip(*np.unique(
            list(tasks["prefix"]), return_counts=True)))
        assert prefixes["load"] == n
        assert prefixes["transform"] == n
        assert prefixes["predict"] == batches

    def test_dxt_truncation_reproduced(self):
        """Footnote 9: default buffers truncate the ResNet I/O count."""
        wf = ResNet152Workflow(scale=0.04)
        result = run_workflow(wf, seed=3, dxt_buffer_limit=8)
        report = result.data.darshan
        assert report.any_truncated
        assert report.dropped_segments > 0

    def test_model_broadcast_generates_comms(self, resnet_run):
        comms = AnalysisSession.of(resnet_run.data).comm_view()
        model_moves = comms.filter(
            np.array(["load_model" in k for k in comms["key"]]))
        assert len(model_moves) >= 1
        assert all(model_moves["nbytes"] ==
                   ResNet152Workflow.MODEL_BYTES)


class TestXGBoost:
    def test_graph_count(self, xgboost_run):
        wf = XGBoostWorkflow(scale=0.08)
        tasks = AnalysisSession.of(xgboost_run.data).task_view()
        n_graphs = len(set(tasks.unique("graph_index")))
        assert n_graphs == 3 + wf.rounds + 1

    def test_fused_read_category_present(self, xgboost_run):
        tasks = AnalysisSession.of(xgboost_run.data).task_view()
        prefixes = set(tasks.unique("prefix"))
        assert "read_parquet-fused-assign" in prefixes
        assert "getitem" in prefixes
        assert "random_split_take" in prefixes
        assert "drop_by_shallow_copy" in prefixes

    def test_fused_reads_are_longest_category(self, xgboost_run):
        """Fig. 6: the red lines are read_parquet-fused-assign."""
        top = longest_categories(AnalysisSession.of(xgboost_run.data).task_view(), top=1)
        assert top["category"][0] == "read_parquet-fused-assign"

    def test_oversized_outputs(self, xgboost_run):
        """Fig. 6: fused-read outputs exceed the recommended 128 MB and
        are the largest outputs in the workflow."""
        big = oversized_tasks(AnalysisSession.of(xgboost_run.data).task_view())
        assert len(big) > 0
        categories = set(big["category"])
        assert "read_parquet-fused-assign" in categories
        assert big["category"][0] == "read_parquet-fused-assign"

    def test_warnings_skew_early(self, xgboost_run):
        """Fig. 7: warnings concentrate while the big frames are live."""
        warnings = AnalysisSession.of(xgboost_run.data).warning_view()
        assert len(warnings) > 0
        wall = xgboost_run.wall_time
        times = warnings["time"].astype(float)
        early = (times < wall / 2).sum()
        late = (times >= wall / 2).sum()
        assert early > late

    def test_checkpoint_and_prediction_writes(self, xgboost_run):
        io = AnalysisSession.of(xgboost_run.data).io_view()
        files = set(io.unique("file"))
        assert "/lus/xgboost/model-checkpoints.ubj" in files
        assert "/lus/xgboost/predictions.parquet" in files


class TestRunner:
    def test_run_many_reseeds(self):
        results = run_many(lambda: ImageProcessingWorkflow(scale=0.04),
                           n_runs=3, seed=5)
        walls = [r.wall_time for r in results]
        assert len(set(walls)) == 3  # noise differs per repetition
        assert [r.run_index for r in results] == [0, 1, 2]

    def test_persist_dir_layout(self, tmp_path):
        result = run_workflow(ImageProcessingWorkflow(scale=0.04),
                              seed=5, persist_dir=str(tmp_path))
        assert result.run_dir is not None
        assert os.path.exists(os.path.join(result.run_dir,
                                           "provenance.json"))
        workflow_meta = __import__("json").load(
            open(os.path.join(result.run_dir, "provenance.json"))
        )["layers"]["application"]["workflow"]
        assert workflow_meta["name"] == "ImageProcessing"

    def test_same_seed_same_run_reproduces(self):
        a = run_workflow(ImageProcessingWorkflow(scale=0.04), seed=9)
        b = run_workflow(ImageProcessingWorkflow(scale=0.04), seed=9)
        assert a.wall_time == b.wall_time
