"""Tests for the metadata-gap audit (research question 4)."""

import pytest

from repro.core import RunData, format_gap_report, metadata_gaps
from repro.dasklike import IOOp, TaskGraph, TaskSpec

from tests.helpers import drive_instrumented, make_instrumented


def io_graph(cluster, token="9a9a9a9a"):
    cluster.pfs.create_file(f"/lus/gap-{token}.bin", 8 * 2**20)
    return TaskGraph([
        TaskSpec(key=(f"load-{token}", i), compute_time=0.02,
                 reads=(IOOp(f"/lus/gap-{token}.bin", "read",
                             (i % 8) * 2**20, 2**19),),
                 output_nbytes=2**19)
        for i in range(16)
    ])


class TestCleanRun:
    def test_healthy_run_is_clean(self):
        env, cluster, run = make_instrumented(seed=47)
        client, _ = drive_instrumented(env, run, io_graph(cluster),
                                       optimize=False)
        gaps = metadata_gaps(RunData.from_live(run, client))
        assert gaps["clean"], gaps
        assert gaps["unattributed_io_ops"]["count"] == 0
        report = format_gap_report(gaps)
        assert "CLEAN" in report


class TestDetectsTruncation:
    def test_dxt_truncation_flagged(self):
        env, cluster, run = make_instrumented(seed=47, dxt_buffer_limit=1)
        client, _ = drive_instrumented(env, run, io_graph(cluster),
                                       optimize=False)
        gaps = metadata_gaps(RunData.from_live(run, client))
        assert not gaps["clean"]
        assert gaps["dxt_truncation"]["truncated"]
        assert "GAPS FOUND" in format_gap_report(gaps)


class TestDetectsErredTasks:
    def test_failed_tasks_explained_by_errors(self):
        env, cluster, run = make_instrumented(seed=47)
        graph = TaskGraph([
            TaskSpec(key="ok-8b8b8b8b", compute_time=0.02,
                     output_nbytes=1),
            TaskSpec(key="bad-8b8b8b8b",
                     reads=(IOOp("/lus/missing.bin", "read", 0, 10),),
                     output_nbytes=1),
        ])
        client = run.client()

        def driver():
            yield env.process(client.connect())
            try:
                yield env.process(client.compute(graph, optimize=False))
            except FileNotFoundError:
                pass
            yield env.timeout(2.0)
            yield env.process(run.drain())

        env.run(until=env.process(driver()))
        gaps = metadata_gaps(RunData.from_live(run, client))
        snr = gaps["submitted_never_ran"]
        assert snr["count"] == 1
        assert snr["explained_by_errors"] == 1
        assert snr["unexplained"] == []
        # Errors are accounted for, so the run still audits clean.
        assert gaps["clean"]


class TestEmptyRun:
    def test_empty_rundata(self):
        gaps = metadata_gaps(RunData())
        assert gaps["unattributed_io_ops"]["count"] == 0
        assert isinstance(format_gap_report(gaps), str)
