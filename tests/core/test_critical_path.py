"""Tests for critical-path and utilization analyses."""

import numpy as np
import pytest

from repro.core import (
    AnalysisSession,
    critical_path,
    critical_path_summary,
    overall_utilization,
    RunData,
    Table,
    utilization_timeline,
    worker_utilization,
)
from repro.dasklike import TaskGraph, TaskSpec

from tests.helpers import drive_instrumented, make_instrumented


@pytest.fixture(scope="module")
def chain_run():
    """A deliberately serial chain plus parallel side work."""
    env, cluster, run = make_instrumented(seed=29)
    tasks = [TaskSpec(key=("side-aa118822", i), compute_time=0.05,
                      output_nbytes=10) for i in range(6)]
    prev = None
    for i in range(5):
        spec = TaskSpec(
            key=(f"chain-bb229933", i),
            deps=(prev,) if prev is not None else (),
            compute_time=0.4, output_nbytes=1024,
        )
        tasks.append(spec)
        prev = spec.key
    client, _ = drive_instrumented(env, run, TaskGraph(tasks),
                                   optimize=False)
    return RunData.from_live(run, client)


class TestCriticalPath:
    def test_chain_is_the_critical_path(self, chain_run):
        chain = critical_path(chain_run)
        prefixes = [h.prefix for h in chain]
        assert all(p == "chain" for p in prefixes)
        assert len(chain) == 5

    def test_chain_ordered_and_causal(self, chain_run):
        chain = critical_path(chain_run)
        for a, b in zip(chain, chain[1:]):
            assert a.stop <= b.start + 1e-9
            assert b.gap >= 0

    def test_summary_accounts_span(self, chain_run):
        summary = critical_path_summary(chain_run)
        assert summary["length"] == 5
        assert summary["execution"] > 0
        assert summary["gap"] >= 0
        # Execution + gaps of the chain ≈ the chain's span.
        assert summary["execution"] + summary["gap"] == pytest.approx(
            summary["span"], rel=0.05)
        assert "chain" in summary["by_prefix"]

    def test_empty_run(self):
        summary = critical_path_summary(RunData())
        assert summary["length"] == 0


class TestUtilization:
    def tasks(self):
        return Table.from_records([
            dict(key="a", group="a", prefix="p", worker="w0",
                 hostname="h0", thread_id=1, start=0.0, stop=2.0,
                 duration=2.0, output_nbytes=1, graph_index=0,
                 compute_time=2.0, io_time=0.0, n_reads=0, n_writes=0),
            dict(key="b", group="b", prefix="p", worker="w0",
                 hostname="h0", thread_id=2, start=0.0, stop=1.0,
                 duration=1.0, output_nbytes=1, graph_index=0,
                 compute_time=1.0, io_time=0.0, n_reads=0, n_writes=0),
            dict(key="c", group="c", prefix="p", worker="w1",
                 hostname="h1", thread_id=3, start=1.0, stop=2.0,
                 duration=1.0, output_nbytes=1, graph_index=0,
                 compute_time=1.0, io_time=0.0, n_reads=0, n_writes=0),
        ])

    def test_timeline_buckets(self):
        timeline = utilization_timeline(self.tasks(), n_threads_total=4,
                                        bucket=1.0)
        assert len(timeline) == 2
        # Bucket 0: tasks a+b busy -> 2 thread-seconds of 4.
        assert timeline["busy_thread_seconds"][0] == pytest.approx(2.0)
        assert timeline["utilization"][0] == pytest.approx(0.5)
        # Bucket 1: a+c -> 2 of 4.
        assert timeline["utilization"][1] == pytest.approx(0.5)

    def test_worker_utilization(self):
        per_worker = worker_utilization(self.tasks(), threads_per_worker=2)
        rows = {r["worker"]: r for r in per_worker.to_records()}
        assert rows["w0"]["busy_seconds"] == pytest.approx(3.0)
        assert rows["w0"]["utilization"] == pytest.approx(3.0 / 4.0)
        assert rows["w1"]["n_tasks"] == 1

    def test_overall(self):
        value = overall_utilization(self.tasks(), n_threads_total=4,
                                    wall_time=2.0)
        assert value == pytest.approx(4.0 / 8.0)

    def test_empty(self):
        empty = Table.from_records([], columns=self.tasks().column_names)
        assert overall_utilization(empty, 8, 10.0) == 0.0
        assert len(utilization_timeline(empty, 8)) == 0

    def test_low_utilization_for_short_workflow(self, chain_run):
        """The coordination-dominated chain leaves threads idle."""
        tasks = AnalysisSession.of(chain_run).task_view()
        value = overall_utilization(tasks, n_threads_total=16,
                                    wall_time=chain_run.wall_time)
        assert 0 < value < 0.5
