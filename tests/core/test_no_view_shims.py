"""Guard: the deprecated free-function view builders stay deleted.

The PR-2 API redesign shipped ``task_view(run)``-style compatibility
shims with a ``DeprecationWarning``; the data-lake PR completed that
cycle and removed them.  This test keeps them from creeping back —
the one public spelling is ``AnalysisSession.of(source).task_view()``
(or ``.view(name)``), and ``repro.core.views`` exposes only the
columnar ``build_*`` functions that the session dispatches to.
"""

import repro.core
import repro.core.views as views_module
from repro.core import VIEW_NAMES

REMOVED = tuple(f"{name}_view" for name in VIEW_NAMES)


def test_free_view_functions_are_gone_from_core():
    for name in REMOVED:
        assert not hasattr(repro.core, name), (
            f"repro.core.{name} resurfaced; views are session methods")
        assert name not in repro.core.__all__


def test_free_view_functions_are_gone_from_views_module():
    for name in REMOVED:
        assert not hasattr(views_module, name)
    assert "_session_for" not in vars(views_module)


def test_builders_still_cover_every_view_name():
    for name in VIEW_NAMES:
        builder = getattr(views_module, f"build_{name}_view")
        assert callable(builder)
        assert views_module.VIEW_BUILDERS[name] is builder
