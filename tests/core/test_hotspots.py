"""Tests for I/O hotspot and heatmap-similarity analyses."""

import numpy as np
import pytest

from repro.core import (
    AnalysisSession,
    heatmap_similarity,
    io_hotspots,
    RunData,
    Table,
)
from repro.darshan import HeatmapModule
from repro.workflows import ImageProcessingWorkflow, run_many


def io_rows(durations_by_file):
    rows = []
    for path, durations in durations_by_file.items():
        for k, duration in enumerate(durations):
            rows.append(dict(
                hostname="h0", rank=0, pthread_id=1, file=path,
                op="read", offset=k * 100, length=100,
                start=float(k), end=float(k) + duration,
                duration=duration,
            ))
    return Table.from_records(rows, columns=[
        "hostname", "rank", "pthread_id", "file", "op", "offset",
        "length", "start", "end", "duration"])


class TestHotspots:
    def test_ranks_by_variability(self):
        run_a = io_rows({"/steady": [1.0, 1.0], "/noisy": [0.5, 0.5]})
        run_b = io_rows({"/steady": [1.0, 1.0], "/noisy": [2.0, 2.0]})
        table = io_hotspots([run_a, run_b])
        assert table["file"][0] == "/noisy"
        rows = {r["file"]: r for r in table.to_records()}
        assert rows["/steady"]["cv"] == pytest.approx(0.0)
        assert rows["/noisy"]["cv"] > 0.5
        assert rows["/steady"]["n_runs"] == 2
        assert rows["/steady"]["mean_ops"] == 2.0

    def test_top_limits_output(self):
        views = [io_rows({f"/f{i}": [1.0] for i in range(30)})]
        assert len(io_hotspots(views, top=5)) == 5

    def test_real_runs_produce_hotspots(self):
        results = run_many(lambda: ImageProcessingWorkflow(scale=0.04),
                           n_runs=2, seed=71)
        table = io_hotspots([AnalysisSession.of(r.data).io_view() for r in results])
        assert len(table) > 0
        assert all(table["n_runs"] == 2)
        assert all(table["mean_io_time"].astype(float) > 0)


class TestHeatmapSimilarity:
    def heatmap_from(self, pattern):
        hm = HeatmapModule(nbins=16, initial_bin_width=1.0)
        for t, nbytes in enumerate(pattern):
            if nbytes:
                hm.record("read", nbytes, float(t), float(t) + 0.5)
        return hm

    def test_identical_profiles_score_one(self):
        a = self.heatmap_from([100, 0, 0, 200])
        b = self.heatmap_from([100, 0, 0, 200])
        table = heatmap_similarity([a, b])
        assert table["similarity"][0] == pytest.approx(1.0)

    def test_disjoint_profiles_score_zero(self):
        a = self.heatmap_from([100, 0, 0, 0])
        b = self.heatmap_from([0, 0, 100, 0])
        table = heatmap_similarity([a, b])
        assert table["similarity"][0] == pytest.approx(0.0)

    def test_coarsening_forgives_jitter(self):
        a = self.heatmap_from([100, 0, 0, 0])
        shifted = self.heatmap_from([0, 100, 0, 0])
        fine = heatmap_similarity([a, shifted])["similarity"][0]
        coarse = heatmap_similarity([a, shifted],
                                    coarsen=2)["similarity"][0]
        assert coarse > fine

    def test_pairwise_count(self):
        heatmaps = [self.heatmap_from([i + 1]) for i in range(4)]
        table = heatmap_similarity(heatmaps)
        assert len(table) == 6  # 4 choose 2

    def test_validation(self):
        with pytest.raises(ValueError):
            heatmap_similarity([self.heatmap_from([1])])
        with pytest.raises(ValueError):
            heatmap_similarity([self.heatmap_from([1])] * 2, coarsen=0)

    def test_repeated_runs_have_high_io_similarity(self):
        """Same workflow, different noise: the burst structure repeats."""
        results = run_many(lambda: ImageProcessingWorkflow(scale=0.04),
                           n_runs=2, seed=73)
        heatmaps = [r.data.darshan.job_heatmap() for r in results]
        table = heatmap_similarity(heatmaps, coarsen=2)
        assert table["similarity"][0] > 0.7
