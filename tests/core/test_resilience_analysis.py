"""resilience_view/resilience_report units + warning-window boundaries."""

import numpy as np
import pytest

from repro.core import (
    AnalysisSession,
    RunData,
    Table,
    resilience_report,
    resilience_view,
    warning_histogram,
    warnings_in_window,
)


def transition(key, start, finish, timestamp, stimulus, worker="w0"):
    return {"type": "transition", "key": key, "group": key,
            "prefix": key.split("-")[0], "start_state": start,
            "finish_state": finish, "timestamp": timestamp,
            "stimulus": stimulus, "worker": worker, "source": "scheduler"}


def fault(fault_id, kind, timestamp, target="t", worker="w0",
          hostname="nid0", duration=5.0, magnitude=4.0):
    return {"type": "fault", "fault_id": fault_id, "kind": kind,
            "target": target, "worker": worker, "hostname": hostname,
            "timestamp": timestamp, "duration": duration,
            "magnitude": magnitude}


def warning(kind, time, source="worker-w0", hostname="nid0",
            duration=0.1):
    return {"type": "warning", "source": source, "hostname": hostname,
            "kind": kind, "time": time, "duration": duration,
            "message": kind}


@pytest.fixture()
def synthetic_run():
    events = [
        # task a: one consumed retry (released+retry, waiting+retry).
        transition("a-1", "processing", "released", 1.0, "retry"),
        transition("a-1", "released", "waiting", 1.5, "retry"),
        transition("a-1", "waiting", "processing", 1.5, "retry"),
        transition("a-1", "processing", "memory", 2.0, "task-finished"),
        # task b: two consumed retries.
        transition("b-1", "processing", "released", 1.2, "retry"),
        transition("b-1", "released", "waiting", 1.7, "retry"),
        transition("b-1", "processing", "released", 2.2, "retry"),
        transition("b-1", "released", "waiting", 3.2, "retry"),
        # task c: recomputed after a crash at t=3.0.
        transition("c-1", "memory", "released", 3.0, "worker-failed"),
        transition("c-1", "released", "waiting", 3.0, "recompute"),
        transition("c-1", "waiting", "processing", 3.0, "recompute"),
        transition("c-1", "processing", "memory", 4.0, "task-finished"),
        fault(0, "worker_crash", 3.0, duration=2.0),
        warning("fault_worker_crash", 3.0),
        warning("gc_pause", 4.0),
        warning("gc_pause", 9.0),  # outside the fault window
    ]
    return RunData(events=events)


class TestResilienceView:
    def test_one_row_per_fault(self, synthetic_run):
        view = resilience_view(synthetic_run)
        assert len(view) == 1
        assert view["kind"][0] == "worker_crash"
        assert view["worker"][0] == "w0"

    def test_empty_run_keeps_columns(self):
        view = resilience_view(RunData(events=[]))
        assert len(view) == 0
        assert "fault_id" in view.column_names
        assert "timestamp" in view.column_names

    def test_cached_per_session(self, synthetic_run):
        session = AnalysisSession.of(synthetic_run)
        assert session.resilience_view() is session.resilience_view()
        assert resilience_view(session) is session.resilience_view()


class TestResilienceReport:
    def test_retry_histogram(self, synthetic_run):
        report = resilience_report(synthetic_run)
        assert report["retried_tasks"] == 2
        assert report["total_retries"] == 3
        # one task took 1 retry, one took 2.
        assert report["retry_histogram"] == {1: 1, 2: 1}

    def test_recompute_counts(self, synthetic_run):
        report = resilience_report(synthetic_run)
        assert report["recomputed_tasks"] == 1
        assert report["recomputed_keys"] == ["c-1"]

    def test_time_to_recovery(self, synthetic_run):
        report = resilience_report(synthetic_run)
        (recovery,) = report["recovery"]
        assert recovery["kind"] == "worker_crash"
        # First recovery transition at the fault instant itself; the
        # last recovery stimulus after t0 is b-1's retry at t=3.2.
        assert recovery["detected_after"] == 0.0
        assert recovery["recovered_after"] == pytest.approx(0.2)

    def test_fault_warning_correlation(self, synthetic_run):
        report = resilience_report(synthetic_run)
        (correlation,) = report["fault_warnings"]
        # fault_worker_crash@3.0 and gc_pause@4.0 sit inside [3, 5);
        # gc_pause@9.0 does not.
        assert correlation["n_warnings"] == 2

    def test_quiet_run(self):
        events = [transition("a-1", "waiting", "processing", 0.0,
                             "ready"),
                  transition("a-1", "processing", "memory", 1.0,
                             "task-finished")]
        report = resilience_report(RunData(events=events))
        assert report["n_faults"] == 0
        assert report["recovery"] == []
        assert report["retry_histogram"] == {}


class TestWarningWindowBoundaries:
    """Satellite: pin the half-open [start, end) window semantics."""

    def table(self, times, kinds=None):
        n = len(times)
        kinds = kinds or ["k"] * n
        return Table({"source": ["s"] * n, "hostname": ["h"] * n,
                      "kind": kinds, "time": times,
                      "duration": [0.0] * n, "message": ["m"] * n})

    def test_start_inclusive_end_exclusive(self):
        warnings = self.table([1.0, 2.0, 3.0])
        assert warnings_in_window(warnings, 1.0, 3.0) == 2
        assert warnings_in_window(warnings, 1.0, 3.0 + 1e-9) == 3
        assert warnings_in_window(warnings, 3.0, 3.0) == 0

    def test_kind_filter(self):
        warnings = self.table([1.0, 1.5], kinds=["a", "b"])
        assert warnings_in_window(warnings, 0.0, 2.0, kind="a") == 1
        assert warnings_in_window(warnings, 0.0, 2.0, kind="zz") == 0

    def test_empty_table_counts_zero(self):
        empty = self.table([])
        assert warnings_in_window(empty, 0.0, 100.0) == 0

    def test_histogram_floors_negative_times(self):
        """Bucketing floors toward -inf, so clock-skewed (negative)
        timestamps land in a negative bucket, not bucket 0."""
        warnings = self.table([-0.5, 0.5, 99.9, 100.0])
        histogram = warning_histogram(warnings, bucket=100.0)
        starts = sorted(histogram["bucket_start"].astype(float))
        assert starts == [-100.0, 0.0, 100.0]
        by_bucket = {float(b): int(c) for b, c in
                     zip(histogram["bucket_start"], histogram["count"])}
        assert by_bucket == {-100.0: 1, 0.0: 2, 100.0: 1}

    def test_histogram_empty_table_dtype_stable(self):
        histogram = warning_histogram(self.table([]))
        assert len(histogram) == 0
        assert histogram.column_names == ["bucket_start", "kind",
                                          "count"]
        # Numeric reductions on the empty columns must not raise.
        assert float(np.sum(histogram["count"])) == 0.0
        assert float(np.sum(histogram["bucket_start"].astype(float))) \
            == 0.0

    def test_histogram_bucket_edges_half_open(self):
        warnings = self.table([0.0, 99.999, 100.0])
        histogram = warning_histogram(warnings, bucket=100.0)
        by_bucket = {float(b): int(c) for b, c in
                     zip(histogram["bucket_start"], histogram["count"])}
        assert by_bucket == {0.0: 2, 100.0: 1}
