"""Unit and property tests for the PERFRECUP columnar Table."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Table


def sample():
    return Table({
        "key": ["a", "b", "c", "d"],
        "worker": ["w0", "w1", "w0", "w1"],
        "duration": [1.0, 2.0, 3.0, 4.0],
        "nbytes": [10, 20, 30, 40],
    })


class TestConstruction:
    def test_columns_and_len(self):
        t = sample()
        assert len(t) == 4
        assert set(t.column_names) == {"key", "worker", "duration", "nbytes"}

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Table({"a": [1, 2], "b": [1]})

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            Table({"a": np.zeros((2, 2))})

    def test_from_records(self):
        t = Table.from_records([{"x": 1, "y": "p"}, {"x": 2, "y": "q"}])
        assert list(t["x"]) == [1, 2]
        assert list(t["y"]) == ["p", "q"]

    def test_from_records_empty_with_columns(self):
        t = Table.from_records([], columns=["x", "y"])
        assert len(t) == 0
        assert t.column_names == ["x", "y"]

    def test_missing_column_error_lists_names(self):
        with pytest.raises(KeyError, match="duration"):
            sample()["missing"]

    def test_row_and_to_records(self):
        t = sample()
        assert t.row(1)["key"] == "b"
        assert t.to_records()[2] == {
            "key": "c", "worker": "w0", "duration": 3.0, "nbytes": 30,
        }


class TestTransforms:
    def test_filter_mask(self):
        t = sample().filter(np.array([True, False, True, False]))
        assert list(t["key"]) == ["a", "c"]

    def test_filter_predicate(self):
        t = sample().filter(lambda row: row["duration"] > 2.5)
        assert list(t["key"]) == ["c", "d"]

    def test_filter_bad_mask_length(self):
        with pytest.raises(ValueError):
            sample().filter(np.array([True]))

    def test_sort_descending(self):
        t = sample().sort_by("duration", descending=True)
        assert list(t["key"]) == ["d", "c", "b", "a"]

    def test_sort_stable_on_ties(self):
        t = Table({"g": [1, 1, 0, 0], "i": [0, 1, 2, 3]})
        s = t.sort_by("g")
        assert list(s["i"]) == [2, 3, 0, 1]

    def test_select_and_with_column(self):
        t = sample().select(["key"]).with_column("flag", [1, 0, 1, 0])
        assert t.column_names == ["key", "flag"]

    def test_with_column_length_checked(self):
        with pytest.raises(ValueError):
            sample().with_column("x", [1])

    def test_take_and_head(self):
        assert list(sample().take([3, 0])["key"]) == ["d", "a"]
        assert len(sample().head(2)) == 2

    def test_concat(self):
        t = sample().concat(sample())
        assert len(t) == 8

    def test_concat_column_mismatch(self):
        with pytest.raises(ValueError):
            sample().concat(Table({"other": [1]}))


class TestAggregation:
    def test_groupby(self):
        groups = sample().groupby("worker")
        assert set(groups) == {"w0", "w1"}
        assert list(groups["w0"]["key"]) == ["a", "c"]

    def test_aggregate(self):
        agg = sample().aggregate("worker", {
            "total": ("duration", lambda v: float(np.sum(v))),
            "count": ("key", len),
        })
        records = {r["worker"]: r for r in agg.to_records()}
        assert records["w0"]["total"] == 4.0
        assert records["w1"]["count"] == 2

    def test_unique(self):
        assert list(sample().unique("worker")) == ["w0", "w1"]

    def test_describe_numeric(self):
        d = sample().describe_column("duration")
        assert d["mean"] == pytest.approx(2.5)
        assert d["min"] == 1.0 and d["max"] == 4.0

    def test_describe_string(self):
        d = sample().describe_column("worker")
        assert d["unique"] == 2 and d["top_count"] == 2


class TestJoin:
    def test_inner_join(self):
        left = sample()
        right = Table({"key": ["a", "c", "z"], "extra": [100, 300, 999]})
        joined = left.join(right, on=["key"])
        assert len(joined) == 2
        assert list(joined["extra"]) == [100, 300]

    def test_left_join_fills_none(self):
        left = sample()
        right = Table({"key": ["a"], "extra": [1]})
        joined = left.join(right, on=["key"], how="left")
        assert len(joined) == 4
        assert joined["extra"][1] is None

    def test_join_one_to_many(self):
        left = Table({"host": ["h0", "h1"]})
        right = Table({"host": ["h0", "h0", "h1"], "v": [1, 2, 3]})
        joined = left.join(right, on=["host"])
        assert len(joined) == 3

    def test_join_collision_suffix(self):
        left = Table({"key": ["a"], "value": [1]})
        right = Table({"key": ["a"], "value": [2]})
        joined = left.join(right, on=["key"])
        assert list(joined["value"]) == [1]
        assert list(joined["value_r"]) == [2]

    def test_join_multi_column(self):
        left = Table({"h": ["h0", "h0"], "t": [1, 2], "x": ["p", "q"]})
        right = Table({"h": ["h0"], "t": [2], "y": ["match"]})
        joined = left.join(right, on=["h", "t"])
        assert list(joined["x"]) == ["q"]

    def test_bad_how_rejected(self):
        with pytest.raises(ValueError):
            sample().join(sample(), on=["key"], how="outer")


# -- property-based tests ----------------------------------------------

records_strategy = st.lists(
    st.fixed_dictionaries({
        "g": st.integers(0, 3),
        "v": st.floats(allow_nan=False, allow_infinity=False,
                       min_value=-1e6, max_value=1e6),
    }),
    max_size=60,
)


@given(records_strategy)
@settings(max_examples=60, deadline=None)
def test_filter_partition_is_complete(records):
    """filter(mask) + filter(~mask) partitions the rows."""
    t = Table.from_records(records, columns=["g", "v"])
    if len(t) == 0:
        return
    mask = t["v"].astype(float) >= 0
    yes, no = t.filter(mask), t.filter(~mask)
    assert len(yes) + len(no) == len(t)
    assert float(np.sum(yes["v"])) + float(np.sum(no["v"])) == pytest.approx(
        float(np.sum(t["v"])), abs=1e-6)


@given(records_strategy)
@settings(max_examples=60, deadline=None)
def test_groupby_preserves_rows(records):
    t = Table.from_records(records, columns=["g", "v"])
    groups = t.groupby("g")
    assert sum(len(sub) for sub in groups.values()) == len(t)


@given(records_strategy)
@settings(max_examples=60, deadline=None)
def test_sort_is_permutation(records):
    t = Table.from_records(records, columns=["g", "v"])
    s = t.sort_by("v")
    assert len(s) == len(t)
    assert sorted(s["v"]) == sorted(t["v"])
    values = list(s["v"])
    assert all(values[i] <= values[i + 1] for i in range(len(values) - 1))


@given(records_strategy, records_strategy)
@settings(max_examples=40, deadline=None)
def test_inner_join_row_count_matches_key_products(left_rec, right_rec):
    left = Table.from_records(left_rec, columns=["g", "v"])
    right = Table.from_records(right_rec, columns=["g", "v"])
    joined = left.join(right, on=["g"])
    from collections import Counter
    lc = Counter(left["g"]) if len(left) else Counter()
    rc = Counter(right["g"]) if len(right) else Counter()
    expected = sum(lc[k] * rc[k] for k in lc)
    assert len(joined) == expected
