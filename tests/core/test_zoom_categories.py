"""Tests for the time-window zoom and per-category analyses."""

import numpy as np
import pytest

from repro.core import (
    AnalysisSession,
    category_across_runs,
    category_io_profile,
    category_profile,
    RunData,
    zoom,
)
from repro.dasklike import IOOp, TaskGraph, TaskSpec

from tests.helpers import drive_instrumented, make_instrumented


@pytest.fixture(scope="module")
def run_data():
    env, cluster, run = make_instrumented(seed=19)
    cluster.pfs.create_file("/lus/z.bin", 32 * 2**20)
    tasks = [
        TaskSpec(key=(f"load-11223344", i), compute_time=0.05,
                 reads=(IOOp("/lus/z.bin", "read", i * 2**20, 2**20),),
                 output_nbytes=2**20)
        for i in range(8)
    ] + [
        TaskSpec(key=(f"proc-55667788", i), deps=((f"load-11223344", i),),
                 compute_time=0.3, output_nbytes=2**19)
        for i in range(8)
    ] + [
        TaskSpec(key="agg-99aabbcc",
                 deps=tuple((f"proc-55667788", i) for i in range(8)),
                 compute_time=0.1, output_nbytes=64),
    ]
    graph = TaskGraph(tasks)
    client, _ = drive_instrumented(env, run, graph, optimize=False)
    return RunData.from_live(run, client)


class TestZoom:
    def test_full_window_covers_everything(self, run_data):
        summary = zoom(run_data, 0.0, run_data.wall_time + 1)
        assert summary.stats["n_tasks_active"] == 17
        assert summary.stats["io_ops"] == 8
        assert summary.stats["io_bytes"] == 8 * 2**20

    def test_narrow_window_filters(self, run_data):
        tasks = AnalysisSession.of(run_data).task_view()
        loads = tasks.filter(np.array(
            [p == "load" for p in tasks["prefix"]]))
        load_end = float(np.max(loads["stop"]))
        summary = zoom(run_data, 0.0, load_end * 0.5)
        assert summary.stats["n_tasks_active"] < 17
        assert "agg" not in summary.stats["prefixes_active"]

    def test_disjoint_window_is_empty(self, run_data):
        summary = zoom(run_data, run_data.wall_time + 100,
                       run_data.wall_time + 200)
        assert summary.stats["n_tasks_active"] == 0
        assert summary.stats["io_ops"] == 0
        assert summary.stats["comm_count"] == 0

    def test_overlapping_tasks_included(self, run_data):
        """A task spanning the window boundary still counts."""
        tasks = AnalysisSession.of(run_data).task_view()
        mid_task = tasks.sort_by("start").row(5)
        mid = (mid_task["start"] + mid_task["stop"]) / 2
        summary = zoom(run_data, mid, mid + 1e-4)
        keys = set(summary.tasks["key"])
        assert mid_task["key"] in keys

    def test_invalid_window_rejected(self, run_data):
        with pytest.raises(ValueError):
            zoom(run_data, 5.0, 5.0)

    def test_stats_internally_consistent(self, run_data):
        summary = zoom(run_data, 0.0, run_data.wall_time + 1)
        assert summary.stats["io_rate"] > 0
        assert summary.stats["busy_threads"] <= 4 * 4  # workers x threads
        assert len(summary.io) == summary.stats["io_ops"]


class TestCategoryProfile:
    def test_profile_columns_and_order(self, run_data):
        profile = category_profile(AnalysisSession.of(run_data).task_view())
        assert len(profile) == 3
        totals = list(profile["total_duration"])
        assert totals == sorted(totals, reverse=True)
        row = {r["category"]: r for r in profile.to_records()}
        assert row["load"]["n"] == 8
        assert row["proc"]["p95"] >= row["proc"]["p50"]

    def test_io_profile_attributes_to_load(self, run_data):
        profile = category_io_profile(AnalysisSession.of(run_data).task_view(),
                                      AnalysisSession.of(run_data).io_view())
        assert len(profile) == 1
        row = profile.row(0)
        assert row["category"] == "load"
        assert row["io_ops"] == 8
        assert row["bytes_read"] == 8 * 2**20
        assert row["ops_per_task"] == 1.0

    def test_across_runs_variability(self):
        views = []
        for k in range(3):
            env, cluster, run = make_instrumented(seed=19, run_index=k)
            graph = TaskGraph([
                TaskSpec(key=(f"work-deadbee1", i), compute_time=0.2,
                         output_nbytes=100)
                for i in range(12)
            ])
            client, _ = drive_instrumented(env, run, graph,
                                           optimize=False)
            views.append(AnalysisSession.of(RunData.from_live(run, client)).task_view())
        table = category_across_runs(views)
        row = table.row(0)
        assert row["category"] == "work"
        assert row["n_runs"] == 3
        assert row["mean_count"] == 12.0
        assert row["duration_cv"] >= 0.0
        assert row["placement_spread"] > 1.0
