"""Unit tests for the individual PERFRECUP analysis modules,
using hand-built tables (no simulation)."""

import numpy as np
import pytest

from repro.core import (
    IOPhase,
    Table,
    comm_scatter,
    comm_summary,
    correlate_warnings_with_tasks,
    detect_phases,
    format_bar,
    format_records,
    format_table,
    fuse_io_with_tasks,
    io_timeline,
    longest_categories,
    order_distance,
    oversized_tasks,
    parallel_coordinates,
    per_task_io,
    placement_agreement,
    prefix_duration_variability,
    slow_small_messages,
    summarize_metric,
    unattributed_io,
    warning_histogram,
    warnings_in_window,
)


def tasks_table():
    return Table.from_records([
        dict(key="a", group="a", prefix="load", worker="w0",
             hostname="h0", thread_id=100, start=0.0, stop=2.0,
             duration=2.0, output_nbytes=200 * 2**20, graph_index=0,
             compute_time=1.5, io_time=0.5, n_reads=2, n_writes=0),
        dict(key="b", group="b", prefix="load", worker="w1",
             hostname="h1", thread_id=200, start=1.0, stop=2.5,
             duration=1.5, output_nbytes=50 * 2**20, graph_index=0,
             compute_time=1.0, io_time=0.5, n_reads=1, n_writes=0),
        dict(key="c", group="c", prefix="sum", worker="w0",
             hostname="h0", thread_id=100, start=3.0, stop=3.2,
             duration=0.2, output_nbytes=8, graph_index=0,
             compute_time=0.2, io_time=0.0, n_reads=0, n_writes=0),
    ])


def io_table():
    return Table.from_records([
        dict(hostname="h0", rank=0, pthread_id=100, file="/f", op="read",
             offset=0, length=4 * 2**20, start=0.1, end=0.3,
             duration=0.2),
        dict(hostname="h0", rank=0, pthread_id=100, file="/f", op="read",
             offset=4 * 2**20, length=4 * 2**20, start=0.4, end=0.6,
             duration=0.2),
        dict(hostname="h1", rank=1, pthread_id=200, file="/g", op="read",
             offset=0, length=2**20, start=1.2, end=1.4, duration=0.2),
        # An orphan: thread nobody's task window covers.
        dict(hostname="h9", rank=9, pthread_id=999, file="/x", op="write",
             offset=0, length=10, start=0.5, end=0.6, duration=0.1),
    ])


class TestCorrelate:
    def test_fusion_attributes_by_thread_and_window(self):
        fused = fuse_io_with_tasks(tasks_table(), io_table())
        assert list(fused["key"])[:3] == ["a", "a", "b"]
        assert fused["key"][3] is None

    def test_unattributed(self):
        fused = fuse_io_with_tasks(tasks_table(), io_table())
        orphans = unattributed_io(fused)
        assert len(orphans) == 1
        assert orphans["file"][0] == "/x"

    def test_per_task_io_aggregates(self):
        fused = fuse_io_with_tasks(tasks_table(), io_table())
        agg = per_task_io(fused)
        rows = {r["key"]: r for r in agg.to_records()}
        assert rows["a"]["n_reads"] == 2
        assert rows["a"]["bytes_read"] == 8 * 2**20
        assert rows["b"]["n_ops"] == 1

    def test_io_outside_window_not_attributed(self):
        io = Table.from_records([dict(
            hostname="h0", rank=0, pthread_id=100, file="/f", op="read",
            offset=0, length=10, start=2.5, end=2.6, duration=0.1,
        )])
        fused = fuse_io_with_tasks(tasks_table(), io)
        assert fused["key"][0] is None  # between a (ends 2.0) and c (3.0)


class TestTimeline:
    def test_lanes_are_dense_ranks(self):
        timeline = io_timeline(io_table())
        assert set(timeline["thread_rank"]) == {0, 1, 2}

    def test_rel_size_normalised(self):
        timeline = io_timeline(io_table())
        assert max(timeline["rel_size"]) == 1.0
        assert min(timeline["rel_size"]) > 0

    def test_empty_io(self):
        assert len(io_timeline(Table.from_records([]))) == 0
        assert detect_phases(Table.from_records([])) == []

    def test_detect_phases_alternation(self):
        records = []
        t = 0.0
        for phase, op in enumerate(["read", "write", "read"]):
            for k in range(5):
                records.append(dict(
                    hostname="h", rank=0, pthread_id=1, file="/f", op=op,
                    offset=0, length=100, start=t, end=t + 0.05,
                    duration=0.05))
                t += 0.1
            t += 10.0  # gap
        phases = detect_phases(Table.from_records(records), gap=5.0,
                               min_ops=3)
        assert [p.op for p in phases] == ["read", "write", "read"]
        assert all(p.n_ops == 5 for p in phases)

    def test_small_bursts_filtered(self):
        records = [dict(hostname="h", rank=0, pthread_id=1, file="/f",
                        op="read", offset=0, length=1, start=0.0, end=0.1,
                        duration=0.1)]
        assert detect_phases(Table.from_records(records), min_ops=2) == []


class TestCommStats:
    def comms(self):
        return Table.from_records([
            dict(key="k1", src_worker="a", dst_worker="b", src_host="h0",
                 dst_host="h0", nbytes=1000, start=0.0, stop=0.5,
                 duration=0.5, same_node=True, same_switch=True),
            dict(key="k2", src_worker="a", dst_worker="c", src_host="h0",
                 dst_host="h1", nbytes=1000, start=0.1, stop=0.15,
                 duration=0.05, same_node=False, same_switch=True),
            dict(key="k3", src_worker="a", dst_worker="c", src_host="h0",
                 dst_host="h1", nbytes=10**8, start=1.0, stop=2.0,
                 duration=1.0, same_node=False, same_switch=False),
        ])

    def test_scatter_columns_and_order(self):
        scatter = comm_scatter(self.comms())
        assert list(scatter["start"]) == sorted(scatter["start"])
        assert "same_node" in scatter.column_names

    def test_summary_split(self):
        summary = comm_summary(self.comms())
        assert summary["intranode"]["count"] == 1
        assert summary["internode"]["count"] == 2
        assert summary["internode"]["total_bytes"] == 10**8 + 1000
        assert summary["n_total"] == 3

    def test_summary_empty(self):
        empty = Table.from_records([], columns=self.comms().column_names)
        summary = comm_summary(empty)
        assert summary["intranode"]["count"] == 0

    def test_slow_small_flagging(self):
        flagged = slow_small_messages(self.comms(), size_threshold=10_000,
                                      duration_factor=1.5)
        assert len(flagged) == 1
        assert flagged["duration"][0] == 0.5  # the slow small one


class TestParallelCoords:
    def test_coordinates_and_oversize_flag(self):
        coords = parallel_coordinates(tasks_table())
        rows = {r["key"]: r for r in coords.to_records()}
        assert rows["a"]["oversized"] is True or rows["a"]["oversized"]
        assert not rows["c"]["oversized"]
        assert rows["a"]["size_mb"] == pytest.approx(200.0)

    def test_longest_categories_ranked(self):
        top = longest_categories(tasks_table(), top=2)
        assert top["category"][0] == "load"
        assert top["n_tasks"][0] == 2

    def test_oversized_sorted_desc(self):
        big = oversized_tasks(tasks_table())
        sizes = list(big["size_mb"])
        assert sizes == sorted(sizes, reverse=True)

    def test_empty(self):
        empty = Table.from_records([], columns=tasks_table().column_names)
        assert len(parallel_coordinates(empty)) == 0


class TestWarningsAnalysis:
    def warnings(self):
        rows = []
        for t in (10, 20, 30, 40, 450):
            rows.append(dict(source="w", hostname="h",
                             kind="unresponsive_event_loop", time=float(t),
                             duration=1.0, message="m"))
        rows.append(dict(source="w", hostname="h", kind="gc_collect",
                         time=700.0, duration=0.5, message="gc"))
        return Table.from_records(rows)

    def test_histogram_buckets(self):
        hist = warning_histogram(self.warnings(), bucket=100.0)
        rows = {(r["bucket_start"], r["kind"]): r["count"]
                for r in hist.to_records()}
        assert rows[(0.0, "unresponsive_event_loop")] == 4
        assert rows[(400.0, "unresponsive_event_loop")] == 1
        assert rows[(700.0, "gc_collect")] == 1

    def test_window_counting(self):
        assert warnings_in_window(self.warnings(), 0, 100) == 4
        assert warnings_in_window(self.warnings(), 0, 1000,
                                  kind="gc_collect") == 1

    def test_correlation_ratio(self):
        # Category active 0-50s; 4 of 5 unresponsive warnings inside.
        tasks = Table.from_records([dict(
            key="t", group="g", prefix="hot", worker="w", hostname="h",
            thread_id=1, start=0.0, stop=50.0, duration=50.0,
            output_nbytes=1, graph_index=0, compute_time=50.0,
            io_time=0.0, n_reads=0, n_writes=0)])
        result = correlate_warnings_with_tasks(
            self.warnings(), tasks, "hot")
        assert result["n_in"] == 4
        assert result["ratio"] > 1.0

    def test_correlation_missing_category(self):
        result = correlate_warnings_with_tasks(
            self.warnings(), tasks_table(), "nonexistent")
        assert result["ratio"] == 0.0


class TestScheduling:
    def view(self, order, workers):
        return Table.from_records([
            dict(key=k, group=k, prefix="p", worker=w, hostname="h",
                 thread_id=1, start=float(i), stop=float(i) + 0.5,
                 duration=0.5, output_nbytes=1, graph_index=0,
                 compute_time=0.5, io_time=0.0, n_reads=0, n_writes=0)
            for i, (k, w) in enumerate(zip(order, workers))
        ])

    def test_identical_runs(self):
        a = self.view(["x", "y", "z"], ["w0", "w1", "w0"])
        assert placement_agreement(a, a) == 1.0
        assert order_distance(a, a) == 0.0

    def test_reversed_order(self):
        a = self.view(["x", "y", "z"], ["w0"] * 3)
        b = self.view(["z", "y", "x"], ["w0"] * 3)
        assert order_distance(a, b) == 1.0

    def test_partial_placement_agreement(self):
        a = self.view(["x", "y"], ["w0", "w1"])
        b = self.view(["x", "y"], ["w0", "w0"])
        assert placement_agreement(a, b) == 0.5

    def test_disjoint_keys(self):
        a = self.view(["x"], ["w0"])
        b = self.view(["q"], ["w0"])
        assert placement_agreement(a, b) == 0.0
        assert order_distance(a, b) == 0.0


class TestVariability:
    def test_summarize(self):
        stats = summarize_metric("m", [1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.min == 1.0 and stats.max == 3.0
        assert stats.spread == 2.0
        assert stats.cv == pytest.approx(0.5)

    def test_single_value_no_std(self):
        stats = summarize_metric("m", [4.0])
        assert stats.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_metric("m", [])

    def test_prefix_variability_ordering(self):
        noisy = [tasks_table()]
        second = tasks_table().with_column(
            "duration", [5.0, 1.5, 0.2])  # 'load' total differs a lot
        table = prefix_duration_variability([noisy[0], second])
        assert table["prefix"][0] == "load"
        assert table["cv"][0] > table["cv"][1]


class TestReport:
    def test_format_records_alignment(self):
        text = format_records([{"a": 1, "bb": "x"}, {"a": 22, "bb": "yyy"}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_records_empty(self):
        assert "(empty)" in format_records([], title="t")

    def test_format_table_truncation(self):
        table = Table({"x": list(range(100))})
        text = format_table(table, max_rows=5)
        assert "95 more rows" in text

    def test_format_bar_bounds(self):
        bar = format_bar("io", 0.5, 1.0, width=10)
        assert bar.count("#") == 5
        overflow = format_bar("io", 5.0, 1.0, width=10)
        assert overflow.count("#") == 10

    def test_format_floats(self):
        text = format_records([{"v": 0.000012345}])
        assert "e-05" in text
