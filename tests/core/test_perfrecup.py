"""Integration tests: the PERFRECUP pipeline over instrumented runs."""

import numpy as np
import pytest

from repro.core import (
    AnalysisSession,
    check_interoperability,
    comm_scatter,
    comm_summary,
    compare_runs,
    detect_phases,
    fuse_io_with_tasks,
    identifier_coverage,
    io_timeline,
    longest_categories,
    parallel_coordinates,
    per_task_io,
    phase_breakdown,
    phase_variability,
    render_provenance,
    RunData,
    task_provenance,
    unattributed_io,
    warning_histogram,
)
from repro.dasklike import IOOp, TaskGraph, TaskSpec

from tests.helpers import drive_instrumented, make_instrumented


def io_workload(cluster, n_files=4, width=4, token="cafe0001"):
    """Files read by per-file tasks, transformed, then reduced."""
    tasks = []
    for i in range(n_files):
        path = f"/lus/img{i}.tif"
        cluster.pfs.create_file(path, 8 * 2**20)
        tasks.append(TaskSpec(
            key=(f"imread-{token}", i), compute_time=0.02,
            reads=tuple(IOOp(path, "read", k * 2**20, 2**20)
                        for k in range(8)),
            output_nbytes=8 * 2**20,
        ))
    for i in range(n_files):
        tasks.append(TaskSpec(
            key=(f"normalize-{token}", i), deps=((f"imread-{token}", i),),
            compute_time=0.2, output_nbytes=8 * 2**20,
        ))
    tasks.append(TaskSpec(
        key=f"stats-{token}",
        deps=tuple((f"normalize-{token}", i) for i in range(n_files)),
        compute_time=0.05, output_nbytes=256,
    ))
    return TaskGraph(tasks)


@pytest.fixture(scope="module")
def run_data():
    env, cluster, run = make_instrumented(seed=11)
    client, _ = drive_instrumented(env, run, io_workload(cluster),
                                   optimize=False)
    return RunData.from_live(run, client)


class TestViews:
    def test_task_view_complete(self, run_data):
        tasks = AnalysisSession.of(run_data).task_view()
        assert len(tasks) == 9
        assert all(tasks["stop"] >= tasks["start"])
        assert set(tasks.unique("prefix")) == {"imread", "normalize",
                                               "stats"}

    def test_transition_view_has_both_sides(self, run_data):
        transitions = AnalysisSession.of(run_data).transition_view()
        sources = set(transitions.unique("source"))
        assert "scheduler" in sources
        assert len(sources) > 1

    def test_io_view_matches_darshan(self, run_data):
        io = AnalysisSession.of(run_data).io_view()
        assert len(io) == 32  # 4 files x 8 reads
        assert set(io.unique("op")) == {"read"}

    def test_dependency_view(self, run_data):
        deps = AnalysisSession.of(run_data).dependency_view()
        stats_row = deps.filter(
            np.array([k == "stats-cafe0001" for k in deps["key"]]))
        assert stats_row["n_deps"][0] == 4

    def test_warning_and_comm_views_load(self, run_data):
        # These may be sparse in a short run but must have the schema.
        warnings = AnalysisSession.of(run_data).warning_view()
        comms = AnalysisSession.of(run_data).comm_view()
        assert "kind" in warnings.column_names
        assert "same_node" in comms.column_names


class TestCorrelation:
    def test_all_io_attributed_to_imread(self, run_data):
        fused = fuse_io_with_tasks(AnalysisSession.of(run_data).task_view(), AnalysisSession.of(run_data).io_view())
        assert len(unattributed_io(fused)) == 0
        prefixes = {p for p in fused["prefix"]}
        assert prefixes == {"imread"}

    def test_per_task_io_totals(self, run_data):
        fused = fuse_io_with_tasks(AnalysisSession.of(run_data).task_view(), AnalysisSession.of(run_data).io_view())
        per_task = per_task_io(fused)
        assert len(per_task) == 4
        assert all(per_task["n_reads"] == 8)
        assert all(per_task["bytes_read"] == 8 * 2**20)
        assert all(per_task["io_time"].astype(float) > 0)

    def test_io_time_consistent_with_task_records(self, run_data):
        tasks = AnalysisSession.of(run_data).task_view()
        fused = fuse_io_with_tasks(tasks, AnalysisSession.of(run_data).io_view())
        per_task = per_task_io(fused)
        joined = per_task.join(tasks.select(["key", "io_time"]),
                               on=["key"], suffix="_task")
        for row in joined.to_records():
            assert row["io_time"] == pytest.approx(row["io_time_task"],
                                                   rel=1e-6)


class TestPhases:
    def test_breakdown_positive(self, run_data):
        b = phase_breakdown(run_data)
        assert b.io > 0
        assert b.computation > 0
        assert b.total > 0
        assert b.n_tasks == 9
        assert b.n_io_ops == 32

    def test_normalization(self, run_data):
        norm = phase_breakdown(run_data).normalized()
        assert norm["total"] == 1.0
        assert 0 < norm["computation"]


class TestFigureAnalyses:
    def test_io_timeline_series(self, run_data):
        timeline = io_timeline(AnalysisSession.of(run_data).io_view())
        assert len(timeline) == 32
        assert all(0 <= r <= 1 for r in timeline["rel_size"])
        starts = list(timeline["start"])
        assert starts == sorted(starts)

    def test_detect_phases_finds_reads(self, run_data):
        phases = detect_phases(AnalysisSession.of(run_data).io_view(), gap=5.0, min_ops=2)
        assert phases
        assert phases[0].op == "read"

    def test_comm_scatter_and_summary(self, run_data):
        comms = AnalysisSession.of(run_data).comm_view()
        scatter = comm_scatter(comms)
        assert set(scatter.column_names) == {
            "nbytes", "duration", "same_node", "same_switch", "start"}
        summary = comm_summary(comms)
        assert summary["n_total"] == len(comms)

    def test_parallel_coordinates(self, run_data):
        coords = parallel_coordinates(AnalysisSession.of(run_data).task_view())
        assert len(coords) == 9
        top = longest_categories(AnalysisSession.of(run_data).task_view(), top=2)
        assert len(top) == 2

    def test_warning_histogram_schema(self, run_data):
        hist = warning_histogram(AnalysisSession.of(run_data).warning_view(), bucket=10.0)
        assert set(hist.column_names) == {"bucket_start", "kind", "count"}


class TestProvenance:
    def test_full_lineage_document(self, run_data):
        doc = task_provenance(run_data, "('imread-cafe0001', 0)")
        assert doc["task_graph_index"] == 0
        assert doc["dependencies"] == []
        assert doc["execution"]["thread_id"] is not None
        assert len(doc["io_records"]) == 8
        states = [(s["from"], s["to"]) for s in doc["states"]]
        assert ("released", "waiting") in states
        assert any(to == "memory" for _, to in states)

    def test_dependent_task_lists_deps(self, run_data):
        doc = task_provenance(run_data, "stats-cafe0001")
        assert len(doc["dependencies"]) == 4
        assert doc["io_records"] == []

    def test_render_is_textual(self, run_data):
        text = render_provenance(
            task_provenance(run_data, "('imread-cafe0001', 1)"))
        assert "states" in text
        assert "I/O records" in text

    def test_unknown_key_raises(self, run_data):
        with pytest.raises(KeyError):
            task_provenance(run_data, "no-such-key")


class TestFAIR:
    def test_every_view_pair_joinable(self):
        rows = check_interoperability()
        assert all(row["joinable"] for row in rows)
        io_task = next(r for r in rows
                       if r["pair"] == ("io", "task"))
        assert io_task["strong"]

    def test_identifier_coverage_on_real_views(self, run_data):
        coverage = identifier_coverage(AnalysisSession.of(run_data).task_view(), "task")
        assert all(coverage.values())
        coverage_io = identifier_coverage(AnalysisSession.of(run_data).io_view(), "io")
        assert coverage_io["thread"] and coverage_io["hostname"]


class TestCrossRun:
    def test_phase_variability_and_scheduling_comparison(self):
        breakdowns, views = [], []
        for k in range(3):
            env, cluster, run = make_instrumented(seed=11, run_index=k)
            client, _ = drive_instrumented(
                env, run, io_workload(cluster), optimize=False)
            data = RunData.from_live(run, client)
            breakdowns.append(phase_breakdown(data))
            views.append(AnalysisSession.of(data).task_view())
        stats = phase_variability(breakdowns)
        assert stats["total"].n == 3
        assert stats["total"].mean > 0
        assert stats["normalized"]["total"] == 1.0
        comparison = compare_runs(views)
        assert len(comparison) == 3  # 3 pairs
        for row in comparison.to_records():
            assert 0.0 <= row["placement_agreement"] <= 1.0
            assert 0.0 <= row["order_distance"] <= 1.0
