"""Tests for the SVG figure renderers (validated by XML parsing)."""

import xml.etree.ElementTree as ET

import pytest

from repro.core import (
    Table,
    fig3_svg,
    fig4_svg,
    fig5_svg,
    fig6_svg,
    fig7_svg,
    write_svg,
)
from repro.core.variability import summarize_metric

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


def count(root: ET.Element, tag: str) -> int:
    return len(root.findall(f".//{SVG_NS}{tag}"))


def stats_fixture():
    def one(io, comm, compute):
        return {
            "normalized": {"io": io, "communication": comm,
                           "computation": compute, "total": 1.0},
            "normalized_err": {"io": 0.02, "communication": 0.01,
                               "computation": 0.05, "total": 0.03},
        }
    return {"WF-A": one(0.4, 0.1, 0.7), "WF-B": one(0.05, 0.02, 3.0)}


class TestFig3:
    def test_valid_svg_with_bars_and_errorbars(self):
        root = parse(fig3_svg(stats_fixture()))
        # 2 workflows x 4 phases bars + background + legend swatches.
        assert count(root, "rect") >= 2 * 4 + 1
        assert count(root, "line") >= 2 * 4  # error bars + axes
        texts = [t.text for t in root.findall(f".//{SVG_NS}text")]
        assert "WF-A" in texts and "WF-B" in texts


class TestFig4:
    def timeline(self):
        return Table.from_records([
            dict(thread_rank=0, pthread_id=1, hostname="h", op="read",
                 start=0.0, duration=1.0, length=100, rel_size=1.0),
            dict(thread_rank=1, pthread_id=2, hostname="h", op="write",
                 start=1.0, duration=0.5, length=10, rel_size=0.1),
        ])

    def test_segments_rendered(self):
        root = parse(fig4_svg(self.timeline()))
        rects = root.findall(f".//{SVG_NS}rect")
        fills = {r.get("fill") for r in rects}
        assert "#c62828" in fills  # read
        assert "#1565c0" in fills  # write

    def test_opacity_tracks_rel_size(self):
        root = parse(fig4_svg(self.timeline()))
        reads = [r for r in root.findall(f".//{SVG_NS}rect")
                 if r.get("fill") == "#c62828"]
        writes = [r for r in root.findall(f".//{SVG_NS}rect")
                  if r.get("fill") == "#1565c0"]
        # Legend swatches have opacity 1.0; data rects carry computed
        # opacity.  The read data rect must be more opaque than write's.
        read_op = max(float(r.get("fill-opacity")) for r in reads
                      if float(r.get("fill-opacity")) <= 1.0)
        write_op = min(float(r.get("fill-opacity")) for r in writes)
        assert read_op > write_op

    def test_empty_timeline(self):
        empty = Table.from_records([], columns=[
            "thread_rank", "pthread_id", "hostname", "op", "start",
            "duration", "length", "rel_size"])
        root = parse(fig4_svg(empty))
        assert root.tag == f"{SVG_NS}svg"


class TestFig5:
    def scatter(self):
        return Table.from_records([
            dict(nbytes=1000, duration=0.001, same_node=True,
                 same_switch=True, start=0.0),
            dict(nbytes=10**8, duration=1.0, same_node=False,
                 same_switch=False, start=1.0),
        ])

    def test_points_coloured_by_locality(self):
        root = parse(fig5_svg(self.scatter()))
        circles = root.findall(f".//{SVG_NS}circle")
        fills = {c.get("fill") for c in circles}
        assert "#2e7d32" in fills and "#e65100" in fills

    def test_empty(self):
        empty = Table.from_records([], columns=[
            "nbytes", "duration", "same_node", "same_switch", "start"])
        assert parse(fig5_svg(empty)).tag == f"{SVG_NS}svg"


class TestFig6:
    def coords(self):
        return Table.from_records([
            dict(key="a", elapsed=0.0, category="read_parquet",
                 thread_rank=0, size_mb=300.0, duration=20.0,
                 oversized=True),
            dict(key="b", elapsed=5.0, category="getitem",
                 thread_rank=1, size_mb=10.0, duration=0.1,
                 oversized=False),
            dict(key="c", elapsed=9.0, category="predict",
                 thread_rank=2, size_mb=1.0, duration=0.5,
                 oversized=False),
        ])

    def test_one_polyline_per_task_plus_axes(self):
        root = parse(fig6_svg(self.coords()))
        assert count(root, "polyline") == 3
        assert count(root, "line") == 5  # one per coordinate axis
        texts = [t.text for t in root.findall(f".//{SVG_NS}text")]
        for axis in ("elapsed", "category", "thread_rank", "size_mb",
                     "duration"):
            assert axis in texts

    def test_longest_task_drawn_widest(self):
        root = parse(fig6_svg(self.coords()))
        widths = sorted(float(p.get("stroke-width"))
                        for p in root.findall(f".//{SVG_NS}polyline"))
        assert widths[-1] > widths[0]


class TestFig7:
    def hist(self):
        return Table.from_records([
            dict(bucket_start=0.0, kind="unresponsive_event_loop",
                 count=10),
            dict(bucket_start=0.0, kind="gc_collect", count=20),
            dict(bucket_start=100.0, kind="gc_collect", count=3),
        ])

    def test_bars_and_legend(self):
        root = parse(fig7_svg(self.hist()))
        assert count(root, "rect") >= 3 + 1 + 2  # bars + bg + legend
        texts = [t.text for t in root.findall(f".//{SVG_NS}text")]
        assert "gc_collect" in texts
        assert "unresponsive_event_loop" in texts


class TestHeatmapSvg:
    def test_bars_for_both_directions(self):
        from repro.core import heatmap_svg
        from repro.darshan import HeatmapModule
        hm = HeatmapModule(nbins=10, initial_bin_width=1.0)
        hm.record("read", 1000, 0.0, 0.5)
        hm.record("write", 500, 2.0, 2.5)
        root = parse(heatmap_svg(hm))
        fills = {r.get("fill") for r in root.findall(f".//{SVG_NS}rect")}
        assert "#c62828" in fills and "#1565c0" in fills

    def test_none_heatmap_renders_empty_chart(self):
        from repro.core import heatmap_svg
        root = parse(heatmap_svg(None))
        assert root.tag == f"{SVG_NS}svg"


class TestWrite:
    def test_write_svg(self, tmp_path):
        path = write_svg(fig3_svg(stats_fixture()),
                         str(tmp_path / "sub" / "fig3.svg"))
        content = open(path).read()
        assert content.startswith("<svg")
        parse(content)
