"""Regression: ingested runs carry complete identifiers, end to end.

The schema lint proves emission sites *mention* the identifier columns;
this test proves the values actually arrive non-null after a real run
is ingested — the runtime half of the FAIR contract.  A null worker,
hostname, thread id, or timestamp in a view is exactly the failure
mode that silently turns PERFRECUP joins into NaNs.
"""

import math

import pytest

from repro.core import AnalysisSession, RunData
from repro.core.correlate import fuse_io_with_tasks
from repro.core.fair import IDENTIFIER_COLUMNS, IDENTIFIER_REGISTRY
from repro.workflows import ImageProcessingWorkflow, run_workflow


@pytest.fixture(scope="module")
def run_data():
    from repro.dasklike import DaskConfig
    # A high GC rate guarantees the warning stream is non-empty at this
    # small scale, so its identifier columns get exercised too.
    config = DaskConfig(gc_base_rate=0.5)
    return run_workflow(ImageProcessingWorkflow(scale=0.05), seed=4,
                        config=config).data


def null_cells(view, columns):
    """(column, row) pairs whose value is None/NaN."""
    bad = []
    for column in columns:
        for index, value in enumerate(view[column]):
            if value is None or (isinstance(value, float)
                                 and math.isnan(value)):
                bad.append((column, index))
    return bad


def identifier_columns_of(view, view_name):
    declared = IDENTIFIER_REGISTRY[view_name]
    physical = set()
    for ident in declared:
        physical |= IDENTIFIER_COLUMNS[ident]
    return sorted(physical & set(view.column_names))


@pytest.mark.parametrize("view_name", ["task", "io", "comm", "warning"])
def test_view_identifier_cells_non_null(run_data, view_name):
    view = AnalysisSession.of(run_data).view(view_name)
    assert len(view) > 0, f"{view_name} view is empty; nothing verified"
    columns = identifier_columns_of(view, view_name)
    assert columns, f"{view_name} view carries no identifier columns"
    assert null_cells(view, columns) == []


def test_joined_table_identifier_cells_non_null(run_data):
    """The paper's key join (DXT segments ↔ task windows) yields rows
    whose identifier cells are all populated for attributed I/O."""
    tasks = AnalysisSession.of(run_data).task_view()
    fused = fuse_io_with_tasks(tasks, AnalysisSession.of(run_data).io_view())
    attributed = [i for i in range(len(fused))
                  if fused["key"][i] is not None]
    assert attributed, "no I/O was attributed to any task"
    for column in ("key", "worker", "hostname", "pthread_id", "start"):
        for index in attributed:
            assert fused[column][index] is not None, (column, index)


def test_every_event_type_satisfies_schema_requirements(run_data):
    """Dynamic mirror of the static lint: every ingested event carries
    the physical columns its type's requirement entry demands."""
    from repro.analysis.schema import EVENT_REQUIREMENTS, \
        satisfied_identifiers

    seen_types = set()
    for event in run_data.events:
        event_type = event.get("type")
        if event_type not in EVENT_REQUIREMENTS:
            continue
        seen_types.add(event_type)
        supplied = {key for key, value in event.items()
                    if value is not None}
        _present, missing = satisfied_identifiers(event_type, supplied)
        assert not missing, (event_type, sorted(missing), event)
    assert {"transition", "task_run", "communication",
            "task_added"} <= seen_types
