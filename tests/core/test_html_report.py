"""Tests for the standalone HTML report."""

import os
from html.parser import HTMLParser

import pytest

from repro.cli import main
from repro.core import RunData, html_report, write_html_report
from repro.workflows import ImageProcessingWorkflow, run_workflow


class _Validator(HTMLParser):
    def __init__(self):
        super().__init__(convert_charrefs=True)
        self.tags = []
        self.stack = []
        self.errors = []

    VOID = {"meta", "br", "hr", "img", "input", "link", "line", "rect",
            "circle", "polyline", "text", "path"}

    def handle_starttag(self, tag, attrs):
        self.tags.append(tag)
        if tag not in self.VOID:
            self.stack.append(tag)

    def handle_endtag(self, tag):
        if tag in self.VOID:
            return
        if self.stack and self.stack[-1] == tag:
            self.stack.pop()
        elif tag in self.stack:
            while self.stack and self.stack[-1] != tag:
                self.stack.pop()
            if self.stack:
                self.stack.pop()


@pytest.fixture(scope="module")
def report_pair(tmp_path_factory):
    out = str(tmp_path_factory.mktemp("report-run"))
    result = run_workflow(ImageProcessingWorkflow(scale=0.05), seed=8,
                          persist_dir=out)
    data = RunData.from_directory(result.run_dir)
    return data, result.run_dir


class TestHtmlReport:
    def test_document_structure(self, report_pair):
        data, run_dir = report_pair
        document = html_report(data)
        validator = _Validator()
        validator.feed(document)
        assert "html" in validator.tags
        assert "svg" in validator.tags
        assert "table" in validator.tags

    def test_headline_numbers_present(self, report_pair):
        data, run_dir = report_pair
        document = html_report(data)
        assert "wall time" in document
        assert "thread utilization" in document
        assert "Critical path" in document
        assert "ImageProcessing" in document

    def test_write_report(self, report_pair, tmp_path):
        data, run_dir = report_pair
        path = write_html_report(data, str(tmp_path / "r" / "report.html"))
        assert os.path.exists(path)
        assert open(path).read().startswith("<!DOCTYPE html>")

    def test_cli_report_subcommand(self, report_pair, capsys):
        data, run_dir = report_pair
        assert main(["report", run_dir]) == 0
        path = capsys.readouterr().out.strip()
        assert path.endswith("report.html")
        assert os.path.exists(path)
