"""Tests for RunData ingestion edge cases."""

import pytest

from repro.core import RunData
from repro.dasklike import TaskGraph, TaskSpec

from tests.helpers import drive_instrumented, make_instrumented


class TestEmptyRunData:
    def test_defaults(self):
        data = RunData()
        assert data.events == []
        assert data.wall_time == 0.0
        assert data.events_of_type("task_run") == []

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            RunData.from_directory(str(tmp_path / "nope"))


class TestLiveVsDisk:
    def test_live_and_disk_agree(self, tmp_path):
        env, cluster, run = make_instrumented(seed=41)
        graph = TaskGraph([
            TaskSpec(key=("w-ee55aa11", i), compute_time=0.05,
                     output_nbytes=100)
            for i in range(6)
        ])
        client, _ = drive_instrumented(env, run, graph, optimize=False)
        live = RunData.from_live(run, client)
        run_dir = run.persist(str(tmp_path / "run"), client=client)
        disk = RunData.from_directory(run_dir)

        assert len(live.events) == len(disk.events)
        assert live.wall_time == pytest.approx(disk.wall_time)
        live_types = sorted(e["type"] for e in live.events)
        disk_types = sorted(e["type"] for e in disk.events)
        assert live_types == disk_types
        assert live.darshan.total_io_ops == disk.darshan.total_io_ops
        assert disk.provenance["seed"] == 41

    def test_wall_time_spans_first_to_last_observation(self):
        env, cluster, run = make_instrumented(seed=41)
        graph = TaskGraph([TaskSpec(key="solo-ff66bb22",
                                    compute_time=0.5, output_nbytes=1)])
        client, _ = drive_instrumented(env, run, graph, optimize=False)
        data = RunData.from_live(run, client)
        assert data.wall_time > 0.5  # at least the task itself

    def test_events_of_type_filters(self):
        env, cluster, run = make_instrumented(seed=41)
        graph = TaskGraph([TaskSpec(key="one-cc77dd33",
                                    compute_time=0.01, output_nbytes=1)])
        client, _ = drive_instrumented(env, run, graph, optimize=False)
        data = RunData.from_live(run, client)
        assert len(data.events_of_type("task_run")) == 1
        assert data.events_of_type("bogus-type") == []
