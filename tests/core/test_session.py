"""AnalysisSession facade: parity, cache semantics, load dispatch.

The contract under test is the one ``docs/perfrecup_api.md``
documents: the columnar view builders produce cell-for-cell the same
tables as the historical per-row builders (kept as the measurement
baseline inside ``benchmarks/bench_perfrecup_ingest.py``), every view
is built at most once per session, and the legacy free functions keep
working as deprecated shims over the session.
"""

import importlib.util
import pathlib

import pytest

from repro.core import (
    AnalysisSession,
    RunData,
    map_sessions,
    sessions_for,
    variability_report,
)
from repro.core import views as views_module
from repro.core.views import VIEW_NAMES
from repro.dasklike import IOOp, TaskGraph, TaskSpec

from tests.helpers import drive_instrumented, make_instrumented

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[2]
              / "benchmarks" / "bench_perfrecup_ingest.py")


@pytest.fixture(scope="module")
def bench():
    """The ingest benchmark module (source of the legacy builders)."""
    spec = importlib.util.spec_from_file_location(
        "bench_perfrecup_ingest", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _workload(cluster, token="beef4242"):
    """Small graph exercising I/O, comms, and dependencies."""
    tasks = []
    for i in range(3):
        path = f"/lus/sess{i}.dat"
        cluster.pfs.create_file(path, 4 * 2**20)
        tasks.append(TaskSpec(
            key=(f"load-{token}", i), compute_time=0.02,
            reads=tuple(IOOp(path, "read", k * 2**20, 2**20)
                        for k in range(4)),
            output_nbytes=4 * 2**20,
        ))
    tasks.append(TaskSpec(
        key=f"merge-{token}",
        deps=tuple((f"load-{token}", i) for i in range(3)),
        compute_time=0.05, output_nbytes=512,
    ))
    return TaskGraph(tasks)


@pytest.fixture(scope="module")
def live_run():
    env, cluster, run = make_instrumented(seed=23)
    client, _ = drive_instrumented(env, run, _workload(cluster),
                                   optimize=False)
    return run, client


@pytest.fixture(scope="module")
def run_data(live_run):
    run, client = live_run
    return RunData.load(run, client=client)


def _make_synthetic(n=4):
    """A tiny in-memory run for cache/monkeypatch tests."""
    events = []
    for i in range(n):
        events.append({
            "type": "task_added", "key": f"t-{i}", "group": "t",
            "prefix": "t", "deps": [], "graph_index": i,
            "timestamp": float(i),
        })
        events.append({
            "type": "task_run", "key": f"t-{i}", "group": "t",
            "prefix": "t", "worker": "w0", "hostname": "h0",
            "thread_id": 1, "start": float(i), "stop": float(i) + 0.5,
            "output_nbytes": 10, "graph_index": i, "compute_time": 0.5,
            "io_time": 0.0, "n_reads": 0, "n_writes": 0,
        })
    return RunData(events=events)


class TestParity:
    """Columnar builders == legacy per-row builders, cell for cell."""

    @pytest.mark.parametrize("name", VIEW_NAMES)
    def test_view_matches_legacy(self, run_data, bench, name):
        legacy = bench.LEGACY_BUILDERS[name](run_data)
        fast = AnalysisSession.of(run_data).view(name)
        assert legacy.column_names == fast.column_names
        assert len(legacy) == len(fast)
        for column in legacy.column_names:
            left = legacy[column].tolist()
            right = fast[column].tolist()
            assert left == right, f"{name}.{column} differs"

    def test_io_view_without_darshan_is_empty_schema(self):
        data = _make_synthetic()
        table = AnalysisSession.of(data).io_view()
        assert len(table) == 0
        assert "duration" in table.column_names


class TestCacheSemantics:
    def test_view_identity_across_requests(self, run_data):
        session = AnalysisSession.of(run_data)
        for name in VIEW_NAMES:
            assert session.view(name) is session.view(name)
        assert session.task_view() is session.view("task")

    def test_of_is_canonical_per_run(self, run_data):
        session = AnalysisSession.of(run_data)
        assert AnalysisSession.of(run_data) is session
        assert AnalysisSession.of(session) is session

    def test_of_accepts_run_result_like(self):
        class FakeResult:
            data = _make_synthetic()
        session = AnalysisSession.of(FakeResult())
        assert session.run is FakeResult.data
        assert AnalysisSession.of(FakeResult.data) is session

    def test_builder_invoked_once(self, monkeypatch):
        calls = []
        real = views_module.VIEW_BUILDERS["task"]

        def counting(run):
            calls.append(run)
            return real(run)

        monkeypatch.setitem(views_module.VIEW_BUILDERS, "task", counting)
        session = AnalysisSession.of(_make_synthetic())
        first = session.task_view()
        assert session.task_view() is first
        assert session.view("task") is first
        assert len(calls) == 1

    def test_cached_derived_analysis_builds_once(self):
        session = AnalysisSession.of(_make_synthetic())
        calls = []

        def build():
            calls.append(1)
            return {"x": 1}

        first = session.cached("thing", build)
        assert session.cached("thing", build) is first
        assert calls == [1]

    def test_unknown_view_raises(self):
        session = AnalysisSession.of(_make_synthetic())
        with pytest.raises(KeyError, match="unknown view"):
            session.view("bogus")

    def test_all_views_and_prefetch(self, run_data):
        session = AnalysisSession.of(run_data)
        serial = session.all_views()
        assert sorted(serial) == sorted(VIEW_NAMES)
        threaded = session.prefetch(workers=3).all_views(workers=3)
        for name in VIEW_NAMES:
            assert threaded[name] is serial[name]
        info = session.cache_info()
        assert sorted(info["views_built"]) == sorted(VIEW_NAMES)


class TestLoadDispatch:
    def test_rundata_passes_through(self, run_data):
        assert RunData.load(run_data) is run_data

    def test_live_dispatch(self, live_run):
        run, client = live_run
        data = RunData.load(run, client=client)
        assert len(data.events) > 0
        assert data.provenance["seed"] == 23

    def test_directory_dispatch(self, live_run, tmp_path):
        run, client = live_run
        run_dir = run.persist(str(tmp_path / "run"), client=client)
        from_path = RunData.load(run_dir)
        assert len(from_path.events) == len(
            RunData.load(run, client=client).events)
        shim = RunData.from_directory(run_dir)
        assert len(shim.events) == len(from_path.events)

    def test_unsupported_source_raises(self):
        with pytest.raises(TypeError, match="cannot load"):
            RunData.load(42)


class TestFanOut:
    def test_sessions_for_preserves_order(self):
        runs = [_make_synthetic(n) for n in (2, 3, 4)]
        for workers in (None, 3):
            sessions = sessions_for(runs, workers=workers)
            assert [s.run for s in sessions] == runs

    def test_map_sessions_input_order(self):
        runs = [_make_synthetic(n) for n in (2, 3, 4)]
        counts = map_sessions(lambda s: len(s.task_view()),
                              runs, workers=3)
        assert counts == [2, 3, 4]

    def test_variability_report_smoke(self, run_data):
        report = variability_report([run_data, run_data], workers=2)
        assert len(report["sessions"]) == 2
        assert report["sessions"][0] is AnalysisSession.of(run_data)
        assert "total" in report["phases"]
        assert "cv" in report["by_prefix"].column_names
