"""FaultSpec/FaultSchedule: parsing, validation, ordering, pickling."""

import pickle

import pytest

from repro.faults import FAULT_KINDS, FaultSchedule, FaultSpec


class TestFaultSpec:
    def test_defaults(self):
        spec = FaultSpec("worker_crash", 5.0)
        assert spec.target is None
        assert spec.duration == 5.0
        assert spec.magnitude == 4.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("cosmic_ray", 1.0)

    @pytest.mark.parametrize("field,value", [
        ("time", -1.0), ("duration", -0.1), ("magnitude", 0.0),
    ])
    def test_invalid_numbers_rejected(self, field, value):
        kwargs = {"kind": "worker_slowdown", "time": 1.0, field: value}
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_parse_minimal(self):
        spec = FaultSpec.parse("worker_crash@20")
        assert spec.kind == "worker_crash"
        assert spec.time == 20.0
        assert spec.target is None

    def test_parse_full(self):
        spec = FaultSpec.parse("pfs_ost_slowdown@10:3+30x8")
        assert (spec.kind, spec.time) == ("pfs_ost_slowdown", 10.0)
        assert spec.target == "3"
        assert spec.duration == 30.0
        assert spec.magnitude == 8.0

    def test_parse_worker_address_target(self):
        spec = FaultSpec.parse("heartbeat_blackout@2.5:10.0.1.1:40000+4")
        assert spec.target == "10.0.1.1:40000"
        assert spec.duration == 4.0

    @pytest.mark.parametrize("bad", [
        "worker_crash", "@5", "worker_crash@", "worker_crash@-3",
        "nope@1", "worker_crash@1+x",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            FaultSpec.parse(bad)

    def test_describe_roundtrips_fields(self):
        spec = FaultSpec("network_degrade", 3.0, duration=2.0,
                         magnitude=6.0)
        assert FaultSpec(**spec.describe()) == spec


class TestFaultSchedule:
    def test_sorted_by_time(self):
        schedule = FaultSchedule([
            FaultSpec("worker_crash", 9.0),
            FaultSpec("network_degrade", 1.0),
            FaultSpec("pfs_ost_slowdown", 4.0),
        ])
        assert [f.time for f in schedule] == [1.0, 4.0, 9.0]

    def test_len_bool_eq(self):
        empty = FaultSchedule()
        assert len(empty) == 0 and not empty
        one = FaultSchedule([FaultSpec("worker_crash", 1.0)])
        assert len(one) == 1 and one
        assert one == FaultSchedule([FaultSpec("worker_crash", 1.0)])
        assert one != empty

    def test_kinds(self):
        schedule = FaultSchedule.from_specs(
            ["worker_crash@1", "worker_crash@2", "network_degrade@3"])
        assert schedule.kinds == {"worker_crash", "network_degrade"}

    def test_from_specs_propagates_errors(self):
        with pytest.raises(ValueError):
            FaultSchedule.from_specs(["worker_crash@1", "bogus@2"])

    def test_pickles(self):
        """Plain data: must survive the run_many process pool."""
        schedule = FaultSchedule(
            [FaultSpec(kind, 1.0) for kind in FAULT_KINDS])
        clone = pickle.loads(pickle.dumps(schedule))
        assert clone == schedule

    def test_describe(self):
        schedule = FaultSchedule.from_specs(["worker_crash@1"])
        (record,) = schedule.describe()
        assert record["kind"] == "worker_crash"
        assert record["time"] == 1.0
