"""Chaos cells for the data plane: proxy resolution under fire.

Extends the chaos matrix with the two fault kinds that hit the
pass-by-reference path directly:

* ``network_partition`` against the ``local`` backend — resolves are
  peer NIC transfers, so they stall through the partition window;
* ``mofka_partition_outage`` against the ``mofka`` backend — the blob
  channel shares the outage namespace with real topics, so resolves
  addressed to a blacked-out partition wait for the heal (the
  client-side retry a real deployment would run).

The acceptance bar per cell matches the main matrix: the run converges
with the same keys in memory as the healthy proxied run, the fault and
the proxy traffic are both first-class in provenance, and the event
stream is deterministic.
"""

import pytest

from repro.core import AnalysisSession
from repro.dasklike import DaskConfig
from repro.faults import FaultSchedule, FaultSpec
from repro.proxystore import PROXY_EVENT_TYPES
from repro.workflows import ResNet152Workflow, run_workflow

SEED = 11

#: fault kind -> (backend it stresses, fire time, duration).
CELLS = {
    "network_partition": ("local", 0.7, 3.0),
    "mofka_partition_outage": ("mofka", 0.7, 3.0),
}


def proxied_config(backend):
    return DaskConfig(proxy_enabled=True, proxy_backend=backend)


def memory_keys(data):
    tv = AnalysisSession.of(data).transition_view()
    return {k for k, f in zip(tv["key"], tv["finish_state"])
            if f == "memory"}


@pytest.fixture(scope="module")
def healthy_proxied_keys():
    return {
        backend: memory_keys(run_workflow(
            ResNet152Workflow(scale=0.03), seed=SEED,
            config=proxied_config(backend)).data)
        for backend, _, _ in CELLS.values()
    }


@pytest.mark.parametrize("kind", sorted(CELLS))
def test_proxy_chaos_cell(kind, healthy_proxied_keys):
    backend, fault_time, duration = CELLS[kind]
    schedule = FaultSchedule([FaultSpec(kind, fault_time,
                                        duration=duration)])
    result = run_workflow(ResNet152Workflow(scale=0.03), seed=SEED,
                          config=proxied_config(backend), faults=schedule)

    # The fault fired and is first-class in the provenance stream.
    (event,) = result.data.events_of_type("fault")
    assert event["kind"] == kind

    # The data plane kept working: puts and resolves happened, every
    # one carries the paper's identifiers, and none was lost.
    session = AnalysisSession.of(result.data)
    view = session.data_plane_view()
    assert len(view) > 0
    types = set(view["type"])
    assert "proxy_put" in types and "proxy_resolve" in types
    for proxy_type in PROXY_EVENT_TYPES:
        for proxy_event in result.data.events_of_type(proxy_type):
            for field in ("key", "worker", "hostname", "timestamp"):
                assert field in proxy_event
    resolves = [e for e in result.data.events_of_type("proxy_resolve")]
    assert resolves and all(e["status"] == "ok" for e in resolves)
    assert all(e["backend"] == backend for e in resolves)

    # Convergence with correct results, same keys as the healthy
    # proxied run.
    assert memory_keys(result.data) == healthy_proxied_keys[backend]

    # Deterministic: an identical second run yields an identical
    # event stream.
    again = run_workflow(ResNet152Workflow(scale=0.03), seed=SEED,
                         config=proxied_config(backend), faults=schedule)
    assert again.data.events == result.data.events


def test_worker_crash_with_durable_backend_skips_recompute():
    """A proxied (PFS-staged) model survives the crash of the worker
    that produced it: consumers resolve the staged blob instead of
    forcing a recompute of the producer."""
    schedule = FaultSchedule([FaultSpec("worker_crash", 0.7)])
    result = run_workflow(ResNet152Workflow(scale=0.03), seed=SEED,
                          config=proxied_config("pfs"), faults=schedule)
    session = AnalysisSession.of(result.data)
    report = session.data_plane_report()
    assert report["enabled"]
    assert report["n_failed_resolves"] == 0
    healthy = memory_keys(run_workflow(
        ResNet152Workflow(scale=0.03), seed=SEED,
        config=proxied_config("pfs")).data)
    assert memory_keys(result.data) == healthy


def test_disabled_data_plane_emits_nothing():
    """With proxying off (the default), the stream carries no proxy
    events and the analysis layer reports the plane as absent — the
    zero-footprint half of the golden-parity guarantee."""
    result = run_workflow(ResNet152Workflow(scale=0.03), seed=SEED)
    for proxy_type in PROXY_EVENT_TYPES:
        assert list(result.data.events_of_type(proxy_type)) == []
    session = AnalysisSession.of(result.data)
    assert len(session.data_plane_view()) == 0
    assert session.data_plane_report()["enabled"] is False
