"""FaultInjector: determinism, zero idle footprint, observability."""

import pytest

from repro.core import AnalysisSession, warning_histogram, warnings_in_window
from repro.faults import FaultSchedule, FaultSpec
from repro.workflows import ImageProcessingWorkflow, run_workflow


SCALE = 0.05


def run_ip(faults=None, seed=5):
    return run_workflow(ImageProcessingWorkflow(scale=SCALE), seed=seed,
                        faults=faults)


@pytest.fixture(scope="module")
def healthy():
    return run_ip()


@pytest.fixture(scope="module")
def crashed():
    return run_ip(FaultSchedule([FaultSpec("worker_crash", 1.0)]))


class TestZeroIdleFootprint:
    def test_empty_schedule_is_byte_identical(self, healthy):
        idle = run_ip(FaultSchedule([]))
        assert idle.data.events == healthy.data.events
        assert idle.fault_records == []

    def test_no_faults_argument_gives_empty_records(self, healthy):
        assert healthy.fault_records == []
        assert healthy.data.events_of_type("fault") == []


class TestDeterminism:
    def test_same_seed_same_schedule_same_stream(self, crashed):
        again = run_ip(FaultSchedule([FaultSpec("worker_crash", 1.0)]))
        assert again.data.events == crashed.data.events
        assert again.fault_records == crashed.fault_records

    def test_iterable_coerced_to_schedule(self, crashed):
        """Passing a bare list of specs behaves like a FaultSchedule."""
        again = run_ip([FaultSpec("worker_crash", 1.0)])
        assert again.data.events == crashed.data.events


class TestObservability:
    def test_fault_event_carries_shared_identifiers(self, crashed):
        (event,) = crashed.data.events_of_type("fault")
        assert event["kind"] == "worker_crash"
        assert event["worker"]     # joinable with transition/task views
        assert event["hostname"]   # joinable with io/warning views
        assert float(event["timestamp"]) >= 1.0

    def test_fault_records_mirror_events(self, crashed):
        (record,) = crashed.fault_records
        (event,) = crashed.data.events_of_type("fault")
        assert record["fired"] is True
        assert record["kind"] == event["kind"]
        assert record["worker"] == event["worker"]

    def test_worker_fault_lands_in_warning_view(self, crashed):
        warnings = AnalysisSession.of(crashed.data).warning_view()
        kinds = set(warnings["kind"])
        assert "fault_worker_crash" in kinds
        histogram = warning_histogram(warnings, bucket=10.0)
        assert "fault_worker_crash" in set(histogram["kind"])

    def test_platform_fault_lands_in_warning_view(self):
        result = run_ip(FaultSchedule(
            [FaultSpec("network_degrade", 0.5, duration=1.0)]))
        warnings = AnalysisSession.of(result.data).warning_view()
        assert "fault_network_degrade" in set(warnings["kind"])
        t0 = float(result.fault_records[0]["time"])
        assert warnings_in_window(warnings, t0, t0 + 1.0,
                                  kind="fault_network_degrade") == 1

    def test_injection_logged(self, crashed):
        logs = crashed.data.logs
        assert any("fault-injector: injected worker_crash" in
                   entry.get("message", "") for entry in logs)

    def test_crash_recovery_still_converges(self, crashed, healthy):
        tv_h = AnalysisSession.of(healthy.data).transition_view()
        tv_c = AnalysisSession.of(crashed.data).transition_view()
        memory_h = {k for k, f in zip(tv_h["key"], tv_h["finish_state"])
                    if f == "memory"}
        memory_c = {k for k, f in zip(tv_c["key"], tv_c["finish_state"])
                    if f == "memory"}
        assert memory_c == memory_h
        assert crashed.wall_time > healthy.wall_time


class TestTargeting:
    def test_named_worker_target_is_honoured(self, healthy):
        # Learn a real address from the healthy run's fault-free events.
        tv = AnalysisSession.of(healthy.data).transition_view()
        address = next(w for w in tv["worker"] if w)
        result = run_ip(FaultSchedule(
            [FaultSpec("worker_slowdown", 0.5, target=address,
                       duration=0.5)]))
        (record,) = result.fault_records
        assert record["worker"] == address

    def test_unknown_target_skips_with_log(self):
        result = run_ip(FaultSchedule(
            [FaultSpec("worker_crash", 0.5, target="1.2.3.4:99999")]))
        (record,) = result.fault_records
        assert record["fired"] is False
        assert result.data.events_of_type("fault") == []
        assert any("had no eligible target" in entry.get("message", "")
                   for entry in result.data.logs)

    def test_ost_index_target(self):
        result = run_ip(FaultSchedule(
            [FaultSpec("pfs_ost_slowdown", 0.5, target="0",
                       duration=1.0, magnitude=8.0)]))
        (record,) = result.fault_records
        assert record["target"] == "ost0"


class TestResilienceViewIntegration:
    def test_fault_row_joins_report(self, crashed):
        session = AnalysisSession.of(crashed.data)
        view = session.resilience_view()
        assert len(view) == 1
        assert view["kind"][0] == "worker_crash"
        report = session.resilience_report()
        assert report["n_faults"] == 1
        (recovery,) = report["recovery"]
        (correlation,) = report["fault_warnings"]
        assert correlation["n_warnings"] >= 1

    def test_detection_latency_when_recovery_required(self):
        """A crash the scheduler *must* notice yields detection latency.

        The default ``crashed`` fixture kills an idle worker while
        stealing is on, so placement routes around the corpse and the
        run converges with no recovery transitions at all (that is the
        failure-window placement fix working).  To exercise the
        detection metrics, crash the worker mid-task with stealing off:
        heartbeat liveness checking is then the only rescue path, so
        recovery transitions — and the latencies derived from them —
        exist by construction.
        """
        from repro.dasklike import DaskConfig

        result = run_workflow(
            ImageProcessingWorkflow(scale=SCALE), seed=5,
            config=DaskConfig(heartbeat_interval=0.1,
                              work_stealing=False),
            faults=FaultSchedule([FaultSpec("worker_crash", 1.2)]))
        session = AnalysisSession.of(result.data)
        report = session.resilience_report()
        (recovery,) = report["recovery"]
        assert recovery["detected_after"] is not None
        assert recovery["detected_after"] >= 0.0
        assert recovery["recovered_after"] is not None
        assert recovery["recovered_after"] >= recovery["detected_after"]

    def test_healthy_run_reports_nothing(self, healthy):
        session = AnalysisSession.of(healthy.data)
        assert len(session.resilience_view()) == 0
        report = session.resilience_report()
        assert report["n_faults"] == 0
        assert report["recomputed_tasks"] == 0
        assert report["retry_histogram"] == {}


class TestHealing:
    def test_slowdown_restores_exact_speed(self):
        """The heal must restore the saved original, not multiply back
        (repeated faults would accumulate float drift)."""
        from repro.faults import FaultInjector
        from repro.sim import RandomStreams

        from tests.helpers import make_instrumented

        env, cluster, run = make_instrumented()
        injector = FaultInjector(
            FaultSchedule([
                FaultSpec("worker_slowdown", 0.2, duration=0.5,
                          magnitude=3.0),
                FaultSpec("worker_slowdown", 0.3, duration=0.5,
                          magnitude=7.0),
            ]),
            RandomStreams(0),
        )
        injector.attach(run)
        nodes = list({id(w.node): w.node for w in run.dask.workers}
                     .values())
        original = [node.speed for node in nodes]
        env.run(until=env.timeout(5.0))
        assert [node.speed for node in nodes] == original
