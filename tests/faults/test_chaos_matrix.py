"""The chaos matrix: every fault kind against every paper workflow.

For each (fault kind x workflow) cell the acceptance bar is:

* the run converges and the client's results are intact — exactly the
  keys the healthy run materialized reach ``memory``, and no key ends
  in a mid-flight state;
* the injection is observable: a ``fault`` event in the stream, a row
  in ``resilience_view()``, and a ``fault_*`` entry in the warning
  histogram;
* the run is deterministic: the same seed and schedule reproduce the
  event stream exactly (asserted byte-for-byte on ``logs.jsonl`` for a
  representative cell).
"""

import pytest

from repro.core import AnalysisSession, warning_histogram
from repro.faults import FAULT_KINDS, FaultSchedule, FaultSpec
from repro.workflows import (
    ImageProcessingWorkflow,
    ResNet152Workflow,
    XGBoostWorkflow,
    run_workflow,
)

#: (workflow factory, fault time, fault duration).  Times sit mid-run
#: at these scales; the blackout duration exceeds the default liveness
#: deadline (4 missed 0.5 s heartbeats) so detection is exercised.
MATRIX_WORKFLOWS = {
    "image_processing": (lambda: ImageProcessingWorkflow(scale=0.05),
                         0.8, 3.0),
    "resnet152": (lambda: ResNet152Workflow(scale=0.03), 0.7, 3.0),
    "xgboost_trip": (lambda: XGBoostWorkflow(scale=0.05), 20.0, 10.0),
}

SEED = 11


def final_states(data):
    """Last state per key, ordered by timestamp (the stream interleaves
    buffered events out of time order during Mofka outages)."""
    tv = AnalysisSession.of(data).transition_view()
    last = {}
    for _, _, key, state in sorted(
            zip(tv["timestamp"].astype(float), range(len(tv)),
                tv["key"], tv["finish_state"])):
        last[key] = state
    return last


def memory_keys(data):
    tv = AnalysisSession.of(data).transition_view()
    return {k for k, f in zip(tv["key"], tv["finish_state"])
            if f == "memory"}


@pytest.fixture(scope="module")
def healthy_keys():
    return {
        name: memory_keys(run_workflow(factory(), seed=SEED).data)
        for name, (factory, _, _) in MATRIX_WORKFLOWS.items()
    }


@pytest.mark.parametrize("workflow", sorted(MATRIX_WORKFLOWS))
@pytest.mark.parametrize("kind", FAULT_KINDS)
def test_chaos_cell(kind, workflow, healthy_keys):
    factory, fault_time, duration = MATRIX_WORKFLOWS[workflow]
    schedule = FaultSchedule(
        [FaultSpec(kind, fault_time, duration=duration)])
    result = run_workflow(factory(), seed=SEED, faults=schedule)

    # The fault fired and is first-class in the provenance stream.
    assert len(result.fault_records) == 1
    assert result.fault_records[0]["fired"] is True
    (event,) = result.data.events_of_type("fault")
    assert event["kind"] == kind

    # Convergence with correct results: the same keys reach memory as
    # in the healthy run, and nothing is stranded mid-flight.
    assert memory_keys(result.data) == healthy_keys[workflow]
    for key, state in final_states(result.data).items():
        assert state in ("memory", "released", "forgotten"), \
            f"{key} stranded in {state} after {kind}"

    # Observable in the analysis layer.
    session = AnalysisSession.of(result.data)
    view = session.resilience_view()
    assert list(view["kind"]) == [kind]
    histogram = warning_histogram(session.warning_view(), bucket=1000.0)
    assert f"fault_{kind}" in set(histogram["kind"])

    # Deterministic: an identical second run yields an identical
    # event stream.
    again = run_workflow(factory(), seed=SEED, faults=schedule)
    assert again.data.events == result.data.events


def test_representative_cell_persists_byte_identically(tmp_path):
    """Full logs.jsonl byte-identity for one crash cell."""
    factory, fault_time, duration = MATRIX_WORKFLOWS["image_processing"]
    schedule = FaultSchedule(
        [FaultSpec("worker_crash", fault_time, duration=duration)])
    payloads = []
    for attempt in ("one", "two"):
        run_workflow(factory(), seed=SEED, faults=schedule,
                     persist_dir=str(tmp_path / attempt))
        log_path = (tmp_path / attempt / "imageprocessing" / "run0000"
                    / "logs.jsonl")
        payloads.append(log_path.read_bytes())
    assert payloads[0] == payloads[1]
    assert b"fault-injector: injected worker_crash" in payloads[0]
