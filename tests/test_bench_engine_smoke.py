"""The engine benchmark's smoke mode runs green.

``bench_engine.py --smoke`` exercises both tiers on tiny sizes: the
micro event storms (heap, zero-delay fast lane, mixed) and a small
``run_many`` scaling pass that asserts serial/thread/process executors
produce identical event streams.  Running it here keeps the benchmark —
and the cross-executor parity assertion inside it — from rotting.
"""

import importlib.util
import pathlib

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[1]
              / "benchmarks" / "bench_engine.py")


def test_engine_bench_smoke(capsys):
    spec = importlib.util.spec_from_file_location(
        "bench_engine_smoke", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "engine benchmark" in out
    assert "timeout_ring" in out
    assert "zero_delay" in out
    assert "mixed" in out
    assert "event streams identical across executors: yes" in out
