"""The engine benchmark's smoke mode runs green.

``bench_engine.py --smoke`` exercises both tiers on tiny sizes under a
wall-time budget: the micro event storms (timed lanes, zero-delay fast
lane, mixed) with both sides of the wheel-vs-heap ablation per cell,
and a small ``run_many`` scaling pass that asserts serial/thread/
process executors produce identical event streams.  Running it here
keeps the benchmark — the ablation matrix, the budget guard, and the
cross-executor parity assertion inside it — from rotting.
"""

import importlib.util
import pathlib

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[1]
              / "benchmarks" / "bench_engine.py")


def test_engine_bench_smoke(capsys):
    spec = importlib.util.spec_from_file_location(
        "bench_engine_smoke", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "engine benchmark" in out
    assert "timeout_ring" in out
    assert "clustered_herd" in out
    assert "zero_delay" in out
    assert "mixed" in out
    assert "wheel/heap" in out        # ablation column present
    assert "event streams identical across executors: yes" in out
    assert "smoke OK" in out          # budget guard engaged and passed
    assert "ablation covered" in out
