"""Producer flush statistics at the ``batch_size`` boundary.

Regression: ``push`` kicks the flusher on *every* call past the
threshold, so one real flush left the earlier kicks queued; the
flusher then woke immediately and flushed short/empty batches, which
distorted the ``n_flushes`` / ``flush_sizes`` statistics the A3
Mofka-overhead ablation reports.  The flusher now drains stale kicks
after each flush.
"""

from repro.mofka import MofkaService, Producer
from repro.sim import Environment


def make_producer(env, batch_size=4, linger=0.05):
    service = MofkaService(env)
    service.create_topic("t", 2)
    return Producer(env, service, "t", batch_size=batch_size, linger=linger)


class TestFlushStats:
    def test_burst_past_threshold_no_short_flush(self):
        """6 pushes at t=0 then 2 inside the linger window: the stale
        kicks from pushes 5 and 6 must not force flushes of 2+2."""
        env = Environment()
        producer = make_producer(env, batch_size=4, linger=0.05)

        def driver():
            for i in range(6):
                producer.push({"i": i})
            yield env.timeout(0.01)
            for i in range(6, 8):
                producer.push({"i": i})
            yield env.process(producer.close())

        env.run(until=env.process(driver()))
        assert producer.flush_sizes == [4, 4]
        assert producer.n_flushes == 2
        assert sum(producer.flush_sizes) == producer.n_pushed

    def test_exact_batch_size_is_one_full_flush(self):
        env = Environment()
        producer = make_producer(env, batch_size=4)

        def driver():
            for i in range(4):
                producer.push({"i": i})
            yield env.process(producer.close())

        env.run(until=env.process(driver()))
        assert producer.flush_sizes == [4]
        assert producer.n_flushes == 1

    def test_multiple_of_batch_size_all_full_flushes(self):
        env = Environment()
        producer = make_producer(env, batch_size=8)

        def driver():
            for i in range(24):
                producer.push({"i": i})
            yield env.process(producer.close())

        env.run(until=env.process(driver()))
        assert producer.flush_sizes == [8, 8, 8]
        assert sum(producer.flush_sizes) == producer.n_pushed

    def test_remainder_flushes_once_after_linger(self):
        """batch_size + 1 pushes: one full flush, then the single
        leftover event flushes once the linger timer fires — not
        immediately off a stale kick."""
        env = Environment()
        producer = make_producer(env, batch_size=4, linger=0.05)

        def driver():
            for i in range(5):
                producer.push({"i": i})
            yield env.timeout(0.2)
            yield env.process(producer.close())

        env.run(until=env.process(driver()))
        assert producer.flush_sizes == [4, 1]
        # The leftover waited for the linger window, it was not kicked
        # out by a stale "full" token at t~0.
        assert producer.flush_durations[-1] >= 0.0
        assert producer.n_flushes == 2

    def test_no_empty_flushes_ever(self):
        env = Environment()
        producer = make_producer(env, batch_size=3, linger=0.02)

        def driver():
            for i in range(10):
                producer.push({"i": i})
                if i % 4 == 3:
                    yield env.timeout(0.03)
            yield env.process(producer.close())

        env.run(until=env.process(driver()))
        assert all(size > 0 for size in producer.flush_sizes)
        assert sum(producer.flush_sizes) == producer.n_pushed

    def test_on_flush_observer_sees_every_flush(self):
        env = Environment()
        producer = make_producer(env, batch_size=4)
        seen = []
        producer.on_flush = lambda size, dur: seen.append((size, dur))

        def driver():
            for i in range(9):
                producer.push({"i": i})
            yield env.process(producer.close())

        env.run(until=env.process(driver()))
        assert [size for size, _ in seen] == producer.flush_sizes
        assert all(dur > 0 for _, dur in seen)
