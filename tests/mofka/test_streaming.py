"""Tests for topics, producer batching, consumers, SSG, and Bedrock."""

import pytest

from repro.mofka import (
    BedrockConfig,
    Consumer,
    MofkaService,
    Producer,
    SSGGroup,
    Topic,
    bootstrap,
)
from repro.sim import Environment


def make_service(env, n_partitions=2):
    service = MofkaService(env)
    service.create_topic("prov", n_partitions)
    return service


class TestTopic:
    def test_append_and_read(self):
        topic = Topic("t", 2)
        event = topic.partitions[0].append({"k": 1}, b"payload", 0.5)
        assert event.offset == 0
        back = topic.partitions[0].read(0)
        assert back.metadata == {"k": 1}
        assert back.data == b"payload"
        assert back.timestamp == 0.5

    def test_events_globally_ordered_by_time(self):
        topic = Topic("t", 2)
        topic.partitions[1].append({"i": 2}, b"", 2.0)
        topic.partitions[0].append({"i": 1}, b"", 1.0)
        topic.partitions[0].append({"i": 3}, b"", 3.0)
        assert [e.metadata["i"] for e in topic.events()] == [1, 2, 3]

    def test_partition_routing_stable(self):
        topic = Topic("t", 4)
        a = topic.partition_for("worker-1", 0)
        b = topic.partition_for("worker-1", 99)
        assert a == b
        # Round-robin without a key.
        assert topic.partition_for(None, 0) != topic.partition_for(None, 1)

    def test_dump_load_roundtrip(self, tmp_path):
        topic = Topic("t", 2)
        for i in range(10):
            topic.partitions[i % 2].append({"i": i}, f"d{i}".encode(), float(i))
        topic.dump(str(tmp_path))
        loaded = Topic.load(str(tmp_path), "t", 2)
        assert len(loaded) == 10
        assert [e.metadata["i"] for e in loaded.events()] == list(range(10))
        assert loaded.events()[3].data == b"d3"

    def test_zero_partitions_rejected(self):
        with pytest.raises(ValueError):
            Topic("t", 0)


class TestProducerConsumer:
    def test_push_is_nonblocking_and_batched(self):
        env = Environment()
        service = make_service(env)
        producer = Producer(env, service, "prov", batch_size=8, linger=0.05)

        def workload():
            for i in range(20):
                producer.push({"i": i})
                yield env.timeout(0.001)
            yield env.process(producer.close())

        env.run(until=env.process(workload()))
        assert producer.n_pushed == 20
        assert service.n_events == 20
        # Batching: far fewer RPCs than events.
        assert service.n_produce_rpcs < 20
        assert sum(producer.flush_sizes) == 20

    def test_linger_flushes_partial_batches(self):
        env = Environment()
        service = make_service(env)
        producer = Producer(env, service, "prov", batch_size=1000,
                            linger=0.01)

        def workload():
            producer.push({"only": True})
            yield env.timeout(0.5)

        env.run(until=env.process(workload()))
        assert service.n_events == 1  # flushed by linger, not batch size

    def test_consumer_pull_in_situ(self):
        env = Environment()
        service = make_service(env)
        producer = Producer(env, service, "prov", batch_size=4, linger=0.01)
        consumer = Consumer(env, service, "prov")
        seen = []

        def workload():
            for i in range(12):
                producer.push({"i": i})
            yield env.process(producer.flush())
            events = yield env.process(consumer.pull())
            seen.extend(events)

        env.run(until=env.process(workload()))
        assert sorted(e.metadata["i"] for e in seen) == list(range(12))
        assert consumer.lag == 0

    def test_fetch_all_bulk(self):
        env = Environment()
        service = make_service(env)
        producer = Producer(env, service, "prov", batch_size=4, linger=0.01)

        def workload():
            for i in range(9):
                producer.push({"i": i}, data=b"x" * i)
            yield env.process(producer.close())

        env.run(until=env.process(workload()))
        consumer = Consumer(env, service, "prov")
        events = consumer.fetch_all()
        assert len(events) == 9
        assert events[-1].nbytes > 0

    def test_push_after_close_rejected(self):
        env = Environment()
        service = make_service(env)
        producer = Producer(env, service, "prov")

        def workload():
            yield env.process(producer.close())

        env.run(until=env.process(workload()))
        with pytest.raises(RuntimeError):
            producer.push({"late": True})

    def test_bigger_batches_mean_fewer_rpcs(self):
        def rpcs(batch_size):
            env = Environment()
            service = make_service(env)
            producer = Producer(env, service, "prov",
                                batch_size=batch_size, linger=10.0)

            def workload():
                for i in range(256):
                    producer.push({"i": i})
                yield env.process(producer.close())

            env.run(until=env.process(workload()))
            return service.n_produce_rpcs

        assert rpcs(256) < rpcs(16) < rpcs(2)


class TestSSG:
    def test_join_leave(self):
        env = Environment()
        group = SSGGroup(env, "g")
        group.join("a")
        group.join("b")
        assert len(group.alive()) == 2
        group.leave("a")
        assert len(group.alive()) == 1

    def test_duplicate_join_rejected(self):
        env = Environment()
        group = SSGGroup(env, "g")
        group.join("a")
        with pytest.raises(ValueError):
            group.join("a")

    def test_fault_detection_and_recovery(self):
        env = Environment()
        group = SSGGroup(env, "g", heartbeat_period=0.5,
                         suspect_after=2.0, dead_after=5.0)
        changes = []
        group.on_change(lambda member, change: changes.append(
            (member.address, change, round(env.now, 1))))
        group.join("healthy")
        group.join("flaky")
        group.start_monitor()

        def heartbeats():
            while env.now < 15.0:
                group.heartbeat("healthy")
                # flaky: alive until 1.0, revives at ~3.5 (while merely
                # suspect), then goes permanently silent.
                if env.now < 1.0 or 3.5 <= env.now < 4.0:
                    group.heartbeat("flaky")
                yield env.timeout(0.5)
            group.stop_monitor()

        env.run(until=env.process(heartbeats()))
        kinds = [(addr, change) for addr, change, _ in changes]
        assert ("flaky", "suspected") in kinds
        assert ("flaky", "recovered") in kinds
        assert ("flaky", "died") in kinds
        assert all(addr != "healthy" for addr, _ in kinds)


class TestBedrock:
    def test_bootstrap_creates_topics(self):
        env = Environment()
        config = BedrockConfig(topics=(("prov", 2), ("io", 1)))
        service = bootstrap(env, config)
        assert len(service.topic("prov").partitions) == 2
        assert len(service.topic("io").partitions) == 1

    def test_from_dict(self):
        config = BedrockConfig.from_dict({
            "service_name": "svc",
            "topics": [{"name": "a", "partitions": 3}],
        })
        assert config.service_name == "svc"
        assert config.topics == (("a", 3),)
        assert "topics" in config.describe()

    def test_service_dump_load(self, tmp_path):
        env = Environment()
        service = bootstrap(env, BedrockConfig(topics=(("prov", 2),),
                                               start_monitor=False))

        def workload():
            yield env.process(service.produce_batch(
                "prov", [({"i": i}, b"") for i in range(5)]))

        env.run(until=env.process(workload()))
        service.dump(str(tmp_path))
        topics = MofkaService.load_topics(str(tmp_path))
        assert len(topics["prov"]) == 5
