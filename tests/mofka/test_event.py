"""Tests for the Mofka Event structure."""

import json

import pytest

from repro.mofka import Event


class TestEvent:
    def make(self):
        return Event(topic="t", partition=1, offset=7, timestamp=3.5,
                     metadata={"type": "task_run", "key": "('x', 1)"},
                     data=b"\x00payload")

    def test_json_roundtrip_metadata(self):
        event = self.make()
        line = event.to_json()
        parsed = json.loads(line)
        assert parsed["topic"] == "t"
        assert parsed["offset"] == 7
        assert parsed["data_size"] == 8
        back = Event.from_json(line, data=event.data)
        assert back.metadata == event.metadata
        assert back.data == event.data
        assert back.timestamp == 3.5

    def test_json_is_sorted_and_stable(self):
        event = self.make()
        assert event.to_json() == event.to_json()
        # sorted keys -> deterministic serialization
        keys = list(json.loads(event.to_json()))
        assert keys == sorted(keys)

    def test_nbytes_counts_metadata_and_payload(self):
        event = self.make()
        assert event.nbytes == len(json.dumps(event.metadata)) + 8

    def test_frozen(self):
        event = self.make()
        with pytest.raises(Exception):
            event.offset = 99


class TestNbytesCache:
    def test_nbytes_computed_once(self, monkeypatch):
        event = Event(topic="t", partition=0, offset=0, timestamp=1.0,
                      metadata={"k": "v"}, data=b"xy")
        expected = len(json.dumps({"k": "v"})) + 2
        assert event.nbytes == expected
        calls = []
        real_dumps = json.dumps

        def counting_dumps(*args, **kwargs):
            calls.append(args)
            return real_dumps(*args, **kwargs)

        monkeypatch.setattr("repro.mofka.event.json.dumps", counting_dumps)
        assert event.nbytes == expected  # served from the cache
        assert event.nbytes == expected
        assert calls == []

    def test_cache_does_not_leak_into_equality(self):
        a = Event(topic="t", partition=0, offset=0, timestamp=1.0,
                  metadata={"k": "v"})
        b = Event(topic="t", partition=0, offset=0, timestamp=1.0,
                  metadata={"k": "v"})
        _ = a.nbytes  # populate one side's cache only
        assert a == b


class TestStreamOrder:
    def make_events(self):
        from repro.mofka import stream_sorted  # noqa: F401
        return [
            Event("t", partition=1, offset=0, timestamp=2.0, metadata={}),
            Event("t", partition=0, offset=1, timestamp=2.0, metadata={}),
            Event("t", partition=0, offset=0, timestamp=2.0, metadata={}),
            Event("t", partition=2, offset=5, timestamp=1.0, metadata={}),
        ]

    def test_orders_by_timestamp_then_partition_then_offset(self):
        from repro.mofka import stream_sorted
        ordered = stream_sorted(self.make_events())
        assert [(e.timestamp, e.partition, e.offset) for e in ordered] == [
            (1.0, 2, 5), (2.0, 0, 0), (2.0, 0, 1), (2.0, 1, 0),
        ]

    def test_matches_topic_and_consumer_ordering(self):
        """The shared key is what Topic.events / Consumer.pull sort by."""
        from repro.mofka import stream_order, stream_sorted
        events = self.make_events()
        legacy = sorted(events,
                        key=lambda e: (e.timestamp, e.partition, e.offset))
        assert stream_sorted(events) == legacy
        assert [stream_order(e) for e in legacy] == sorted(
            stream_order(e) for e in events)

    def test_returns_fresh_list(self):
        from repro.mofka import stream_sorted
        events = self.make_events()
        ordered = stream_sorted(events)
        assert ordered is not events
        ordered.pop()
        assert len(events) == 4
