"""Tests for the Mofka Event structure."""

import json

import pytest

from repro.mofka import Event


class TestEvent:
    def make(self):
        return Event(topic="t", partition=1, offset=7, timestamp=3.5,
                     metadata={"type": "task_run", "key": "('x', 1)"},
                     data=b"\x00payload")

    def test_json_roundtrip_metadata(self):
        event = self.make()
        line = event.to_json()
        parsed = json.loads(line)
        assert parsed["topic"] == "t"
        assert parsed["offset"] == 7
        assert parsed["data_size"] == 8
        back = Event.from_json(line, data=event.data)
        assert back.metadata == event.metadata
        assert back.data == event.data
        assert back.timestamp == 3.5

    def test_json_is_sorted_and_stable(self):
        event = self.make()
        assert event.to_json() == event.to_json()
        # sorted keys -> deterministic serialization
        keys = list(json.loads(event.to_json()))
        assert keys == sorted(keys)

    def test_nbytes_counts_metadata_and_payload(self):
        event = self.make()
        assert event.nbytes == len(json.dumps(event.metadata)) + 8

    def test_frozen(self):
        event = self.make()
        with pytest.raises(Exception):
            event.offset = 99
