"""Tests for consumer paging and offset semantics."""

import pytest

from repro.mofka import Consumer, MofkaService, Producer
from repro.sim import Environment


def loaded_service(env, n_events=50, n_partitions=2):
    service = MofkaService(env)
    service.create_topic("t", n_partitions)
    producer = Producer(env, service, "t", batch_size=16, linger=0.01)

    def workload():
        for i in range(n_events):
            producer.push({"i": i})
        yield env.process(producer.close())

    env.run(until=env.process(workload()))
    return service


class TestPaging:
    def test_pull_respects_max_events(self):
        env = Environment()
        service = loaded_service(env, n_events=50)
        consumer = Consumer(env, service, "t")
        got = []

        def proc():
            events = yield env.process(consumer.pull(max_events=10))
            got.extend(events)

        env.run(until=env.process(proc()))
        assert 0 < len(got) <= 10

    def test_successive_pulls_advance_offsets(self):
        env = Environment()
        service = loaded_service(env, n_events=30)
        consumer = Consumer(env, service, "t")
        seen = []

        def proc():
            while consumer.lag:
                events = yield env.process(consumer.pull(max_events=8))
                seen.extend(e.metadata["i"] for e in events)

        env.run(until=env.process(proc()))
        assert sorted(seen) == list(range(30))
        assert len(seen) == len(set(seen))  # no duplicates
        assert consumer.lag == 0

    def test_two_consumers_are_independent(self):
        env = Environment()
        service = loaded_service(env, n_events=12)
        a = Consumer(env, service, "t", name="a")
        b = Consumer(env, service, "t", name="b")
        got_a, got_b = [], []

        def proc():
            events = yield env.process(a.pull(4096))
            got_a.extend(events)
            events = yield env.process(b.pull(4096))
            got_b.extend(events)

        env.run(until=env.process(proc()))
        assert len(got_a) == len(got_b) == 12

    def test_fetch_all_does_not_advance_offsets(self):
        env = Environment()
        service = loaded_service(env, n_events=9)
        consumer = Consumer(env, service, "t")
        assert len(consumer.fetch_all()) == 9
        assert consumer.lag == 9  # bulk replay leaves offsets untouched

    def test_unknown_topic_rejected(self):
        env = Environment()
        service = MofkaService(env)
        with pytest.raises(KeyError):
            Consumer(env, service, "ghost")
