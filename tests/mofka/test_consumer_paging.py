"""Tests for consumer paging and offset semantics."""

import pytest

from repro.mofka import Consumer, MofkaService, Producer
from repro.sim import Environment


def loaded_service(env, n_events=50, n_partitions=2):
    service = MofkaService(env)
    service.create_topic("t", n_partitions)
    producer = Producer(env, service, "t", batch_size=16, linger=0.01)

    def workload():
        for i in range(n_events):
            producer.push({"i": i})
        yield env.process(producer.close())

    env.run(until=env.process(workload()))
    return service


class TestPaging:
    def test_pull_respects_max_events(self):
        env = Environment()
        service = loaded_service(env, n_events=50)
        consumer = Consumer(env, service, "t")
        got = []

        def proc():
            events = yield env.process(consumer.pull(max_events=10))
            got.extend(events)

        env.run(until=env.process(proc()))
        assert 0 < len(got) <= 10

    def test_successive_pulls_advance_offsets(self):
        env = Environment()
        service = loaded_service(env, n_events=30)
        consumer = Consumer(env, service, "t")
        seen = []

        def proc():
            while consumer.lag:
                events = yield env.process(consumer.pull(max_events=8))
                seen.extend(e.metadata["i"] for e in events)

        env.run(until=env.process(proc()))
        assert sorted(seen) == list(range(30))
        assert len(seen) == len(set(seen))  # no duplicates
        assert consumer.lag == 0

    def test_two_consumers_are_independent(self):
        env = Environment()
        service = loaded_service(env, n_events=12)
        a = Consumer(env, service, "t", name="a")
        b = Consumer(env, service, "t", name="b")
        got_a, got_b = [], []

        def proc():
            events = yield env.process(a.pull(4096))
            got_a.extend(events)
            events = yield env.process(b.pull(4096))
            got_b.extend(events)

        env.run(until=env.process(proc()))
        assert len(got_a) == len(got_b) == 12

    def test_fetch_all_does_not_advance_offsets(self):
        env = Environment()
        service = loaded_service(env, n_events=9)
        consumer = Consumer(env, service, "t")
        assert len(consumer.fetch_all()) == 9
        assert consumer.lag == 9  # bulk replay leaves offsets untouched

    def test_unknown_topic_rejected(self):
        env = Environment()
        service = MofkaService(env)
        with pytest.raises(KeyError):
            Consumer(env, service, "ghost")


class TestHotPartitionQuota:
    """Unused quota must flow to hot partitions within one pull.

    Regression: ``pull`` used a static ``max_events // n_partitions``
    quota, so an in-situ consumer facing one hot partition and several
    idle ones was capped at a fraction of its budget and its lag grew
    without bound.
    """

    @staticmethod
    def hot_service(env, hot_events=100, n_partitions=4, hot_index=0):
        service = MofkaService(env)
        topic = service.create_topic("t", n_partitions)
        for i in range(hot_events):
            topic.partitions[hot_index].append({"i": i}, b"", float(i))
        return service

    def pull_once(self, env, consumer, max_events):
        got = []

        def proc():
            events = yield env.process(consumer.pull(max_events=max_events))
            got.extend(events)

        env.run(until=env.process(proc()))
        return got

    def test_one_hot_many_idle_uses_full_budget(self):
        env = Environment()
        service = self.hot_service(env, hot_events=100, n_partitions=4)
        consumer = Consumer(env, service, "t")
        got = self.pull_once(env, consumer, max_events=40)
        # Static quota would cap this at 40 // 4 == 10 events.
        assert len(got) == 40
        assert [e.metadata["i"] for e in got] == list(range(40))
        assert consumer.lag == 60

    def test_hot_partition_drains_in_bounded_pulls(self):
        env = Environment()
        service = self.hot_service(env, hot_events=90, n_partitions=8)
        consumer = Consumer(env, service, "t")
        pulls = 0
        while consumer.lag:
            assert len(self.pull_once(env, consumer, max_events=30)) > 0
            pulls += 1
        assert pulls == 3  # ceil(90 / 30), not ceil(90 / (30 // 8))

    def test_skewed_load_respects_budget(self):
        env = Environment()
        service = MofkaService(env)
        topic = service.create_topic("t", 3)
        for i in range(50):
            topic.partitions[0].append({"i": i}, b"", float(i))
        for i in range(3):
            topic.partitions[2].append({"i": 100 + i}, b"", float(i))
        consumer = Consumer(env, service, "t")
        got = self.pull_once(env, consumer, max_events=20)
        assert len(got) == 20  # budget never exceeded, never wasted
        assert consumer.lag == 33

    def test_even_load_unchanged(self):
        env = Environment()
        service = MofkaService(env)
        topic = service.create_topic("t", 2)
        for i in range(16):
            topic.partitions[i % 2].append({"i": i}, b"", float(i))
        consumer = Consumer(env, service, "t")
        got = self.pull_once(env, consumer, max_events=8)
        assert len(got) == 8
        assert consumer.lag == 8
