"""Tests for the Yokan and Warabi microservice stores."""

import pytest

from repro.mofka import WarabiStore, YokanStore


class TestYokan:
    def test_put_get(self):
        store = YokanStore()
        store.put("a", "1")
        assert store.get("a") == "1"
        assert store.exists("a")
        assert not store.exists("b")

    def test_missing_key_raises(self):
        with pytest.raises(KeyError, match="no such key"):
            YokanStore().get("ghost")

    def test_type_checked(self):
        with pytest.raises(TypeError):
            YokanStore().put("k", 42)

    def test_erase_idempotent(self):
        store = YokanStore()
        store.put("k", "v")
        store.erase("k")
        store.erase("k")
        assert len(store) == 0

    def test_prefix_listing_sorted(self):
        store = YokanStore()
        for key in ("evt/002", "evt/000", "evt/001", "cfg/x"):
            store.put(key, key)
        assert store.list_keys("evt/") == ["evt/000", "evt/001", "evt/002"]
        assert [k for k, _ in store.iter_prefix("cfg/")] == ["cfg/x"]

    def test_json_roundtrip(self):
        store = YokanStore()
        store.put_json("j", {"x": [1, 2], "y": None})
        assert store.get_json("j") == {"x": [1, 2], "y": None}

    def test_dump_load(self, tmp_path):
        store = YokanStore()
        store.put("a", "1")
        store.put_json("b", {"nested": True})
        path = str(tmp_path / "dir" / "kv.jsonl")
        store.dump(path)
        loaded = YokanStore.load(path)
        assert loaded.get("a") == "1"
        assert loaded.get_json("b") == {"nested": True}


class TestWarabi:
    def test_create_read(self):
        store = WarabiStore()
        rid = store.create(b"hello world")
        assert store.read(rid) == b"hello world"
        assert store.size(rid) == 11

    def test_partial_read(self):
        store = WarabiStore()
        rid = store.create(b"0123456789")
        assert store.read(rid, offset=2, length=3) == b"234"
        assert store.read(rid, offset=8, length=100) == b"89"

    def test_bad_region(self):
        with pytest.raises(KeyError):
            WarabiStore().read(0)

    def test_bad_offset(self):
        store = WarabiStore()
        rid = store.create(b"abc")
        with pytest.raises(ValueError):
            store.read(rid, offset=10)

    def test_type_checked(self):
        with pytest.raises(TypeError):
            WarabiStore().create("not-bytes")

    def test_total_bytes(self):
        store = WarabiStore()
        store.create(b"aa")
        store.create(b"bbb")
        assert store.total_bytes == 5
        assert len(store) == 2

    def test_dump_load(self, tmp_path):
        store = WarabiStore()
        store.create(b"first")
        store.create(b"")
        store.create(b"\x00\x01binary")
        path = str(tmp_path / "blobs.warabi")
        store.dump(path)
        loaded = WarabiStore.load(path)
        assert loaded.read(0) == b"first"
        assert loaded.read(1) == b""
        assert loaded.read(2) == b"\x00\x01binary"
