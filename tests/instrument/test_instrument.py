"""Tests for the Mofka plugins, metadata capture, and run recorder."""

import json
import os

import pytest

from repro.dasklike import DaskConfig, TaskGraph, TaskSpec, IOOp
from repro.darshan import DarshanReport
from repro.instrument import PROVENANCE_TOPIC, InstrumentedRun, read_provenance
from repro.jobs import BatchSystem, JobSpec
from repro.mofka import Consumer, MofkaService
from repro.platform import Cluster, ClusterSpec
from repro.sim import Environment, RandomStreams


def make_instrumented(seed=0, run_index=0, **kwargs):
    env = Environment()
    streams = RandomStreams(seed, run_index=run_index)
    cluster = Cluster(env, ClusterSpec(num_nodes=8), streams)
    batch = BatchSystem(env, cluster, streams)
    job = env.run(until=env.process(batch.submit(
        JobSpec(worker_nodes=2, workers_per_node=2, threads_per_worker=4)
    )))
    run = InstrumentedRun(env, cluster, job, streams=streams,
                          run_index=run_index, seed=seed, **kwargs)
    run.start()
    return env, cluster, run


def small_workload_graph(cluster):
    cluster.pfs.create_file("/lus/data.bin", 16 * 2**20)
    tasks = [
        TaskSpec(key=(f"load-aabbccdd", i), compute_time=0.02,
                 reads=(IOOp("/lus/data.bin", "read", i * 2**20, 2**20),),
                 output_nbytes=2**20)
        for i in range(8)
    ]
    tasks.append(TaskSpec(
        key="sum-eeff0011",
        deps=tuple((f"load-aabbccdd", i) for i in range(8)),
        compute_time=0.05, output_nbytes=128,
    ))
    return TaskGraph(tasks)


def run_workload(env, run, graph):
    client = run.client()
    results = []

    def driver():
        yield env.process(client.connect())
        result = yield env.process(client.compute(graph, optimize=False))
        results.append(result)
        yield env.process(run.drain())

    env.run(until=env.process(driver()))
    return client, results


class TestPluginsStreamEvents:
    def test_events_reach_mofka(self):
        env, cluster, run = make_instrumented()
        client, _ = run_workload(env, run, small_workload_graph(cluster))
        consumer = Consumer(env, run.mofka, PROVENANCE_TOPIC)
        events = consumer.fetch_all()
        types = {e.metadata["type"] for e in events}
        assert "transition" in types
        assert "task_run" in types
        assert "communication" in types

    def test_transition_events_carry_full_schema(self):
        env, cluster, run = make_instrumented()
        run_workload(env, run, small_workload_graph(cluster))
        events = Consumer(env, run.mofka, PROVENANCE_TOPIC).fetch_all()
        transitions = [e for e in events if e.metadata["type"] == "transition"]
        sample = transitions[0].metadata
        for field in ("key", "group", "prefix", "start_state",
                      "finish_state", "timestamp", "stimulus", "source"):
            assert field in sample

    def test_task_run_events_have_thread_ids(self):
        env, cluster, run = make_instrumented()
        run_workload(env, run, small_workload_graph(cluster))
        events = Consumer(env, run.mofka, PROVENANCE_TOPIC).fetch_all()
        runs = [e for e in events if e.metadata["type"] == "task_run"]
        assert len(runs) == 9
        valid_tids = {tid for w in run.dask.workers for tid in w.thread_ids}
        assert all(e.metadata["thread_id"] in valid_tids for e in runs)

    def test_scheduler_and_worker_sources_present(self):
        env, cluster, run = make_instrumented()
        run_workload(env, run, small_workload_graph(cluster))
        events = Consumer(env, run.mofka, PROVENANCE_TOPIC).fetch_all()
        sources = {e.metadata["plugin_source"] for e in events}
        assert "scheduler" in sources
        assert len(sources) > 1


class TestDarshanIntegration:
    def test_worker_io_lands_in_darshan(self):
        env, cluster, run = make_instrumented()
        run_workload(env, run, small_workload_graph(cluster))
        logs = [r.finalize() for r in run.darshan_runtimes]
        assert sum(log.total_io_ops for log in logs) == 8
        threads = {s.pthread_id for log in logs for s in log.dxt_segments}
        valid = {tid for w in run.dask.workers for tid in w.thread_ids}
        assert threads <= valid

    def test_dxt_buffer_limit_applies(self):
        env, cluster, run = make_instrumented(dxt_buffer_limit=1)
        run_workload(env, run, small_workload_graph(cluster))
        logs = [r.finalize() for r in run.darshan_runtimes]
        total_segments = sum(len(log.dxt_segments) for log in logs)
        total_ops = sum(log.total_io_ops for log in logs)
        assert total_ops == 8
        # 8 ops over 4 worker processes with a 1-segment budget: some
        # process must have overflowed its DXT buffer.
        assert total_segments < total_ops
        assert any(log.dxt_truncated for log in logs)
        assert sum(log.dxt_dropped for log in logs) == total_ops - total_segments


class TestPersistence:
    def test_run_directory_layout(self, tmp_path):
        env, cluster, run = make_instrumented()
        client, _ = run_workload(env, run, small_workload_graph(cluster))
        run_dir = run.persist(str(tmp_path / "run0000"), client=client,
                              workflow={"name": "test-workload"})
        assert os.path.exists(os.path.join(run_dir, "provenance.json"))
        assert os.path.exists(os.path.join(run_dir, "job.json"))
        assert os.path.exists(os.path.join(run_dir, "logs.jsonl"))
        assert os.path.exists(os.path.join(run_dir, "mofka", "MANIFEST"))
        darshan_files = os.listdir(os.path.join(run_dir, "darshan"))
        assert len(darshan_files) == 4  # one per worker process

    def test_provenance_layers(self, tmp_path):
        env, cluster, run = make_instrumented(seed=7, run_index=3)
        client, _ = run_workload(env, run, small_workload_graph(cluster))
        run_dir = run.persist(str(tmp_path / "run"), client=client)
        doc = read_provenance(os.path.join(run_dir, "provenance.json"))
        layers = doc["layers"]
        assert doc["run_index"] == 3 and doc["seed"] == 7
        assert "hardware_infrastructure" in layers
        assert "system_software_and_job" in layers
        assert "application" in layers
        hw = layers["hardware_infrastructure"]
        assert len(hw["allocated_nodes"]) == 3  # 1 scheduler + 2 workers
        app = layers["application"]
        assert len(app["wms"]["workers"]) == 4
        assert app["profilers"]["darshan"]["enabled"]

    def test_persisted_mofka_stream_reloadable(self, tmp_path):
        env, cluster, run = make_instrumented()
        client, _ = run_workload(env, run, small_workload_graph(cluster))
        run_dir = run.persist(str(tmp_path / "run"), client=client)
        topics = MofkaService.load_topics(os.path.join(run_dir, "mofka"))
        events = topics[PROVENANCE_TOPIC].events()
        assert events
        live = Consumer(env, run.mofka, PROVENANCE_TOPIC).fetch_all()
        assert len(events) == len(live)

    def test_persisted_darshan_readable_by_report(self, tmp_path):
        env, cluster, run = make_instrumented()
        client, _ = run_workload(env, run, small_workload_graph(cluster))
        run_dir = run.persist(str(tmp_path / "run"), client=client)
        report = DarshanReport.from_directory(
            os.path.join(run_dir, "darshan"))
        assert report.total_io_ops == 8
        assert report.distinct_files() == ["/lus/data.bin"]

    def test_logs_jsonl_parses(self, tmp_path):
        env, cluster, run = make_instrumented()
        client, _ = run_workload(env, run, small_workload_graph(cluster))
        run_dir = run.persist(str(tmp_path / "run"), client=client)
        with open(os.path.join(run_dir, "logs.jsonl")) as fh:
            entries = [json.loads(line) for line in fh]
        assert entries
        sources = {e["source"] for e in entries}
        assert "scheduler" in sources and "client" in sources
