"""Tests for the online (in-situ) extensions: Darshan→Mofka streaming,
the in-situ monitor, and adaptive DXT capture."""

import pytest

from repro.darshan import AdaptiveDXTModule, DXTSegment
from repro.instrument import DXT_TOPIC, OnlineMonitor, PROVENANCE_TOPIC
from repro.mofka import Consumer

from tests.helpers import drive_instrumented, make_instrumented
from tests.instrument.test_instrument import small_workload_graph


class TestOnlineDarshanBridge:
    def test_segments_stream_to_mofka(self):
        env, cluster, run = make_instrumented(online_darshan=True)
        drive_instrumented(env, run, small_workload_graph(cluster),
                           optimize=False)
        consumer = Consumer(env, run.mofka, DXT_TOPIC)
        events = consumer.fetch_all()
        assert len(events) == 8  # one per read op
        sample = events[0].metadata
        assert sample["type"] == "dxt_segment"
        for field in ("rank", "hostname", "pthread_id", "file", "op",
                      "offset", "length", "start", "end"):
            assert field in sample

    def test_online_stream_matches_offline_log(self):
        env, cluster, run = make_instrumented(online_darshan=True)
        drive_instrumented(env, run, small_workload_graph(cluster),
                           optimize=False)
        streamed = Consumer(env, run.mofka, DXT_TOPIC).fetch_all()
        offline = [s for r in run.darshan_runtimes
                   for s in r.finalize().dxt_segments]
        assert len(streamed) == len(offline)
        streamed_keys = {(e.metadata["pthread_id"], e.metadata["offset"],
                          e.metadata["file"]) for e in streamed}
        offline_keys = {(s.pthread_id, s.offset, s.path) for s in offline}
        assert streamed_keys == offline_keys

    def test_disabled_by_default(self):
        env, cluster, run = make_instrumented()
        assert run.online_bridge is None
        drive_instrumented(env, run, small_workload_graph(cluster),
                           optimize=False)
        assert DXT_TOPIC not in run.mofka.topics


class TestOnlineMonitor:
    def test_snapshots_track_progress(self):
        env, cluster, run = make_instrumented(online_darshan=True)
        monitor = OnlineMonitor(env, run.mofka,
                                (PROVENANCE_TOPIC, DXT_TOPIC),
                                interval=0.2)
        monitor.start()
        client, _ = drive_instrumented(env, run,
                                       small_workload_graph(cluster),
                                       optimize=False)
        monitor.stop()

        def final_poll():
            yield env.process(monitor.poll())

        env.run(until=env.process(final_poll()))
        snap = monitor.snapshots[-1]
        assert snap.tasks_completed == 9
        assert snap.io_ops == 8
        assert snap.io_bytes == 8 * 2**20
        assert "load" in snap.prefix_durations
        n, mean = snap.prefix_durations["load"]
        assert n == 8 and mean > 0
        # Progress is monotone across snapshots.
        completed = [s.tasks_completed for s in monitor.snapshots]
        assert completed == sorted(completed)

    def test_snapshot_callback_fires(self):
        env, cluster, run = make_instrumented()
        seen = []
        monitor = OnlineMonitor(env, run.mofka, (PROVENANCE_TOPIC,),
                                interval=0.05, on_snapshot=seen.append)
        monitor.start()
        drive_instrumented(env, run, small_workload_graph(cluster),
                           optimize=False)
        monitor.stop()
        assert seen
        assert all(hasattr(s, "lag") for s in seen)


class TestAdaptiveDXT:
    def seg(self, i):
        return DXTSegment(path="/f", op="read", offset=i, length=1,
                          start=float(i), end=float(i) + 0.1,
                          pthread_id=7)

    def test_full_fidelity_below_watermark(self):
        mod = AdaptiveDXTModule(buffer_limit=100)
        for i in range(40):
            mod.record(self.seg(i))
        assert len(mod.segments) == 40
        assert mod.stride == 1
        assert mod.coverage == 1.0

    def test_stride_escalates_under_pressure(self):
        mod = AdaptiveDXTModule(buffer_limit=40,
                                watermarks=(0.5, 0.75, 0.9))
        for i in range(400):
            mod.record(self.seg(i))
        assert mod.stride > 1
        assert len(mod.segments) <= 40
        # Unlike plain DXT, late ops are still sampled:
        assert max(s.offset for s in mod.segments) > 300

    def test_estimated_total_is_exact(self):
        mod = AdaptiveDXTModule(buffer_limit=30)
        for i in range(250):
            mod.record(self.seg(i))
        assert mod.estimated_total_ops == 250
        assert 0 < mod.coverage < 1

    def test_epochs_cover_all_ops(self):
        mod = AdaptiveDXTModule(buffer_limit=30)
        for i in range(250):
            mod.record(self.seg(i))
        epochs = mod.epochs
        assert sum(e.n_ops for e in epochs) == 250
        strides = [e.stride for e in epochs]
        assert strides == sorted(strides)

    def test_bad_watermarks_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveDXTModule(watermarks=(0.0,))

    def test_adaptive_in_instrumented_run(self):
        env, cluster, run = make_instrumented(adaptive_dxt=True,
                                              dxt_buffer_limit=4)
        drive_instrumented(env, run, small_workload_graph(cluster),
                           optimize=False)
        modules = [r._dxt for r in run.darshan_runtimes]
        assert all(isinstance(m, AdaptiveDXTModule) for m in modules)
        # Compared to the hard-truncating default at the same budget,
        # adaptive capture keeps coverage bounded away from zero.
        total_ops = sum(m.estimated_total_ops for m in modules)
        assert total_ops == 8
