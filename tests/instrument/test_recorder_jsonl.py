"""Regression: the fast log serializer emits the exact bytes of old one.

``persist`` used to render each log entry with ``json.dumps(asdict(...))``;
``asdict`` recursively deep-copies every row, which was measurable across
thousands of entries.  The shallow replacement must not change a single
byte of ``logs.jsonl``, or historical run directories and new ones would
diverge under diffing.
"""

import json
from dataclasses import asdict

from repro.dasklike.records import LogEntry, SpillRecord, WarningRecord
from repro.instrument.recorder import _log_entry_line

ENTRIES = [
    LogEntry(source="scheduler", time=0.0, level="INFO",
             message="Clear task state"),
    LogEntry(source="10.0.0.7:34567", time=12.25, level="WARNING",
             message="unresponsive event loop — 3.02s"),
    LogEntry(source="client", time=1e-9, level="ERROR",
             message='quotes " and \\ backslashes\nand newlines'),
    LogEntry(source="worker", time=float(10**20), level="INFO", message=""),
]


def test_lines_byte_identical_to_asdict_form():
    for entry in ENTRIES:
        assert _log_entry_line(entry) == json.dumps(asdict(entry))


def test_other_flat_record_types_supported():
    records = [
        WarningRecord(source="s", hostname="n1", kind="gc_collect",
                      time=3.5, duration=0.25, message="gc"),
        SpillRecord(worker="w", hostname="n2", key="('x', 0)",
                    nbytes=1024, time=9.0, direction="spill"),
    ]
    for record in records:
        assert _log_entry_line(record) == json.dumps(asdict(record))


def test_field_cache_reused_across_calls():
    from repro.instrument import recorder

    _log_entry_line(ENTRIES[0])
    assert LogEntry in recorder._FLAT_FIELDS_CACHE
    names = recorder._FLAT_FIELDS_CACHE[LogEntry]
    _log_entry_line(ENTRIES[1])
    assert recorder._FLAT_FIELDS_CACHE[LogEntry] is names
    assert names == ("source", "time", "level", "message")


def test_jsonl_round_trips(tmp_path):
    path = tmp_path / "logs.jsonl"
    with open(path, "w") as fh:
        for entry in ENTRIES:
            fh.write(_log_entry_line(entry) + "\n")
    with open(path) as fh:
        parsed = [json.loads(line) for line in fh]
    assert parsed == [asdict(entry) for entry in ENTRIES]
