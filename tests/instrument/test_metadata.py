"""Unit tests for provenance-metadata capture and persistence."""

import json

import pytest

from repro.instrument import (
    capture_provenance,
    read_provenance,
    write_provenance,
)

from tests.helpers import drive_instrumented, make_instrumented
from tests.instrument.test_instrument import small_workload_graph


@pytest.fixture(scope="module")
def captured():
    env, cluster, run = make_instrumented(seed=61)
    client, _ = drive_instrumented(env, run, small_workload_graph(cluster),
                                   optimize=False)
    document = capture_provenance(
        cluster, run.job, run.dask, client=client,
        mofka_service=run.mofka,
        workflow={"name": "unit-test-wf", "scale": 0.5},
        run_index=4, seed=61,
    )
    return document


class TestCapture:
    def test_top_level_fields(self, captured):
        assert captured["run_index"] == 4
        assert captured["seed"] == 61
        assert set(captured["layers"]) == {
            "hardware_infrastructure", "system_software_and_job",
            "application"}

    def test_hardware_layer(self, captured):
        hw = captured["layers"]["hardware_infrastructure"]
        assert hw["machine"]["machine"] == "polaris-sim"
        assert len(hw["allocated_nodes"]) == 3
        assert hw["network"]["nic_bandwidth"] > 0

    def test_system_layer(self, captured):
        sw = captured["layers"]["system_software_and_job"]
        assert sw["os"]["system"] == "Linux"
        assert "dask" in sw["packages"]
        assert sw["job"]["spec"]["threads_per_worker"] == 4

    def test_application_layer(self, captured):
        app = captured["layers"]["application"]
        assert app["client"]["n_task_graphs"] == 1
        assert app["workflow"]["name"] == "unit-test-wf"
        assert app["profilers"]["mofka"]["stats"]["events"] > 0
        config = app["wms"]["config"]
        assert "distributed.scheduler.work-stealing" in config

    def test_json_serialisable(self, captured):
        json.dumps(captured)

    def test_write_read_roundtrip(self, captured, tmp_path):
        path = write_provenance(captured,
                                str(tmp_path / "sub" / "prov.json"))
        back = read_provenance(path)
        assert back == json.loads(json.dumps(captured))


class TestOptionalParts:
    def test_capture_without_client_or_mofka(self):
        env, cluster, run = make_instrumented(seed=62)
        document = capture_provenance(cluster, run.job, run.dask)
        app = document["layers"]["application"]
        assert app["client"]["name"] is None
        assert app["profilers"]["mofka"] is None
        json.dumps(document)
