"""The catalog benchmark's smoke mode runs green inside the suite.

``bench_catalog.py --smoke`` registers a small synthetic population
and asserts the data lake's contract end to end: the catalog answer
is numerically identical to the naive per-run report, the cold query
beats the naive loop, the warm query beats the cold one, the session
cache stays within capacity, and 8 concurrent daemon clients get
byte-identical payloads.  Running it here keeps the benchmark (and
those guarantees) from rotting.
"""

import importlib.util
import pathlib

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[1]
              / "benchmarks" / "bench_catalog.py")


def test_catalog_bench_smoke(capsys):
    spec = importlib.util.spec_from_file_location(
        "bench_catalog_smoke", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "parity: catalog variability matches naive report" in out
    assert "speedup vs naive" in out
    assert "speedup vs cold" in out
    assert "byte-identical to in-process" in out
    assert "peak sessions" in out
