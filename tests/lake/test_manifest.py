"""Shard manifests: round-trip fidelity and the append-only contract."""

import pytest

from repro.lake import RunEntry, ShardManifest
from repro.lake.manifest import MANIFEST_VERSION, read_json


def entry(run_id="r1", workflow="wf", date="d1", seq=0, **extra):
    return RunEntry(run_id=run_id, workflow=workflow, date=date,
                    seq=seq, **extra)


class TestRoundTrip:
    def test_save_load_preserves_every_column(self, tmp_path):
        manifest = ShardManifest(workflow="wf", date="d1")
        original = entry(
            run_id="wf-d1-s3-r0007-abcd1234", seq=42, run_index=7,
            seed=3, config_hash="cafe01", wall_time=12.5,
            fault_signature="worker_crash", n_events=1234, n_tasks=99,
            source="/results/run0007")
        manifest.append(original)
        path = manifest.save(str(tmp_path / "manifest.json"))

        reloaded = ShardManifest.load(path)
        assert reloaded.workflow == "wf" and reloaded.date == "d1"
        assert len(reloaded) == 1
        assert reloaded.get(original.run_id) == original

    def test_document_is_versioned(self, tmp_path):
        path = ShardManifest(workflow="wf", date="d1").save(
            str(tmp_path / "manifest.json"))
        assert read_json(path)["version"] == MANIFEST_VERSION

    def test_future_version_is_rejected_not_misparsed(self, tmp_path):
        manifest = ShardManifest(workflow="wf", date="d1")
        document = manifest.to_document()
        document["version"] = MANIFEST_VERSION + 1
        with pytest.raises(ValueError, match="version"):
            ShardManifest.from_document(document)

    def test_entries_keep_append_order(self, tmp_path):
        manifest = ShardManifest(workflow="wf", date="d1")
        for seq in (5, 2, 9):  # append order, not seq order
            manifest.append(entry(run_id=f"r{seq}", seq=seq))
        path = manifest.save(str(tmp_path / "manifest.json"))
        reloaded = ShardManifest.load(path)
        assert [e.seq for e in reloaded.entries] == [5, 2, 9]


class TestAppendOnly:
    def test_duplicate_run_id_is_rejected(self):
        manifest = ShardManifest(workflow="wf", date="d1")
        manifest.append(entry())
        with pytest.raises(ValueError, match="append-only"):
            manifest.append(entry(seq=1))

    def test_wrong_shard_key_is_rejected(self):
        manifest = ShardManifest(workflow="wf", date="d1")
        with pytest.raises(ValueError, match="belongs to shard"):
            manifest.append(entry(workflow="other"))
        with pytest.raises(ValueError, match="belongs to shard"):
            manifest.append(entry(date="d2"))

    def test_membership_and_lookup(self):
        manifest = ShardManifest(workflow="wf", date="d1")
        added = manifest.append(entry())
        assert added.run_id in manifest
        assert "ghost" not in manifest
        assert manifest.get("ghost") is None
