"""The serve daemon: ephemeral port, concurrency, byte-identity.

The contract under test: a payload fetched over HTTP from the daemon
is byte-for-byte the payload ``Catalog.query_json`` returns in
process, for every route, including under concurrent clients.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.lake import (
    Catalog,
    LakeQueryError,
    http_query,
    serve,
    synthetic_runs,
)


@pytest.fixture(scope="module")
def lake(tmp_path_factory):
    catalog = Catalog.open(str(tmp_path_factory.mktemp("lake")),
                           max_sessions=4)
    for data in synthetic_runs(4, workflow="alpha", n_tasks=15):
        catalog.register(data, date="d1")
    for data in synthetic_runs(2, workflow="beta", n_tasks=15,
                               config={"profile": "slow"}):
        catalog.register(data, date="d2")
    return catalog


@pytest.fixture(scope="module")
def daemon(lake):
    server = serve(lake)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def test_binds_an_ephemeral_port(daemon):
    assert daemon.address.startswith("http://127.0.0.1:")
    port = int(daemon.address.rsplit(":", 1)[1])
    assert port > 0


@pytest.mark.parametrize("target", [
    "/runs",
    "/runs?workflow=alpha",
    "/runs?workflow=beta&date=d2",
    "/reports/variability?workflow=alpha",
    "/stats",
])
def test_http_payload_matches_in_process_bytes(lake, daemon, target):
    expected = lake.query_json(target)
    got = http_query(daemon.address, target)
    if "stats" in target:
        # /stats carries live cache counters; compare the stable part.
        a, b = (json.loads(p.decode("utf-8")) for p in (expected, got))
        assert a["n_runs"] == b["n_runs"]
        assert a["n_shards"] == b["n_shards"]
    else:
        assert got == expected


def test_view_route_round_trips_over_http(lake, daemon):
    run_id = lake.query(workflow="alpha")[0].run_id
    target = f"/runs/{run_id}/views/task"
    assert http_query(daemon.address, target) == \
        lake.query_json(target)


def test_error_statuses_propagate(daemon):
    with pytest.raises(LakeQueryError) as err:
        http_query(daemon.address, "/runs/ghost")
    assert err.value.status == 404
    with pytest.raises(LakeQueryError) as err:
        http_query(daemon.address, "/runs?bogus=1")
    assert err.value.status == 400
    assert "bogus" in err.value.message


def test_eight_concurrent_clients_get_identical_bytes(lake, daemon):
    """The ISSUE acceptance bar: >=8 concurrent clients, all answers
    byte-identical to the in-process path, cache stays bounded."""
    targets = ["/runs?workflow=alpha",
               "/reports/variability?workflow=alpha",
               "/runs?workflow=beta&date=d2"]
    run_ids = [e.run_id for e in lake.query(workflow="alpha")]
    targets += [f"/runs/{rid}/views/task" for rid in run_ids[:3]]
    expected = {t: lake.query_json(t) for t in targets}

    def client(step):
        target = targets[step % len(targets)]
        return target, http_query(daemon.address, target)

    with ThreadPoolExecutor(max_workers=8) as pool:
        for target, payload in pool.map(client, range(32)):
            assert payload == expected[target], target

    stats = lake.sessions.stats()
    assert stats["sessions"] <= stats["max_sessions"]


def test_concurrent_cold_views_stay_within_session_cap(tmp_path):
    """Distinct cold runs loaded through the daemon under concurrency
    never push the cache past max_sessions."""
    catalog = Catalog.open(str(tmp_path / "lake"), max_sessions=2)
    entries = [catalog.register(data) for data in
               synthetic_runs(6, workflow="alpha", n_tasks=10)]
    server = serve(catalog)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        catalog.sessions.clear()
        targets = [f"/runs/{e.run_id}/views/task" for e in entries]
        with ThreadPoolExecutor(max_workers=8) as pool:
            payloads = list(pool.map(
                lambda t: http_query(server.address, t), targets))
        for target, payload in zip(targets, payloads):
            assert payload == catalog.query_json(target)
        assert catalog.sessions.stats()["sessions"] <= 2
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
