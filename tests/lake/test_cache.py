"""SessionCache: LRU eviction, both capacity caps, thread safety."""

import threading

import pytest

from repro.lake import SessionCache, session_cost, synthetic_run
from repro.core import AnalysisSession


def fake_session(n_events=10, n_logs=0):
    """A stand-in with just the attributes session_cost reads."""
    class Run:
        events = [{}] * n_events
        logs = [{}] * n_logs
        metrics = []

    class Session:
        run = Run()

    return Session()


class TestBasics:
    def test_loader_runs_once_then_hits(self):
        cache = SessionCache(max_sessions=4)
        calls = []

        def loader():
            calls.append(1)
            return fake_session()

        first = cache.get("r1", loader)
        second = cache.get("r1", loader)
        assert first is second
        assert len(calls) == 1
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_session_cost_counts_records(self):
        session = AnalysisSession.of(synthetic_run(n_tasks=5))
        run = session.run
        assert session_cost(session) == \
            1 + len(run.events) + len(run.logs) + len(run.metrics)

    def test_invalid_caps_rejected(self):
        with pytest.raises(ValueError):
            SessionCache(max_sessions=0)
        with pytest.raises(ValueError):
            SessionCache(max_events=0)

    def test_failed_load_propagates_and_allows_retry(self):
        cache = SessionCache(max_sessions=2)
        with pytest.raises(RuntimeError, match="boom"):
            cache.get("r1", lambda: (_ for _ in ()).throw(
                RuntimeError("boom")))
        session = cache.get("r1", fake_session)
        assert cache.peek("r1") is session


class TestEviction:
    def test_count_cap_evicts_least_recently_used(self):
        cache = SessionCache(max_sessions=2)
        s1 = cache.get("r1", fake_session)
        cache.get("r2", fake_session)
        cache.get("r1", lambda: pytest.fail("r1 must be cached"))
        cache.get("r3", fake_session)  # evicts r2, the LRU entry
        assert cache.peek("r2") is None
        assert cache.peek("r1") is s1
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1

    def test_size_cap_bounds_total_cost(self):
        cache = SessionCache(max_sessions=100, max_events=50)
        for index in range(10):
            cache.get(f"r{index}", lambda: fake_session(n_events=20))
        stats = cache.stats()
        assert stats["events_cost"] <= 50
        assert stats["sessions"] <= 2

    def test_single_oversized_entry_is_still_served(self):
        cache = SessionCache(max_sessions=4, max_events=10)
        big = cache.get("big", lambda: fake_session(n_events=100))
        assert cache.peek("big") is big
        assert len(cache) == 1

    def test_peek_does_not_refresh_lru_order(self):
        cache = SessionCache(max_sessions=2)
        cache.get("r1", fake_session)
        cache.get("r2", fake_session)
        cache.peek("r1")               # must NOT promote r1
        cache.get("r3", fake_session)  # so r1 is the victim
        assert cache.peek("r1") is None
        assert cache.peek("r2") is not None

    def test_clear_resets_occupancy(self):
        cache = SessionCache(max_sessions=4)
        cache.get("r1", fake_session)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["events_cost"] == 0


class TestThreadSafety:
    def test_concurrent_misses_are_single_flight(self):
        cache = SessionCache(max_sessions=8)
        calls = []
        gate = threading.Barrier(8)
        results = []

        def loader():
            calls.append(1)
            return fake_session()

        def worker():
            gate.wait()
            results.append(cache.get("same", loader))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(calls) == 1
        assert all(r is results[0] for r in results)

    def test_hammer_many_threads_many_keys_stays_bounded(self):
        cache = SessionCache(max_sessions=5, max_events=200)
        errors = []

        def worker(offset):
            try:
                for step in range(50):
                    key = f"r{(offset * 7 + step) % 20}"
                    session = cache.get(
                        key, lambda: fake_session(n_events=9))
                    assert session is not None
                    stats = cache.stats()
                    assert stats["sessions"] <= cache.max_sessions
                    assert stats["events_cost"] <= \
                        cache.max_events + 10  # one in-flight insert
            except Exception as exc:  # pragma: no cover - fail path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(n,))
                   for n in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        stats = cache.stats()
        assert stats["sessions"] <= 5
        assert stats["hits"] + stats["misses"] == 8 * 50
