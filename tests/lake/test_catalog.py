"""Catalog semantics: incremental ingest, pruning, URIs, documents.

Synthetic in-memory runs cover the sharding/pruning/idempotency logic
cheaply; one real persisted workflow tree (module-scoped, small scale)
proves the directory-ingest path end to end.
"""

import json
import os

import pytest

import repro
from repro.core import AnalysisSession, variability_report
from repro.lake import (
    Catalog,
    LakeQueryError,
    config_hash_of,
    parse_lake_uri,
    synthetic_run,
    synthetic_runs,
)


@pytest.fixture()
def catalog(tmp_path):
    return Catalog.open(str(tmp_path / "lake"))


def fill(catalog, n_alpha=3, n_beta=2):
    """alpha runs on date d1, beta runs on d2 (two shards)."""
    entries = []
    for data in synthetic_runs(n_alpha, workflow="alpha", n_tasks=20):
        entries.append(catalog.register(data, date="d1"))
    for data in synthetic_runs(n_beta, workflow="beta", n_tasks=20,
                               config={"profile": "slow"}):
        entries.append(catalog.register(data, date="d2"))
    return entries


class TestRegistration:
    def test_in_memory_registration_is_idempotent(self, catalog):
        data = synthetic_run(workflow="alpha", n_tasks=10)
        first = catalog.register(data)
        again = catalog.register(synthetic_run(workflow="alpha",
                                               n_tasks=10))
        assert again.run_id == first.run_id
        assert len(catalog.query()) == 1

    def test_distinct_configs_get_distinct_ids(self, catalog):
        a = catalog.register(synthetic_run(config={"profile": "fast"}))
        b = catalog.register(synthetic_run(config={"profile": "slow"}))
        assert a.run_id != b.run_id
        assert a.config_hash != b.config_hash

    def test_entry_columns_come_from_the_run(self, catalog):
        data = synthetic_run(workflow="Alpha", n_tasks=12, seed=5,
                             run_index=3,
                             fault_kinds=("worker_crash", "net_slow"))
        entry = catalog.register(data, date="d9")
        assert entry.workflow == "alpha"  # normalized
        assert entry.date == "d9"
        assert entry.seed == 5 and entry.run_index == 3
        assert entry.fault_signature == "net_slow+worker_crash"
        assert entry.n_tasks == 12
        assert entry.n_events == len(data.events)
        assert entry.config_hash == config_hash_of(
            {"profile": "fast"})

    def test_unsupported_source_type_raises(self, catalog):
        with pytest.raises(TypeError, match="cannot register"):
            catalog.register(42)


class TestIncrementalIngest:
    @pytest.fixture(scope="class")
    def runs_tree(self, tmp_path_factory):
        from repro.workflows import ImageProcessingWorkflow, run_many
        out = str(tmp_path_factory.mktemp("runs"))
        run_many(lambda: ImageProcessingWorkflow(scale=0.02),
                 n_runs=2, seed=3, persist_dir=out)
        return out

    def test_ingest_registers_each_run_dir_once(self, tmp_path,
                                                runs_tree):
        catalog = Catalog.open(str(tmp_path / "lake"))
        first = catalog.ingest(runs_tree)
        assert len(first) == 2
        assert all(e.workflow == "imageprocessing" for e in first)
        assert all(e.source and os.path.isdir(e.source)
                   for e in first)

        again = catalog.ingest(runs_tree)
        assert again == []
        assert len(catalog.query()) == 2

    def test_reingest_skips_known_dirs_even_cold(self, tmp_path,
                                                 runs_tree):
        root = str(tmp_path / "lake")
        Catalog.open(root).ingest(runs_tree)
        # A brand-new Catalog object: the source map must survive the
        # round-trip through indexes.json.
        cold = Catalog.open(root)
        assert cold.ingest(runs_tree) == []

    def test_ingest_only_new_runs_after_tree_grows(self, tmp_path,
                                                   runs_tree):
        from repro.workflows import ImageProcessingWorkflow, run_many
        grown = str(tmp_path / "grown")
        os.makedirs(grown)
        for name in sorted(os.listdir(runs_tree)):
            os.symlink(os.path.join(runs_tree, name),
                       os.path.join(grown, name))
        catalog = Catalog.open(str(tmp_path / "lake"))
        assert len(catalog.ingest(grown)) == 2
        run_many(lambda: ImageProcessingWorkflow(scale=0.02),
                 n_runs=1, seed=11, persist_dir=os.path.join(
                     grown, "extra"))
        fresh = catalog.ingest(grown)
        assert len(fresh) == 1  # only the new run was parsed

    def test_ingested_run_loads_by_lake_uri(self, tmp_path, runs_tree):
        catalog = Catalog.open(str(tmp_path / "lake"))
        entry = catalog.ingest(runs_tree)[0]
        session = repro.open_run(catalog.uri(entry.run_id))
        direct = AnalysisSession.of(entry.source)
        assert len(session.task_view()) == len(direct.task_view())

    def test_catalog_variability_matches_live_report(self, tmp_path,
                                                     runs_tree):
        catalog = Catalog.open(str(tmp_path / "lake"))
        entries = catalog.ingest(runs_tree)
        doc = catalog.variability_document(workflow="imageprocessing")
        live = variability_report([e.source for e in entries])
        for phase in ("io", "communication", "computation", "total"):
            assert doc["phases"][phase]["mean"] == pytest.approx(
                live["phases"][phase].mean)
            assert doc["phases"][phase]["cv"] == pytest.approx(
                live["phases"][phase].cv)


class TestPruning:
    def test_pruned_and_full_scan_agree(self, catalog):
        fill(catalog)
        for predicates in ({}, {"workflow": "alpha"}, {"date": "d2"},
                           {"workflow": "beta", "date": "d2"},
                           {"fault": "none"}, {"min_wall": 0.0}):
            pruned = catalog.query(**predicates)
            full = catalog.query(prune=False, **predicates)
            assert [e.run_id for e in pruned] == \
                [e.run_id for e in full], predicates

    def test_workflow_predicate_opens_only_matching_manifests(
            self, catalog):
        fill(catalog)
        catalog.flush()
        cold = Catalog(catalog.root)
        hits = cold.query(workflow="beta")
        assert len(hits) == 2
        assert cold.manifests_opened == 1  # alpha shard never touched

    def test_config_hash_prunes_via_secondary_index(self, catalog):
        fill(catalog)
        catalog.flush()
        slow_hash = config_hash_of({"profile": "slow"})
        cold = Catalog(catalog.root)
        hits = cold.query(config_hash=slow_hash)
        assert {e.workflow for e in hits} == {"beta"}
        assert cold.manifests_opened == 1

    def test_full_scan_opens_everything(self, catalog):
        fill(catalog)
        catalog.flush()
        cold = Catalog(catalog.root)
        cold.query(workflow="beta", prune=False)
        assert cold.manifests_opened == 2

    def test_wall_bucket_prune_keeps_exactness(self, catalog):
        fill(catalog)
        walls = sorted(e.wall_time for e in catalog.query())
        cut = walls[len(walls) // 2]
        hits = catalog.query(min_wall=cut)
        assert all(e.wall_time >= cut for e in hits)
        assert len(hits) == sum(1 for w in walls if w >= cut)


class TestDurability:
    def test_cold_reopen_answers_identically(self, catalog):
        fill(catalog)
        warm = catalog.query_json("/runs?workflow=alpha")
        cold = Catalog(catalog.root).query_json("/runs?workflow=alpha")
        assert warm == cold

    def test_in_memory_run_survives_eviction(self, tmp_path):
        catalog = Catalog.open(str(tmp_path / "lake"), max_sessions=1)
        entries = [catalog.register(data) for data in
                   synthetic_runs(3, workflow="alpha", n_tasks=15)]
        # max_sessions=1 means the first two runs were evicted; their
        # views must still be answerable from the durable payload.
        doc = catalog.view_document(entries[0].run_id, "task")
        assert doc["n_rows"] == 15

    def test_rebuild_indexes_recovers_lost_index_file(self, catalog):
        fill(catalog)
        expected = [e.run_id for e in catalog.query()]
        os.remove(os.path.join(catalog.root, "indexes.json"))
        recovered = Catalog(catalog.root)
        assert recovered.query() == []  # indexes gone
        recovered.rebuild_indexes()
        assert [e.run_id for e in recovered.query()] == expected


class TestQuerySurface:
    def test_run_document_carries_block_and_uri(self, catalog):
        entry = fill(catalog)[0]
        doc = catalog.run_document(entry.run_id)
        assert doc["uri"] == catalog.uri(entry.run_id)
        assert doc["block"]["counts"]["tasks"] == entry.n_tasks
        assert "task" in doc["views"]

    def test_view_document_matches_session_table(self, catalog):
        entry = fill(catalog)[0]
        doc = catalog.view_document(entry.run_id, "task")
        table = catalog.session(entry.run_id).task_view()
        assert doc["n_rows"] == len(table)
        assert doc["columns"] == list(table.column_names)
        json.dumps(doc)  # numpy scalars were coerced

    def test_unknown_run_view_and_route_map_to_404(self, catalog):
        fill(catalog)
        for target in ("/runs/ghost", "/runs/ghost/views/task",
                       "/nonsense"):
            with pytest.raises(LakeQueryError) as err:
                catalog.query_json(target)
            assert err.value.status == 404
        entry = catalog.query()[0]
        with pytest.raises(LakeQueryError, match="unknown view"):
            catalog.view_document(entry.run_id, "bogus")

    def test_bad_parameters_map_to_400(self, catalog):
        fill(catalog)
        with pytest.raises(LakeQueryError) as err:
            catalog.query_json("/runs?bogus=1")
        assert err.value.status == 400
        with pytest.raises(LakeQueryError) as err:
            catalog.query_json("/runs?min_wall=abc")
        assert err.value.status == 400

    def test_query_json_is_canonical(self, catalog):
        fill(catalog)
        payload = catalog.query_json("/runs?workflow=alpha")
        document = json.loads(payload.decode("utf-8"))
        recanonical = (json.dumps(document, sort_keys=True,
                                  separators=(",", ":")) + "\n"
                       ).encode("utf-8")
        assert payload == recanonical

    def test_variability_document_sorts_prefixes_by_cv(self, catalog):
        fill(catalog)
        doc = catalog.variability_document(workflow="alpha")
        cvs = [row["cv"] for row in doc["by_prefix"]]
        assert cvs == sorted(cvs, reverse=True)
        assert doc["n_runs"] == 3


class TestUris:
    def test_parse_lake_uri(self):
        assert parse_lake_uri("lake:///tmp/lake/run-1") == \
            ("/tmp/lake", "run-1")

    @pytest.mark.parametrize("bad", [
        "lake://", "lake://nosep", "http://x/y", "./plain/path"])
    def test_malformed_uris_raise(self, bad):
        with pytest.raises(ValueError):
            parse_lake_uri(bad)

    def test_open_catalog_front_door(self, tmp_path):
        catalog = repro.open_catalog(str(tmp_path / "lake"),
                                     max_sessions=2)
        assert isinstance(catalog, Catalog)
        assert catalog.sessions.max_sessions == 2
