"""Tests for the ``perfrecup`` command-line interface."""

import os

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "xgboost"])
        assert args.workflow == "xgboost"
        assert args.runs == 1
        assert args.scale == 0.1

    def test_unknown_workflow_exits(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "not-a-workflow", "--scale", "0.05"])


class TestListWorkflows:
    def test_lists_all(self, capsys):
        assert main(["list-workflows"]) == 0
        out = capsys.readouterr().out
        for name in ("imageprocessing", "resnet152", "xgboost"):
            assert name in out


@pytest.fixture(scope="module")
def persisted_run(tmp_path_factory):
    """One persisted small run, shared by the analyze/provenance tests."""
    out = str(tmp_path_factory.mktemp("cli-results"))
    from repro.workflows import ImageProcessingWorkflow, run_workflow
    result = run_workflow(ImageProcessingWorkflow(scale=0.05), seed=2,
                          persist_dir=out)
    return result.run_dir


class TestRun:
    def test_run_prints_summary(self, capsys, tmp_path):
        code = main(["run", "imageprocessing", "--runs", "2",
                     "--scale", "0.04", "--seed", "5",
                     "--out", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "wall_s" in out
        assert out.count("run0") >= 1
        assert os.path.isdir(os.path.join(
            str(tmp_path), "imageprocessing", "run0001"))


class TestAnalyze:
    def test_analyze_persisted_run(self, capsys, persisted_run):
        assert main(["analyze", persisted_run]) == 0
        out = capsys.readouterr().out
        assert "Phase breakdown" in out
        assert "Longest task categories" in out
        assert "Darshan summary" in out


class TestProvenance:
    def test_provenance_default_key(self, capsys, persisted_run):
        assert main(["provenance", persisted_run]) == 0
        out = capsys.readouterr().out
        assert "states" in out
        assert "longest task" in out

    def test_provenance_explicit_key(self, capsys, persisted_run):
        from repro.core import AnalysisSession, RunData
        data = RunData.from_directory(persisted_run)
        key = AnalysisSession.of(data).task_view()["key"][0]
        assert main(["provenance", persisted_run, "--key", key]) == 0
        out = capsys.readouterr().out
        assert "execution" in out


class TestCompare:
    def test_compare_needs_two_runs(self, persisted_run):
        import os
        parent = os.path.dirname(persisted_run)
        with pytest.raises(SystemExit):
            main(["compare", parent + "-nonexistent"])

    def test_compare_report(self, capsys, tmp_path):
        from repro.workflows import ImageProcessingWorkflow, run_many
        run_many(lambda: ImageProcessingWorkflow(scale=0.04), n_runs=2,
                 seed=6, persist_dir=str(tmp_path))
        runs_dir = str(tmp_path / "imageprocessing")
        assert main(["compare", runs_dir]) == 0
        out = capsys.readouterr().out
        assert "Phase variability over 2 runs" in out
        assert "Pairwise scheduling comparison" in out


class TestZoom:
    def test_zoom_window_stats(self, capsys, persisted_run):
        assert main(["zoom", persisted_run, "--start", "0",
                     "--end", "1.0"]) == 0
        out = capsys.readouterr().out
        assert "Window [0.0s, 1.0s)" in out
        assert "n_tasks_active" in out
        assert "active categories" in out

    def test_zoom_defaults_to_full_run(self, capsys, persisted_run):
        assert main(["zoom", persisted_run]) == 0
        out = capsys.readouterr().out
        assert "io_ops" in out


class TestReportCLI:
    def test_report_written(self, capsys, persisted_run, tmp_path):
        out_path = str(tmp_path / "rep.html")
        assert main(["report", persisted_run, "--out", out_path]) == 0
        content = open(out_path).read()
        assert "HEATMAP" in content
        assert "Critical path" in content


class TestFigures:
    def test_figures_rendered(self, capsys, persisted_run, tmp_path):
        out_dir = str(tmp_path / "figs")
        assert main(["figures", persisted_run, "--out", out_dir]) == 0
        files = os.listdir(out_dir)
        assert {"per_thread_io.svg", "comm_scatter.svg",
                "parallel_coordinates.svg",
                "warning_distribution.svg"} <= set(files)
        content = open(os.path.join(out_dir, "per_thread_io.svg")).read()
        assert content.startswith("<svg")


class TestLint:
    def test_lint_defaults(self):
        args = build_parser().parse_args(["lint"])
        assert args.paths == []
        assert args.format == "text"
        assert args.rules is None

    def test_lint_real_tree_clean(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_lint_json_format(self, capsys):
        import json
        assert main(["lint", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["exit_code"] == 0
        assert "det-wallclock" in document["rules_run"]

    def test_lint_dirty_fixture_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n")
        assert main(["lint", str(bad)]) == 1

    def test_lint_rule_selection(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n")
        # Provenance-only run does not see the determinism violation.
        assert main(["lint", "--rules", "provenance", str(bad)]) == 0

    def test_lint_unknown_rule_is_usage_error(self, capsys):
        assert main(["lint", "--rules", "bogus"]) == 2

    def test_lint_write_and_use_baseline(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\nstamp = time.time()\n")
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", "--write-baseline", baseline,
                     str(bad)]) == 0
        assert main(["lint", "--baseline", baseline, str(bad)]) == 0


class TestSanitize:
    def test_sanitize_defaults(self):
        args = build_parser().parse_args(["sanitize", "imageprocessing"])
        assert args.workflow == "imageprocessing"
        assert args.scale == 0.05

    def test_sanitize_small_workflow_clean(self, capsys):
        assert main(["sanitize", "imageprocessing",
                     "--scale", "0.04", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out
        assert "events_processed=" in out

    def test_sanitize_unknown_workflow_exits(self):
        with pytest.raises(SystemExit):
            main(["sanitize", "not-a-workflow"])


class TestExperiments:
    def test_registry_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for eid in ("T1", "F3", "F8", "A2", "E1"):
            assert eid in out

    def test_single_experiment_claims(self, capsys):
        assert main(["experiments", "--id", "f6"]) == 0
        out = capsys.readouterr().out
        assert "read_parquet-fused-assign" in out

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            main(["experiments", "--id", "Z9"])
