"""Smoke tests: every shipped example runs end to end."""

import os
import runpy
import sys

import pytest

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name, argv=()):
    path = os.path.abspath(os.path.join(EXAMPLES, name))
    old_argv = sys.argv
    sys.argv = [path, *argv]
    try:
        runpy.run_path(path, run_name="__main__")
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "Phase breakdown" in out
    assert "states" in out  # the provenance tree


def test_variability_study(capsys):
    run_example("variability_study.py", ["2", "0.05"])
    out = capsys.readouterr().out
    assert "Normalized phase durations" in out
    assert "placement" in out


def test_provenance_drilldown(capsys):
    run_example("provenance_drilldown.py")
    out = capsys.readouterr().out
    assert "slowest task categories" in out
    assert "identifier coverage" in out


def test_postprocess_run_directory(capsys, tmp_path):
    run_example("postprocess_run_directory.py", [str(tmp_path)])
    out = capsys.readouterr().out
    assert "Reloaded runs" in out
    assert "placement agreement" in out
    assert "task_run" in out


def test_failure_recovery(capsys):
    run_example("failure_recovery.py")
    out = capsys.readouterr().out
    assert "killing worker" in out
    assert "completed anyway" in out
    assert "recovery transitions" in out


def test_online_monitoring(capsys):
    run_example("online_monitoring.py")
    out = capsys.readouterr().out
    assert "live monitoring" in out
    assert "tasks=" in out
    assert "mean durations" in out
