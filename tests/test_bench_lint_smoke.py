"""The lint benchmark's smoke mode runs green and under budget.

``bench_lint.py --smoke`` is the wall-time guard on the static
analysis itself: the whole-program passes (call graph + dataflow) run
inside the tier-1 lint gate, so a superlinear slowdown there would tax
every CI round.  Running the smoke tier here keeps the benchmark — and
the budget assertion inside it — from rotting.
"""

import importlib.util
import pathlib

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[1]
              / "benchmarks" / "bench_lint.py")


def _load():
    spec = importlib.util.spec_from_file_location(
        "bench_lint_smoke", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_lint_bench_smoke(capsys):
    module = _load()
    assert module.main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "lint benchmark (smoke)" in out
    assert "within budget" in out


def test_lint_bench_budget_enforced(capsys):
    # An absurd budget must actually fail: the guard is not decorative.
    module = _load()
    assert module.main(["--smoke", "--budget", "0.000001"]) == 1
    assert "over the" in capsys.readouterr().err
