"""Tests for the Lustre-like parallel file system model."""

import pytest

from repro.platform import ParallelFileSystem, PFSSpec
from repro.sim import Environment, RandomStreams


def make_pfs(env, **kw):
    defaults = dict(jitter_sigma=0.0)
    defaults.update(kw)
    return ParallelFileSystem(env, PFSSpec(**defaults), RandomStreams(1))


def run_io(env, pfs, *ops):
    """Run several (path, op, offset, length) operations sequentially.

    Runs until the I/O driver finishes (not until event exhaustion,
    because perpetual background processes like the interference walk
    never drain the queue).
    """
    records = []

    def proc():
        for path, op, offset, length in ops:
            rec = yield env.process(pfs.io(path, op, offset, length))
            records.append(rec)

    env.run(until=env.process(proc()))
    return records


def test_create_and_stat():
    env = Environment()
    pfs = make_pfs(env)
    meta = pfs.create_file("/lus/data/a.bin", 10 * 2**20, stripe_count=4)
    assert meta.stripe_count == 4
    assert len(meta.osts) == 4
    assert pfs.stat("/lus/data/a.bin").size == 10 * 2**20
    assert pfs.exists("/lus/data/a.bin")
    assert not pfs.exists("/nope")


def test_stat_missing_raises():
    env = Environment()
    pfs = make_pfs(env)
    with pytest.raises(FileNotFoundError):
        pfs.stat("/missing")


def test_stripe_count_clamped_to_num_osts():
    env = Environment()
    pfs = make_pfs(env, num_osts=4)
    meta = pfs.create_file("/f", 1024, stripe_count=16)
    assert meta.stripe_count == 4


def test_read_produces_record():
    env = Environment()
    pfs = make_pfs(env)
    pfs.create_file("/f", 8 * 2**20)
    (rec,) = run_io(env, pfs, ("/f", "read", 0, 4 * 2**20))
    assert rec.op == "read"
    assert rec.length == 4 * 2**20
    assert rec.stop > rec.start == 0.0


def test_read_past_eof_is_short():
    env = Environment()
    pfs = make_pfs(env)
    pfs.create_file("/f", 1000)
    (rec,) = run_io(env, pfs, ("/f", "read", 500, 10_000))
    assert rec.length == 500


def test_write_extends_file():
    env = Environment()
    pfs = make_pfs(env)
    pfs.create_file("/f", 0)
    run_io(env, pfs, ("/f", "write", 0, 4096), ("/f", "write", 4096, 4096))
    assert pfs.stat("/f").size == 8192


def test_invalid_op_rejected():
    env = Environment()
    pfs = make_pfs(env)
    pfs.create_file("/f", 10)

    def proc():
        yield env.process(pfs.io("/f", "append", 0, 1))

    env.process(proc())
    with pytest.raises(ValueError):
        env.run()


def test_striped_read_faster_than_single_stripe():
    """Striping across OSTs parallelizes a large read."""
    def duration(stripes):
        env = Environment()
        pfs = make_pfs(env, num_osts=8)
        pfs.create_file("/f", 64 * 2**20, stripe_count=stripes)
        (rec,) = run_io(env, pfs, ("/f", "read", 0, 64 * 2**20))
        return rec.duration

    assert duration(8) < duration(1)


def test_ost_contention_serializes():
    env = Environment()
    pfs = make_pfs(env, num_osts=1, ost_service_slots=1)
    pfs.create_file("/f", 64 * 2**20, stripe_count=1)
    records = []

    def proc():
        rec = yield env.process(pfs.io("/f", "read", 0, 32 * 2**20))
        records.append(rec)

    env.process(proc())
    env.process(proc())
    env.run()
    total = max(r.stop for r in records)
    # Two reads through one slot take about twice one read's time.
    solo_env = Environment()
    solo = make_pfs(solo_env, num_osts=1, ost_service_slots=1)
    solo.create_file("/f", 64 * 2**20, stripe_count=1)
    (solo_rec,) = run_io(solo_env, solo, ("/f", "read", 0, 32 * 2**20))
    assert total > 1.8 * solo_rec.duration


def test_interference_slows_io():
    def total_time(with_noise):
        env = Environment()
        pfs = ParallelFileSystem(
            env,
            PFSSpec(jitter_sigma=0.0, max_interference=6.0,
                    interference_interval=0.0005, interference_step=5.0),
            RandomStreams(5),
        )
        pfs.create_file("/f", 256 * 2**20, stripe_count=2)
        if with_noise:
            pfs.start_interference()
        recs = run_io(env, pfs, *[("/f", "read", 0, 16 * 2**20)
                                  for _ in range(40)])
        return sum(r.duration for r in recs)

    assert total_time(True) > total_time(False)


def test_zero_length_io_pays_rpc():
    env = Environment()
    pfs = make_pfs(env)
    pfs.create_file("/f", 100)
    (rec,) = run_io(env, pfs, ("/f", "read", 100, 0))
    assert rec.length == 0
    assert rec.duration > 0


def test_round_robin_ost_assignment_spreads_files():
    env = Environment()
    pfs = make_pfs(env, num_osts=8)
    osts = set()
    for i in range(8):
        osts.update(pfs.create_file(f"/f{i}", 1024, stripe_count=2).osts)
    assert len(osts) == 8
