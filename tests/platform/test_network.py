"""Tests for the interconnect model."""

import pytest

from repro.platform import Network, NetworkSpec, Node, NodeSpec
from repro.sim import Environment, RandomStreams


def make_pair(env, same_switch=True, streams=None, spec=None):
    node_spec = NodeSpec()
    a = Node(env, "nid00000", node_spec, switch=0)
    b = Node(env, "nid00001", node_spec, switch=0 if same_switch else 1)
    nodes = {a.name: a, b.name: b}
    net = Network(env, nodes, spec or NetworkSpec(jitter_sigma=0.0,
                                                  congestion_probability=0.0),
                  streams or RandomStreams(1))
    return net, a, b


def run_transfer(env, net, src, dst, nbytes):
    result = {}

    def proc():
        rec = yield env.process(net.transfer(src, dst, nbytes))
        result["rec"] = rec

    env.process(proc())
    env.run()
    return result["rec"]


def test_transfer_produces_record_with_flags():
    env = Environment()
    net, a, b = make_pair(env)
    rec = run_transfer(env, net, a, b, 10_000)
    assert rec.src == "nid00000" and rec.dst == "nid00001"
    assert rec.nbytes == 10_000
    assert not rec.same_node
    assert rec.same_switch
    assert rec.duration > 0
    assert net.records == [rec]


def test_intranode_transfer_is_faster():
    env = Environment()
    net, a, b = make_pair(env)
    inter = run_transfer(env, net, a, b, 100 * 2**20)
    env2 = Environment()
    net2, a2, _ = make_pair(env2)
    intra = run_transfer(env2, net2, a2, a2, 100 * 2**20)
    assert intra.same_node
    assert intra.duration < inter.duration


def test_inter_switch_adds_latency():
    env1 = Environment()
    net1, a1, b1 = make_pair(env1, same_switch=True)
    env2 = Environment()
    net2, a2, b2 = make_pair(env2, same_switch=False)
    assert net2.latency(a2, b2) > net1.latency(a1, b1)


def test_large_transfer_scales_with_size():
    env = Environment()
    net, a, b = make_pair(env)
    small = run_transfer(env, net, a, b, 1 * 2**20)
    env2 = Environment()
    net2, a2, b2 = make_pair(env2)
    big = run_transfer(env2, net2, a2, b2, 64 * 2**20)
    assert big.duration > small.duration


def test_nic_contention_queues_transfers():
    """More simultaneous transfers than NIC channels must serialize."""
    env = Environment()
    spec = NetworkSpec(jitter_sigma=0.0, congestion_probability=0.0)
    node_spec = NodeSpec(nic_channels=1)
    a = Node(env, "a", node_spec, switch=0)
    b = Node(env, "b", node_spec, switch=0)
    net = Network(env, {"a": a, "b": b}, spec, RandomStreams(1))
    done = []

    def proc():
        rec = yield env.process(net.transfer(a, b, 25_000_000_000))  # ~1 s
        done.append(rec)

    env.process(proc())
    env.process(proc())
    env.run()
    # Both are requested at t=0; the second one queues behind the first,
    # so its recorded duration includes the wait (as a wall-clock
    # observer like the paper's worker instrumentation would see it).
    assert done[1].stop >= 1.9 * done[0].stop
    assert done[1].duration >= 1.9 * done[0].duration


def test_jitter_varies_durations():
    env = Environment()
    node_spec = NodeSpec()
    a = Node(env, "a", node_spec, switch=0)
    b = Node(env, "b", node_spec, switch=0)
    net = Network(env, {"a": a, "b": b},
                  NetworkSpec(jitter_sigma=0.3, congestion_probability=0.0),
                  RandomStreams(7))
    durations = []

    def proc():
        for _ in range(20):
            rec = yield env.process(net.transfer(a, b, 1_000_000))
            durations.append(rec.duration)

    env.process(proc())
    env.run()
    assert len(set(durations)) > 1


def test_same_seed_reproduces_transfers():
    def run(seed):
        env = Environment()
        node_spec = NodeSpec()
        a = Node(env, "a", node_spec, switch=0)
        b = Node(env, "b", node_spec, switch=1)
        net = Network(env, {"a": a, "b": b}, NetworkSpec(),
                      RandomStreams(seed))
        out = []

        def proc():
            for _ in range(10):
                rec = yield env.process(net.transfer(a, b, 5_000_000))
                out.append(rec.duration)

        env.process(proc())
        env.run()
        return out

    assert run(3) == run(3)
    assert run(3) != run(4)
