"""Property-based tests on PFS striping and the simulation engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import ParallelFileSystem, PFSSpec
from repro.sim import Environment, RandomStreams


def make_pfs(num_osts=8, stripe_size=2**20):
    env = Environment()
    spec = PFSSpec(num_osts=num_osts, stripe_size=stripe_size,
                   jitter_sigma=0.0)
    return env, ParallelFileSystem(env, spec, RandomStreams(1))


@given(
    offset=st.integers(0, 10 * 2**20),
    length=st.integers(0, 20 * 2**20),
    stripe_count=st.integers(1, 8),
)
@settings(max_examples=80, deadline=None)
def test_stripe_extents_partition_the_range(offset, length, stripe_count):
    """The per-OST pieces of an I/O exactly tile [offset, offset+len)."""
    env, pfs = make_pfs()
    meta = pfs.create_file("/f", 64 * 2**20, stripe_count=stripe_count)
    pieces = list(pfs._stripe_extents(meta, offset, length))
    assert sum(nbytes for _, nbytes in pieces) == length
    assert all(nbytes > 0 for _, nbytes in pieces)
    assert all(0 <= ost < pfs.spec.num_osts for ost, _ in pieces)
    # No piece crosses a stripe boundary.
    pos = offset
    for ost, nbytes in pieces:
        stripe_start = pos // meta.stripe_size
        stripe_end = (pos + nbytes - 1) // meta.stripe_size
        assert stripe_start == stripe_end
        assert ost == pfs._ost_for(meta, pos)
        pos += nbytes


@given(
    offsets=st.lists(st.integers(0, 30 * 2**20), min_size=1, max_size=8),
    length=st.integers(1, 4 * 2**20),
)
@settings(max_examples=40, deadline=None)
def test_reads_never_exceed_file_size(offsets, length):
    env, pfs = make_pfs()
    size = 16 * 2**20
    pfs.create_file("/f", size)
    records = []

    def proc():
        for offset in offsets:
            rec = yield env.process(pfs.io("/f", "read", offset, length))
            records.append(rec)

    env.run(until=env.process(proc()))
    for rec, offset in zip(records, offsets):
        assert rec.length == max(0, min(length, size - offset))
        assert rec.stop >= rec.start


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_pfs_deterministic_per_seed(seed):
    def total(s):
        env = Environment()
        pfs = ParallelFileSystem(env, PFSSpec(), RandomStreams(s))
        pfs.create_file("/f", 8 * 2**20)
        out = []

        def proc():
            for k in range(5):
                rec = yield env.process(
                    pfs.io("/f", "read", k * 2**20, 2**20))
                out.append(rec.duration)

        env.run(until=env.process(proc()))
        return out

    assert total(seed) == total(seed)


@given(delays=st.lists(st.floats(0.001, 10.0), min_size=1, max_size=20))
@settings(max_examples=50, deadline=None)
def test_engine_time_is_monotone(delays):
    """Events fire in nondecreasing time order regardless of creation."""
    env = Environment()
    fired = []

    def waiter(delay):
        yield env.timeout(delay)
        fired.append(env.now)

    for delay in delays:
        env.process(waiter(delay))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == pytest.approx(max(delays))
