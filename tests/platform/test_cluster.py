"""Tests for cluster assembly and job-style allocation."""

import pytest

from repro.platform import Cluster, ClusterSpec
from repro.sim import Environment, RandomStreams


def test_cluster_builds_named_nodes():
    env = Environment()
    cluster = Cluster(env, ClusterSpec(num_nodes=16, nodes_per_switch=4),
                      RandomStreams(1))
    assert len(cluster.nodes) == 16
    assert "nid00000" in cluster.nodes
    assert cluster.nodes["nid00005"].switch == 1
    assert cluster.nodes["nid00015"].switch == 3


def test_node_speeds_perturbed_but_near_nominal():
    env = Environment()
    cluster = Cluster(env, ClusterSpec(num_nodes=32, node_speed_sigma=0.05),
                      RandomStreams(2))
    speeds = [n.speed for n in cluster.nodes.values()]
    assert len(set(speeds)) > 1
    assert all(0.7 < s < 1.4 for s in speeds)


def test_allocation_returns_distinct_free_nodes():
    env = Environment()
    cluster = Cluster(env, ClusterSpec(num_nodes=8), RandomStreams(3))
    first = cluster.allocate(4, "jobA")
    second = cluster.allocate(4, "jobB")
    names = {n.name for n in first} | {n.name for n in second}
    assert len(names) == 8


def test_allocation_exhaustion_raises():
    env = Environment()
    cluster = Cluster(env, ClusterSpec(num_nodes=4), RandomStreams(3))
    cluster.allocate(4, "jobA")
    with pytest.raises(RuntimeError):
        cluster.allocate(1, "jobB")


def test_release_frees_nodes():
    env = Environment()
    cluster = Cluster(env, ClusterSpec(num_nodes=4), RandomStreams(3))
    nodes = cluster.allocate(4, "jobA")
    cluster.release(nodes)
    again = cluster.allocate(4, "jobB")
    assert len(again) == 4


def test_allocation_varies_across_runs():
    """Different run seeds sample different placements (the paper's
    placement-variability source)."""
    def placement(run_index):
        env = Environment()
        cluster = Cluster(env, ClusterSpec(num_nodes=64),
                          RandomStreams(0, run_index=run_index))
        return tuple(n.name for n in cluster.allocate(2, "wf"))

    placements = {placement(k) for k in range(8)}
    assert len(placements) > 1


def test_describe_contains_hardware_layers():
    env = Environment()
    cluster = Cluster(env, ClusterSpec(num_nodes=4), RandomStreams(1))
    meta = cluster.describe()
    assert meta["machine"] == "polaris-sim"
    assert meta["node"]["cores"] == 32
    assert meta["pfs"]["num_osts"] > 0
    node_meta = cluster.nodes["nid00000"].describe()
    assert node_meta["hostname"] == "nid00000"
    assert "cpu_speed" in node_meta


def test_commodity_preset_shape():
    from repro.platform import COMMODITY_CLUSTER, POLARIS_LIKE
    assert COMMODITY_CLUSTER.name == "commodity-sim"
    assert COMMODITY_CLUSTER.node.nic_bandwidth < \
        POLARIS_LIKE.node.nic_bandwidth / 10
    assert COMMODITY_CLUSTER.pfs.ost_bandwidth < \
        POLARIS_LIKE.pfs.ost_bandwidth
    env = Environment()
    cluster = Cluster(env, COMMODITY_CLUSTER, RandomStreams(1))
    assert len(cluster.nodes) == 32
    assert cluster.describe()["machine"] == "commodity-sim"
