"""Concurrency-family rules on seeded-bug fixtures.

Each fixture reconstructs a bug class this repo actually shipped and
fixed: the stale-guard interval loops (stealing/ssg/monitor), the PR 5
failure-window race between the work-stealing loop and the completion
path, and the monitor zero-perturbation contract from the telemetry
work.
"""

import textwrap

from repro.analysis import LintEngine, rules_for


def lint_sources(tmp_path, sources, selectors=("concurrency",)):
    for name, code in sources.items():
        (tmp_path / name).write_text(textwrap.dedent(code).lstrip("\n"))
    engine = LintEngine(rules=rules_for(list(selectors)),
                        root=str(tmp_path))
    report = engine.run([str(tmp_path)])
    return [f for f in report.findings if f.active]


def rule_names(findings):
    return sorted(f.rule for f in findings)


class TestStaleLoopGuard:
    def test_trailing_work_after_yield_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"stealer.py": """
            class Stealer:
                def _loop(self):
                    while self._running:
                        yield self.env.timeout(1.0)
                        self.balance()
        """})
        assert rule_names(findings) == ["conc-stale-loop-guard"]
        assert "self._running" in findings[0].message

    def test_post_yield_recheck_clean(self, tmp_path):
        assert lint_sources(tmp_path, {"stealer.py": """
            class Stealer:
                def _loop(self):
                    while self._running:
                        yield self.env.timeout(1.0)
                        if not self._running:
                            return
                        self.balance()
        """}) == []

    def test_yield_only_body_clean(self, tmp_path):
        # The while-test itself re-reads the guard before the next round.
        assert lint_sources(tmp_path, {"beat.py": """
            class Beacon:
                def _loop(self):
                    while self._running:
                        yield self.env.timeout(1.0)
        """}) == []

    def test_while_true_not_flagged(self, tmp_path):
        # No guard attribute to go stale.
        assert lint_sources(tmp_path, {"walk.py": """
            class Walker:
                def _loop(self):
                    while True:
                        yield self.env.timeout(1.0)
                        self.step()
        """}) == []

    def test_any_guard_read_counts(self, tmp_path):
        # Reading the guard in a conditional (not only `return`) is a
        # revalidation too.
        assert lint_sources(tmp_path, {"gc.py": """
            class Collector:
                def _loop(self):
                    while not self._closed:
                        yield self.env.timeout(1.0)
                        if not self._closed:
                            self.collect()
        """}) == []

    def test_suppression_honoured(self, tmp_path):
        assert lint_sources(tmp_path, {"spill.py": """
            class Spiller:
                def _loop(self):
                    while self._active:
                        # repro: allow[conc-stale-loop-guard]
                        yield self.env.timeout(1.0)
                        self.evict()
        """}) == []


class TestCrossContextMutation:
    #: Pre-PR-5 work stealing, reconstructed: the interval loop steals a
    #: task with no revalidation, while the completion handler
    #: independently retires the same task state / occupancy entries.
    PR5_RACE = """
        class Scheduler:
            def task_finished(self, worker, key):
                ts = self.tasks[key]
                ts.state = "memory"
                self.occupancy[worker] = 0.0

        class WorkStealing:
            def start(self):
                self._running = True
                self.env.process(self._loop())

            def _loop(self):
                while self._running:
                    yield self.env.timeout(1.0)
                    if not self._running:
                        return
                    self.balance()

            def balance(self):
                for key in self.pending:
                    self._steal(key)

            def _steal(self, key):
                ts = self.scheduler.tasks[key]
                ts.state = "stolen"
                self.scheduler.occupancy[key] = 0.0
    """

    def test_pr5_failure_window_race_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"dask.py": self.PR5_RACE})
        names = rule_names(findings)
        assert "conc-cross-context-mutation" in names
        # Both racing attributes are reported, anchored in _steal.
        attrs = {f.message.split("'")[1] for f in findings}
        assert attrs == {"state", "occupancy"}
        assert all("_steal" in f.message for f in findings)

    def test_pr5_fix_shape_exempt(self, tmp_path):
        # The shipped fix: revalidate, bail out if the task moved on,
        # only then mutate.  Same call graph, no findings.
        fixed = self.PR5_RACE.replace(
            """def _steal(self, key):
                ts = self.scheduler.tasks[key]
                ts.state = "stolen\"""",
            """def _steal(self, key):
                ts = self.scheduler.tasks.get(key)
                if ts is None or ts.state != "processing":
                    return
                ts.state = "stolen\"""")
        assert fixed != self.PR5_RACE
        assert lint_sources(tmp_path, {"dask.py": fixed}) == []

    def test_guarded_caller_exempts_helper(self, tmp_path):
        # handle_worker_failure-shape: the loop-side caller revalidates
        # before delegating, so the helper's own mutations are safe.
        assert lint_sources(tmp_path, {"liveness.py": """
            class Scheduler:
                def start(self):
                    self._monitoring = True
                    self.env.process(self._liveness_loop())

                def _liveness_loop(self):
                    while self._monitoring:
                        yield self.env.timeout(1.0)
                        if not self._monitoring:
                            return
                        for address in self.stale():
                            self.handle_worker_failure(address)

                def handle_worker_failure(self, address):
                    if address not in self.workers:
                        return
                    self.remove_worker(address)

                def remove_worker(self, address):
                    self.workers.pop(address, None)

                def add_worker(self, address, worker):
                    self.workers[address] = worker
        """}) == []

    def test_shared_funnel_not_flagged(self, tmp_path):
        # One function reached from both contexts is serialization,
        # not a race: the rule needs different code on the two sides.
        assert lint_sources(tmp_path, {"log.py": """
            class Component:
                def start(self):
                    self._running = True
                    self.env.process(self._loop())

                def _loop(self):
                    while self._running:
                        yield self.env.timeout(1.0)
                        if not self._running:
                            return
                        self.log("tick")

                def log(self, message):
                    self.logs.append(message)
        """}) == []

    def test_same_attr_different_class_not_flagged(self, tmp_path):
        # `Client.logs` and `Stealer.seen` sharing an attr name with
        # unrelated classes must not pair up into a phantom race.
        assert lint_sources(tmp_path, {"two.py": """
            class Stealer:
                def start(self):
                    self._running = True
                    self.env.process(self._loop())

                def _loop(self):
                    while self._running:
                        yield self.env.timeout(1.0)
                        if not self._running:
                            return
                        self.scan()

                def scan(self):
                    self.seen = {}

            class Client:
                def submit(self, graph):
                    self.seen = {"graph": graph}
        """}) == []


class TestMonitorMutation:
    def test_event_creating_call_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"mon.py": """
            class Probe:
                def on_schedule(self, event):
                    self.env.schedule(event)

                def on_step(self, event):
                    self.count += 1
        """})
        assert rule_names(findings) == ["conc-monitor-mutation"]
        assert ".schedule" in findings[0].message

    def test_observed_event_write_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"mon.py": """
            class Probe:
                def on_step(self, event):
                    event.time = 0.0

                def before_callback(self, event):
                    self.count += 1
        """})
        assert rule_names(findings) == ["conc-monitor-mutation"]
        assert "event.time" in findings[0].message

    def test_observe_only_clean(self, tmp_path):
        assert lint_sources(tmp_path, {"mon.py": """
            class Probe:
                def on_schedule(self, event):
                    self.scheduled += 1

                def on_step(self, event):
                    self.samples.append(event.time)
        """}) == []

    def test_single_hook_class_ignored(self, tmp_path):
        # One hook-like method on an unrelated class is not a monitor.
        assert lint_sources(tmp_path, {"other.py": """
            class Driver:
                def on_step(self, event):
                    self.env.schedule(event)
        """}) == []
