"""Engine mechanics: discovery, suppression, baseline, selection."""

import json
import os
import textwrap

import pytest

from repro.analysis import (
    LintEngine,
    ModuleSource,
    load_baseline,
    registered_rules,
    rules_for,
    write_baseline,
)

DIRTY = """
import time

def stamp():
    return time.time()
"""


def write(tmp_path, name, code):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code).lstrip("\n"))
    return str(path)


class TestDiscovery:
    def test_walks_directories_sorted(self, tmp_path):
        write(tmp_path, "b.py", "x = 1")
        write(tmp_path, "a.py", "y = 2")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "c.py").write_text("z = 3")
        (sub / "notes.txt").write_text("not python")
        found = LintEngine.discover([str(tmp_path)])
        assert [os.path.basename(p) for p in found] == \
            ["a.py", "b.py", "c.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            LintEngine.discover(["/nonexistent/nowhere"])


class TestSuppression:
    def test_same_line_comment(self, tmp_path):
        path = write(tmp_path, "m.py", """
            import time
            t = time.time()  # repro: allow[det-wallclock]
        """)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        assert report.active == []
        assert len(report.suppressed) == 1

    def test_preceding_line_comment(self, tmp_path):
        path = write(tmp_path, "m.py", """
            import time
            # repro: allow[det-wallclock]
            t = time.time()
        """)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        assert report.active == []

    def test_wildcard_and_multiple_rules(self, tmp_path):
        path = write(tmp_path, "m.py", """
            import time
            # repro: allow[*]
            t = time.time()
            u = {id(x) for x in []}  # repro: allow[det-id-key, det-set-iteration]
        """)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        assert report.active == []

    def test_wrong_rule_name_does_not_suppress(self, tmp_path):
        path = write(tmp_path, "m.py", """
            import time
            t = time.time()  # repro: allow[det-id-key]
        """)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        assert [f.rule for f in report.active] == ["det-wallclock"]


class TestBaseline:
    def test_roundtrip_marks_baselined(self, tmp_path):
        path = write(tmp_path, "m.py", DIRTY)
        engine = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path))
        report = engine.run([path])
        assert len(report.active) == 1

        baseline_path = str(tmp_path / "baseline.json")
        count = write_baseline(report, baseline_path, str(tmp_path))
        assert count == 1

        engine2 = LintEngine(rules=rules_for(["determinism"]),
                             baseline=load_baseline(baseline_path),
                             root=str(tmp_path))
        report2 = engine2.run([path])
        assert report2.active == []
        assert len(report2.baselined) == 1
        assert report2.exit_code == 0

    def test_baseline_survives_line_shifts(self, tmp_path):
        path = write(tmp_path, "m.py", DIRTY)
        engine = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path))
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(engine.run([path]), baseline_path, str(tmp_path))

        # Prepend lines: the finding moves but its text is unchanged.
        shifted = "import os\nimport sys\n" + \
            (tmp_path / "m.py").read_text()
        (tmp_path / "m.py").write_text(shifted)
        engine2 = LintEngine(rules=rules_for(["determinism"]),
                             baseline=load_baseline(baseline_path),
                             root=str(tmp_path))
        assert engine2.run([path]).active == []

    def test_new_findings_stay_active(self, tmp_path):
        path = write(tmp_path, "m.py", DIRTY)
        engine = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path))
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(engine.run([path]), baseline_path, str(tmp_path))

        (tmp_path / "m.py").write_text(
            (tmp_path / "m.py").read_text()
            + "\ndef stamp2():\n    return time.monotonic()\n")
        engine2 = LintEngine(rules=rules_for(["determinism"]),
                             baseline=load_baseline(baseline_path),
                             root=str(tmp_path))
        report = engine2.run([path])
        assert len(report.active) == 1
        assert "monotonic" in report.active[0].snippet

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestSelection:
    def test_families_and_names(self):
        rules = registered_rules()
        assert {r.family for r in rules.values()} == \
            {"determinism", "provenance"}
        assert [r.name for r in rules_for(["det-wallclock"])] == \
            ["det-wallclock"]
        det = rules_for(["determinism"])
        assert all(r.family == "determinism" for r in det)
        assert len(det) >= 5

    def test_unknown_selector_raises(self):
        with pytest.raises(KeyError):
            rules_for(["no-such-rule"])

    def test_every_rule_documented(self):
        for rule in registered_rules().values():
            assert rule.description


class TestReportRendering:
    def test_json_roundtrips(self, tmp_path):
        path = write(tmp_path, "m.py", DIRTY)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        document = json.loads(report.render_json())
        assert document["exit_code"] == 1
        assert document["findings"][0]["rule"] == "det-wallclock"

    def test_text_contains_location_and_counts(self, tmp_path):
        path = write(tmp_path, "m.py", DIRTY)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        text = report.render_text()
        assert "m.py:4" in text
        assert "1 finding(s)" in text
