"""Engine mechanics: discovery, suppression, baseline, selection."""

import json
import os
import textwrap

import pytest

from repro.analysis import (
    LintEngine,
    ModuleSource,
    load_baseline,
    prune_baseline,
    registered_rules,
    rules_for,
    write_baseline,
)

DIRTY = """
import time

def stamp():
    return time.time()
"""


def write(tmp_path, name, code):
    path = tmp_path / name
    path.write_text(textwrap.dedent(code).lstrip("\n"))
    return str(path)


class TestDiscovery:
    def test_walks_directories_sorted(self, tmp_path):
        write(tmp_path, "b.py", "x = 1")
        write(tmp_path, "a.py", "y = 2")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "c.py").write_text("z = 3")
        (sub / "notes.txt").write_text("not python")
        found = LintEngine.discover([str(tmp_path)])
        assert [os.path.basename(p) for p in found] == \
            ["a.py", "b.py", "c.py"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            LintEngine.discover(["/nonexistent/nowhere"])


class TestSuppression:
    def test_same_line_comment(self, tmp_path):
        path = write(tmp_path, "m.py", """
            import time
            t = time.time()  # repro: allow[det-wallclock]
        """)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        assert report.active == []
        assert len(report.suppressed) == 1

    def test_preceding_line_comment(self, tmp_path):
        path = write(tmp_path, "m.py", """
            import time
            # repro: allow[det-wallclock]
            t = time.time()
        """)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        assert report.active == []

    def test_wildcard_and_multiple_rules(self, tmp_path):
        path = write(tmp_path, "m.py", """
            import time
            # repro: allow[*]
            t = time.time()
            u = {id(x) for x in []}  # repro: allow[det-id-key, det-set-iteration]
        """)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        assert report.active == []

    def test_wrong_rule_name_does_not_suppress(self, tmp_path):
        path = write(tmp_path, "m.py", """
            import time
            t = time.time()  # repro: allow[det-id-key]
        """)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        assert [f.rule for f in report.active] == ["det-wallclock"]

    def test_multi_rule_list_covers_distinct_findings_on_one_line(
            self, tmp_path):
        # One allow list, two different rules anchored to the same line.
        path = write(tmp_path, "m.py", """
            import time
            import random
            x = time.time() + random.random()  # repro: allow[det-wallclock, det-unseeded-random]
        """)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        assert report.active == []
        assert len(report.suppressed) == 2

    def test_comment_above_decorators_reaches_the_def(self, tmp_path):
        # A suppression placed above a decorator stack applies to a
        # finding anchored at the decorated `def` line.
        module = ModuleSource.parse("m.py", textwrap.dedent("""
            # repro: allow[conc-stale-loop-guard]
            @retries(3)
            @traced
            def _loop(self):
                pass
        """).lstrip("\n"))
        def_line = module.tree.body[0].lineno
        assert module.line(def_line).startswith("def _loop")
        assert "conc-stale-loop-guard" in module.allowed_rules(def_line)

    def test_comment_inside_multiline_expression_counts(self, tmp_path):
        # The flagged node spans several lines; a comment on any of
        # them (here: deep inside the parenthesized payload) works.
        path = write(tmp_path, "m.py", """
            def emit(producer, env):
                producer.push({
                    "type": "dxt_segment",
                    "hostname": "nid0",
                    "start": env.now,  # repro: allow[prov-missing-identifier]
                    "end": env.now,
                })
        """)
        report = LintEngine(rules=rules_for(["provenance"]),
                            root=str(tmp_path)).run([path])
        assert report.active == []
        assert len(report.suppressed) == 1


class TestBaseline:
    def test_roundtrip_marks_baselined(self, tmp_path):
        path = write(tmp_path, "m.py", DIRTY)
        engine = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path))
        report = engine.run([path])
        assert len(report.active) == 1

        baseline_path = str(tmp_path / "baseline.json")
        count = write_baseline(report, baseline_path, str(tmp_path))
        assert count == 1

        engine2 = LintEngine(rules=rules_for(["determinism"]),
                             baseline=load_baseline(baseline_path),
                             root=str(tmp_path))
        report2 = engine2.run([path])
        assert report2.active == []
        assert len(report2.baselined) == 1
        assert report2.exit_code == 0

    def test_baseline_survives_line_shifts(self, tmp_path):
        path = write(tmp_path, "m.py", DIRTY)
        engine = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path))
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(engine.run([path]), baseline_path, str(tmp_path))

        # Prepend lines: the finding moves but its text is unchanged.
        shifted = "import os\nimport sys\n" + \
            (tmp_path / "m.py").read_text()
        (tmp_path / "m.py").write_text(shifted)
        engine2 = LintEngine(rules=rules_for(["determinism"]),
                             baseline=load_baseline(baseline_path),
                             root=str(tmp_path))
        assert engine2.run([path]).active == []

    def test_new_findings_stay_active(self, tmp_path):
        path = write(tmp_path, "m.py", DIRTY)
        engine = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path))
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(engine.run([path]), baseline_path, str(tmp_path))

        (tmp_path / "m.py").write_text(
            (tmp_path / "m.py").read_text()
            + "\ndef stamp2():\n    return time.monotonic()\n")
        engine2 = LintEngine(rules=rules_for(["determinism"]),
                             baseline=load_baseline(baseline_path),
                             root=str(tmp_path))
        report = engine2.run([path])
        assert len(report.active) == 1
        assert "monotonic" in report.active[0].snippet

    def test_rejects_unknown_version(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(str(path))


class TestSelection:
    def test_families_and_names(self):
        rules = registered_rules()
        assert {r.family for r in rules.values()} == \
            {"determinism", "provenance", "concurrency", "hotpath",
             "provflow"}
        assert [r.name for r in rules_for(["det-wallclock"])] == \
            ["det-wallclock"]
        det = rules_for(["determinism"])
        assert all(r.family == "determinism" for r in det)
        assert len(det) >= 5
        conc = rules_for(["concurrency"])
        assert {r.name for r in conc} == {
            "conc-stale-loop-guard", "conc-cross-context-mutation",
            "conc-monitor-mutation"}
        assert {r.name for r in rules_for(["hotpath"])} == {
            "hot-linear-scan", "hot-collection-copy"}
        assert {r.name for r in rules_for(["provflow"])} == {
            "flow-missing-identifier", "flow-unknown-event-type",
            "flow-unresolved-emission"}

    def test_unknown_selector_raises(self):
        with pytest.raises(KeyError):
            rules_for(["no-such-rule"])

    def test_every_rule_documented(self):
        for rule in registered_rules().values():
            assert rule.description


class TestReportRendering:
    def test_json_roundtrips(self, tmp_path):
        path = write(tmp_path, "m.py", DIRTY)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        document = json.loads(report.render_json())
        assert document["exit_code"] == 1
        assert document["findings"][0]["rule"] == "det-wallclock"

    def test_text_contains_location_and_counts(self, tmp_path):
        path = write(tmp_path, "m.py", DIRTY)
        report = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path)).run([path])
        text = report.render_text()
        assert "m.py:4" in text
        assert "1 finding(s)" in text


class TestParallelParse:
    def _tree(self, tmp_path, n=12):
        for i in range(n):
            write(tmp_path, f"mod_{i:02d}.py", f"""
                import time

                def stamp_{i}():
                    return time.time()
            """)
        return str(tmp_path)

    def test_jobs_preserve_finding_order(self, tmp_path):
        root = self._tree(tmp_path)
        engine = LintEngine(rules=rules_for(["determinism"]), root=root)
        serial = engine.run([root])
        threaded = engine.run([root], jobs=4)
        assert serial.render_json() == threaded.render_json()
        assert len(serial.active) == 12

    def test_jobs_cover_project_rules_too(self, tmp_path):
        write(tmp_path, "sched.py", """
            class Scheduler:
                def submit(self, spec):
                    self.env.process(self._dispatch(spec))

                def _dispatch(self, spec):
                    candidates = dict(self.workers)
                    yield self.env.timeout(0.0)
        """)
        engine = LintEngine(rules=rules_for(["hotpath"]),
                            root=str(tmp_path))
        report = engine.run([str(tmp_path)], jobs=4)
        assert [f.rule for f in report.active] == ["hot-collection-copy"]


class TestBaselineMaintenance:
    def test_stale_entries_reported_in_stats(self, tmp_path):
        path = write(tmp_path, "m.py", DIRTY)
        engine = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path))
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(engine.run([path]), baseline_path, str(tmp_path))

        # The flagged code goes away; the baseline entry is now stale.
        write(tmp_path, "m.py", "x = 1\n")
        engine2 = LintEngine(rules=rules_for(["determinism"]),
                             baseline=load_baseline(baseline_path),
                             root=str(tmp_path))
        report = engine2.run([path])
        assert report.stats["stale_baseline_entries"] == 1
        assert report.exit_code == 0

    def test_prune_drops_only_stale_entries(self, tmp_path):
        keep = write(tmp_path, "keep.py", DIRTY)
        gone = write(tmp_path, "gone.py", """
            import random
            r = random.random()
        """)
        engine = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path))
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(engine.run([keep, gone]), baseline_path,
                       str(tmp_path))
        assert len(load_baseline(baseline_path)) == 2

        write(tmp_path, "gone.py", "x = 1\n")
        report = engine.run([keep, gone])
        kept, dropped = prune_baseline(report, baseline_path,
                                       str(tmp_path))
        assert (kept, dropped) == (1, 1)
        remaining = load_baseline(baseline_path)
        assert len(remaining) == 1
        assert all("keep.py" in entry for entry in remaining)

    def test_prune_keeps_suppressed_matches(self, tmp_path):
        # An entry whose code is now also inline-suppressed is not
        # stale: pruning must stay idempotent, not fight suppressions.
        path = write(tmp_path, "m.py", DIRTY)
        engine = LintEngine(rules=rules_for(["determinism"]),
                            root=str(tmp_path))
        baseline_path = str(tmp_path / "baseline.json")
        write_baseline(engine.run([path]), baseline_path, str(tmp_path))

        write(tmp_path, "m.py", """
            import time

            def stamp():
                # repro: allow[det-wallclock]
                return time.time()
        """)
        report = engine.run([path])
        kept, dropped = prune_baseline(report, baseline_path,
                                       str(tmp_path))
        assert (kept, dropped) == (1, 0)
