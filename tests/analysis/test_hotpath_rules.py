"""Hotpath-family rules: per-event O(n) scans found via the call graph."""

import textwrap

from repro.analysis import LintEngine, rules_for


def lint_sources(tmp_path, sources, selectors=("hotpath",)):
    for name, code in sources.items():
        (tmp_path / name).write_text(textwrap.dedent(code).lstrip("\n"))
    engine = LintEngine(rules=rules_for(list(selectors)),
                        root=str(tmp_path))
    report = engine.run([str(tmp_path)])
    return [f for f in report.findings if f.active]


def rule_names(findings):
    return sorted(f.rule for f in findings)


#: A scheduler whose per-event dispatch path scans and copies the
#: unbounded worker table — the decide_worker shape the scale-out PR
#: has to dismantle.
HOT_SCHEDULER = """
    class Scheduler:
        def submit(self, spec):
            self.env.process(self._dispatch(spec))

        def _dispatch(self, spec):
            worker = self.decide_worker(spec)
            yield self.env.timeout(0.0)

        def decide_worker(self, spec):
            mean_occ = sum(self.occupancy.values()) / 8
            best = None
            for address, worker in self.workers.items():
                if self.occupancy[address] < mean_occ:
                    best = worker
            candidates = dict(self.workers)
            return best or candidates
"""


class TestLinearScan:
    def test_scan_and_aggregate_on_event_path_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"sched.py": HOT_SCHEDULER})
        names = rule_names(findings)
        assert names == ["hot-collection-copy", "hot-linear-scan",
                         "hot-linear-scan"]
        attrs = sorted(f.message.split("'")[1] for f in findings
                       if f.rule == "hot-linear-scan")
        assert attrs == ["occupancy", "workers"]
        assert all("decide_worker" in f.message for f in findings)

    def test_comprehension_counts_as_scan(self, tmp_path):
        findings = lint_sources(tmp_path, {"sched.py": """
            class Scheduler:
                def submit(self, spec):
                    self.env.process(self._dispatch(spec))

                def _dispatch(self, spec):
                    idle = [w for w in self.workers.values() if w.idle]
                    yield self.env.timeout(0.0)
        """})
        assert rule_names(findings) == ["hot-linear-scan"]

    def test_unreachable_function_not_flagged(self, tmp_path):
        # Same scan, but nothing the engine spawns ever reaches it.
        assert lint_sources(tmp_path, {"tools.py": """
            class Inspector:
                def dump(self):
                    for address, worker in self.workers.items():
                        print(address, worker)
        """}) == []

    def test_loop_driver_excluded(self, tmp_path):
        # Interval-paced loop drivers may scan: they run per interval,
        # not per transition.
        assert lint_sources(tmp_path, {"live.py": """
            class Scheduler:
                def start(self):
                    self._monitoring = True
                    self.env.process(self._liveness_loop())

                def _liveness_loop(self):
                    while self._monitoring:
                        yield self.env.timeout(1.0)
                        if not self._monitoring:
                            return
                        for address in self.workers:
                            self.check(address)
        """}) == []

    def test_amortized_allowlist_exempts(self, tmp_path):
        assert lint_sources(tmp_path, {"fail.py": """
            class Scheduler:
                def submit(self, spec):
                    self.env.process(self._dispatch(spec))

                def _dispatch(self, spec):
                    self.handle_worker_failure(spec)
                    yield self.env.timeout(0.0)

                def handle_worker_failure(self, address):
                    for key, ts in self.tasks.items():
                        self.check(key, ts)
        """}) == []

    def test_bounded_collection_not_flagged(self, tmp_path):
        # Scanning a small fixed structure is fine.
        assert lint_sources(tmp_path, {"cfg.py": """
            class Scheduler:
                def submit(self, spec):
                    self.env.process(self._dispatch(spec))

                def _dispatch(self, spec):
                    for phase in self.phases:
                        self.enter(phase)
                    yield self.env.timeout(0.0)
        """}) == []

    def test_wheel_bucket_scan_flagged_outside_allowlist(self, tmp_path):
        # Anti-rot for the timer-wheel exemptions: the wheel containers
        # ARE unbounded collections, and a per-event scan over them in
        # any function *not* on the amortized allowlist must still
        # fire.  If this stops failing-when-planted, the allowlist has
        # silently swallowed the rule.
        findings = lint_sources(tmp_path, {"eng.py": """
            class Environment:
                def submit(self, spec):
                    self.process(self._dispatch(spec))

                def _dispatch(self, spec):
                    stale = [q for q in self._buckets if q < spec.q]
                    nxt = min(self._overflow)
                    yield self.timeout(0.0)
        """})
        names = rule_names(findings)
        assert names == ["hot-linear-scan", "hot-linear-scan"]
        attrs = sorted(f.message.split("'")[1] for f in findings)
        assert attrs == ["_buckets", "_overflow"]

    def test_wheel_maintenance_functions_exempt(self, tmp_path):
        # The same scans amortize inside bucket activation/reconcile:
        # each bucket is sorted and drained exactly once, so the
        # allowlist must keep them quiet.
        assert lint_sources(tmp_path, {"eng.py": """
            class Environment:
                def submit(self, spec):
                    self.process(self._dispatch(spec))

                def _dispatch(self, spec):
                    self._reconcile_wheel()
                    self._activate_bucket()
                    yield self.timeout(0.0)

                def _activate_bucket(self):
                    stale = [entry for entry in self._ready if entry]
                    return min(self._buckets)

                def _reconcile_wheel(self):
                    for q in self._buckets:
                        self.requeue(q)
        """}) == []

    def test_suppression_honoured(self, tmp_path):
        code = HOT_SCHEDULER.replace(
            "mean_occ = sum(self.occupancy.values()) / 8",
            "mean_occ = sum(self.occupancy.values()) / 8"
            "  # repro: allow[hot-linear-scan]")
        findings = lint_sources(tmp_path, {"sched.py": code})
        assert "occupancy" not in "".join(f.message for f in findings)


class TestCollectionCopy:
    def test_copy_flagged_with_function_context(self, tmp_path):
        findings = lint_sources(tmp_path, {"sched.py": HOT_SCHEDULER})
        copies = [f for f in findings if f.rule == "hot-collection-copy"]
        assert len(copies) == 1
        assert "dict()" in copies[0].message
        assert "workers" in copies[0].message

    def test_sorted_copy_flagged(self, tmp_path):
        findings = lint_sources(tmp_path, {"sched.py": """
            class Scheduler:
                def submit(self, spec):
                    self.env.process(self._dispatch(spec))

                def _dispatch(self, spec):
                    by_occ = sorted(self.workers.values())
                    yield self.env.timeout(0.0)
        """})
        assert rule_names(findings) == ["hot-collection-copy"]
