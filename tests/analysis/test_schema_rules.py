"""Provenance-schema rules on fixture emission sites."""

import textwrap

import pytest

from repro.analysis import EVENT_REQUIREMENTS, LintEngine, ModuleSource, \
    rules_for
from repro.analysis.schema import record_fields, satisfied_identifiers


def lint(code, selectors=("provenance",)):
    module = ModuleSource.parse(
        "fixture.py", textwrap.dedent(code).lstrip("\n"))
    engine = LintEngine(rules=rules_for(selectors), root="/tmp")
    return [f for f in engine.check_module(module) if f.active]


def rule_names(findings):
    return sorted(f.rule for f in findings)


class TestRequirementDerivation:
    def test_every_requirement_maps_to_fair_columns(self):
        from repro.core.fair import IDENTIFIER_COLUMNS
        for event_type, idents in EVENT_REQUIREMENTS.items():
            for ident in idents:
                assert ident in IDENTIFIER_COLUMNS, (event_type, ident)

    def test_record_registry_covers_plugin_payloads(self):
        fields = record_fields()
        for name in ("TransitionRecord", "TaskRun", "CommRecord",
                     "WarningRecord", "SpillRecord", "StealEvent"):
            assert name in fields

    def test_satisfied_identifiers_split(self):
        present, missing = satisfied_identifiers(
            "task_run", {"key", "worker", "hostname", "thread_id",
                         "start"})
        assert present == {"key", "worker", "hostname", "thread",
                           "timestamp"}
        assert missing == set()


class TestEmissionSites:
    def test_complete_dict_literal_clean(self):
        assert lint("""
            def emit(producer, env, rank):
                producer.push({
                    "type": "dxt_segment", "hostname": "nid0",
                    "pthread_id": 3, "start": env.now, "end": env.now,
                })
        """) == []

    def test_missing_identifier_flagged(self):
        findings = lint("""
            def emit(producer, env):
                producer.push({
                    "type": "dxt_segment", "hostname": "nid0",
                    "start": env.now, "end": env.now,
                })
        """)
        assert rule_names(findings) == ["prov-missing-identifier"]
        assert "thread" in findings[0].message

    def test_missing_type_flagged(self):
        findings = lint("""
            def emit(producer):
                producer.push({"worker": "w0", "timestamp": 1.0})
        """)
        assert rule_names(findings) == ["prov-missing-type"]

    def test_unknown_event_type_flagged(self):
        findings = lint("""
            def emit(producer):
                producer.push({"type": "mystery", "timestamp": 1.0})
        """)
        assert rule_names(findings) == ["prov-unknown-event-type"]

    def test_untyped_payload_flagged(self):
        findings = lint("""
            def emit(producer, metadata):
                producer.push(metadata)
        """)
        assert rule_names(findings) == ["prov-untyped-emission"]

    def test_push_funnel_suppressible(self):
        findings = lint("""
            def emit(producer, metadata):
                producer.push(metadata)  # repro: allow[prov-untyped-emission]
        """)
        assert findings == []


class TestUnderscorePushSites:
    def test_asdict_of_known_record_clean(self):
        assert lint("""
            from dataclasses import asdict

            from repro.dasklike.records import TaskRun

            class Plugin:
                def task_finished(self, record: TaskRun) -> None:
                    self._push("task_run", asdict(record))
        """) == []

    def test_asdict_missing_fields_flagged(self):
        # LogEntry has no key/hostname/thread: wrong record for task_run.
        findings = lint("""
            from dataclasses import asdict

            from repro.dasklike.records import LogEntry

            class Plugin:
                def task_finished(self, record: LogEntry) -> None:
                    self._push("task_run", asdict(record))
        """)
        assert rule_names(findings) == ["prov-missing-identifier"] * 3
        missing = {f.message.split("'")[3] for f in findings}
        assert missing == {"key", "hostname", "thread"}

    def test_dict_literal_payload_checked(self):
        findings = lint("""
            class Plugin:
                def task_added(self, key, env):
                    self._push("task_added", {"key": key})
        """)
        assert rule_names(findings) == ["prov-missing-identifier"]
        assert "timestamp" in findings[0].message

    def test_unresolvable_annotation_flagged(self):
        findings = lint("""
            from dataclasses import asdict

            class Plugin:
                def hook(self, record: "SomethingUnknown") -> None:
                    self._push("warning", asdict(record))
        """)
        assert rule_names(findings) == ["prov-untyped-emission"]


class TestRealPluginsAreClean:
    def test_instrument_and_producer_lint_clean(self):
        import os

        import repro.instrument as instrument
        import repro.mofka.producer as producer_module

        engine = LintEngine(rules=rules_for(["provenance"]),
                            root=os.getcwd())
        report = engine.run([
            os.path.dirname(os.path.abspath(instrument.__file__)),
            os.path.abspath(producer_module.__file__),
        ])
        assert report.active == []
        # The generic funnel in plugins.py is suppressed, not missing.
        assert len(report.suppressed) == 1
