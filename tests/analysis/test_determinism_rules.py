"""Determinism rules on fixture modules with known violations."""

import textwrap

import pytest

from repro.analysis import LintEngine, ModuleSource, rules_for


def lint(code, selectors=("determinism",)):
    module = ModuleSource.parse(
        "fixture.py", textwrap.dedent(code).lstrip("\n"))
    engine = LintEngine(rules=rules_for(selectors), root="/tmp")
    return engine.check_module(module)


def rule_names(findings):
    return sorted(f.rule for f in findings if f.active)


class TestWallClock:
    def test_time_time_flagged(self):
        findings = lint("""
            import time
            stamp = time.time()
        """)
        assert rule_names(findings) == ["det-wallclock"]
        assert findings[0].line == 2

    def test_aliased_and_from_imports(self):
        findings = lint("""
            import time as _t
            from time import time
            a = _t.monotonic()
            b = time()
        """)
        assert rule_names(findings) == ["det-wallclock", "det-wallclock"]

    def test_datetime_now(self):
        findings = lint("""
            import datetime
            from datetime import datetime as dt
            a = datetime.datetime.now()
            b = dt.utcnow()
        """)
        assert rule_names(findings) == ["det-wallclock", "det-wallclock"]

    def test_env_now_not_flagged(self):
        assert lint("""
            def run(env):
                return env.now
        """) == []

    def test_unrelated_time_attribute_not_flagged(self):
        # A record's ``.time`` field is not the time module.
        assert lint("""
            def f(record):
                return record.time
        """) == []


class TestUnseededRandom:
    def test_module_level_random(self):
        findings = lint("""
            import random
            x = random.random()
            random.shuffle([1, 2])
        """)
        assert rule_names(findings) == ["det-unseeded-random"] * 2

    def test_from_import(self):
        findings = lint("""
            from random import choice
            pick = choice([1, 2])
        """)
        assert rule_names(findings) == ["det-unseeded-random"]

    def test_numpy_global_and_unseeded_default_rng(self):
        findings = lint("""
            import numpy as np
            a = np.random.rand(3)
            gen = np.random.default_rng()
        """)
        assert rule_names(findings) == ["det-unseeded-random"] * 2

    def test_seeded_default_rng_ok(self):
        assert lint("""
            import numpy as np
            gen = np.random.default_rng(42)
            inst = np.random.default_rng(seed=7)
        """) == [] or rule_names(lint("""
            import numpy as np
            gen = np.random.default_rng(42)
        """)) == []

    def test_random_random_instance_seeded_ok(self):
        assert lint("""
            import random
            gen = random.Random(1234)
        """) == []


class TestSetIteration:
    def test_for_over_set_literal(self):
        findings = lint("""
            for item in {"a", "b"}:
                print(item)
        """)
        assert rule_names(findings) == ["det-set-iteration"]

    def test_for_over_tracked_variable(self):
        findings = lint("""
            def f(keys):
                pending = set(keys)
                for key in pending:
                    print(key)
        """)
        assert rule_names(findings) == ["det-set-iteration"]

    def test_annotated_attribute(self):
        findings = lint("""
            class Worker:
                def __init__(self):
                    self.executing: set[str] = set()

                def drain(self):
                    return [k for k in self.executing]
        """)
        assert rule_names(findings) == ["det-set-iteration"]

    def test_list_of_set_flagged(self):
        findings = lint("""
            def f(a: set):
                return list(a)
        """)
        assert rule_names(findings) == ["det-set-iteration"]

    def test_sorted_exempt(self):
        assert lint("""
            def f(keys):
                pending = set(keys)
                ordered = sorted(pending)
                n = len(pending)
                top = max(pending)
                hit = "x" in pending
                return ordered, n, top, hit
        """) == []

    def test_sorted_comprehension_exempt(self):
        assert lint("""
            def f(names: set):
                return sorted(n.lower() for n in names)
        """) == []

    def test_dict_iteration_not_flagged(self):
        # Python dicts are insertion-ordered, hence deterministic.
        assert lint("""
            def f(mapping):
                for key, value in mapping.items():
                    print(key, value)
                return list(mapping.values())
        """) == []


class TestIdKey:
    def test_id_key_flagged(self):
        findings = lint("""
            def dedupe(items):
                return {id(x): x for x in items}
        """)
        assert rule_names(findings) == ["det-id-key"]

    def test_repr_exempt(self):
        assert lint("""
            class Event:
                def __repr__(self):
                    return f"<Event at {id(self):#x}>"
        """) == []


class TestFloatAccumulation:
    def test_sum_over_set(self):
        findings = lint("""
            def total(durations: set):
                return sum(durations)
        """)
        assert rule_names(findings) == ["det-float-accumulation"]

    def test_sum_generator_over_set(self):
        findings = lint("""
            def total(records):
                pending = set(records)
                return sum(r for r in pending)
        """)
        assert rule_names(findings) == ["det-float-accumulation"]

    def test_sum_over_list_ok(self):
        assert lint("""
            def total(durations):
                return sum(durations)
        """) == []

    def test_sum_over_sorted_set_ok(self):
        assert lint("""
            def total(durations: set):
                return sum(sorted(durations))
        """) == []


class TestRealisticCleanModule:
    def test_simlike_module_clean(self):
        # The idioms the repo actually uses must not trip the linter.
        assert lint("""
            import numpy as np

            def draw(streams, env):
                noise = streams.lognormal_factor("net", 0.1)
                gen = np.random.default_rng(123)
                order = gen.permutation(4)
                now = env.now
                names = sorted({"b", "a"})
                return noise, order, now, names
        """) == []
