"""Provflow-family rules: identifier contracts enforced through dataflow.

Every fixture here is a payload the syntax-level schema family cannot
resolve (built across statements, returned from a helper, merged via
``**``): provflow either proves the identifier contract holds, pins
down exactly which identifier is missing, or reports the site as
unresolvable for a human to suppress at the funnel.
"""

import textwrap

from repro.analysis import LintEngine, rules_for


def lint_source(tmp_path, code, selectors=("provflow",)):
    (tmp_path / "fixture.py").write_text(
        textwrap.dedent(code).lstrip("\n"))
    engine = LintEngine(rules=rules_for(list(selectors)),
                        root=str(tmp_path))
    report = engine.run([str(tmp_path)])
    return [f for f in report.findings if f.active]


def rule_names(findings):
    return sorted(f.rule for f in findings)


class TestBuiltAcrossStatements:
    def test_incomplete_payload_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            def emit(producer, env, key):
                payload = {"type": "steal", "key": key}
                payload["extra"] = 1
                producer.push(payload)
        """)
        assert set(rule_names(findings)) == {"flow-missing-identifier"}
        missing = {f.message.split("lacks the '")[1].split("'")[0]
                   for f in findings}
        assert missing == {"worker", "timestamp"}

    def test_complete_payload_clean(self, tmp_path):
        assert lint_source(tmp_path, """
            def emit(producer, env, key, worker):
                payload = {"type": "steal", "key": key}
                payload["worker"] = worker
                payload["time"] = env.now
                producer.push(payload)
        """) == []

    def test_keys_removed_again_flagged(self, tmp_path):
        # The flow is line-ordered: a popped identifier is gone.
        findings = lint_source(tmp_path, """
            def emit(producer, env, key, worker):
                payload = {"type": "steal", "key": key,
                           "worker": worker, "time": env.now}
                payload.pop("worker")
                producer.push(payload)
        """)
        assert rule_names(findings) == ["flow-missing-identifier"]
        assert "'worker'" in findings[0].message


class TestHelperReturns:
    def test_helper_built_payload_resolved(self, tmp_path):
        findings = lint_source(tmp_path, """
            def _make_event(key):
                return {"type": "steal", "key": key}

            def emit(producer, key):
                payload = _make_event(key)
                producer.push(payload)
        """)
        assert set(rule_names(findings)) == {"flow-missing-identifier"}

    def test_helper_completing_payload_clean(self, tmp_path):
        assert lint_source(tmp_path, """
            def _make_event(key, worker, now):
                payload = {"type": "steal", "key": key}
                payload["worker"] = worker
                payload["timestamp"] = now
                return payload

            def emit(producer, env, key, worker):
                payload = _make_event(key, worker, env.now)
                producer.push(payload)
        """) == []

    def test_opaque_helper_unresolved(self, tmp_path):
        findings = lint_source(tmp_path, """
            def emit(producer, key):
                payload = make_somewhere_else(key)
                producer.push(payload)
        """)
        assert rule_names(findings) == ["flow-unresolved-emission"]


class TestUnpackMerges:
    def test_resolvable_unpack_clean(self, tmp_path):
        assert lint_source(tmp_path, """
            def emit(producer, env, key):
                base = {"type": "task_added", "key": key}
                payload = {**base, "timestamp": env.now}
                producer.push(payload)
        """) == []

    def test_parameter_unpack_unresolved(self, tmp_path):
        findings = lint_source(tmp_path, """
            def emit(producer, env, base):
                payload = {**base, "timestamp": env.now}
                producer.push(payload)
        """)
        assert rule_names(findings) == ["flow-unresolved-emission"]

    def test_update_from_parameter_unresolved(self, tmp_path):
        findings = lint_source(tmp_path, """
            def emit(producer, extra):
                payload = {"type": "fault"}
                payload.update(extra)
                producer.push(payload)
        """)
        assert rule_names(findings) == ["flow-unresolved-emission"]


class TestEventTypes:
    def test_unknown_type_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            def emit(producer, env):
                payload = {"type": "bogus_event"}
                payload["time"] = env.now
                producer.push(payload)
        """)
        assert rule_names(findings) == ["flow-unknown-event-type"]
        assert "bogus_event" in findings[0].message

    def test_dynamic_type_unresolved(self, tmp_path):
        findings = lint_source(tmp_path, """
            def emit(producer, env, event_type):
                payload = {"type": event_type}
                payload["time"] = env.now
                producer.push(payload)
        """)
        assert rule_names(findings) == ["flow-unresolved-emission"]

    def test_missing_type_key_flagged(self, tmp_path):
        findings = lint_source(tmp_path, """
            def emit(producer, env, key):
                payload = {"key": key}
                payload["time"] = env.now
                producer.push(payload)
        """)
        assert rule_names(findings) == ["flow-missing-identifier"]
        assert "'type'" in findings[0].message


class TestPushHelper:
    def test_typed_push_payload_resolved(self, tmp_path):
        findings = lint_source(tmp_path, """
            def emit(plugin, env, key):
                payload = {"key": key, "start": env.now}
                plugin._push("task_run", payload)
        """)
        assert set(rule_names(findings)) == {"flow-missing-identifier"}
        missing = {f.message.split("lacks the '")[1].split("'")[0]
                   for f in findings}
        assert missing == {"worker", "hostname", "thread"}

    def test_complete_push_payload_clean(self, tmp_path):
        assert lint_source(tmp_path, """
            def emit(plugin, env, key, worker, host):
                payload = {"key": key, "start": env.now}
                payload["worker"] = worker
                payload["hostname"] = host
                payload["thread_id"] = 0
                plugin._push("task_run", payload)
        """) == []


class TestSuppression:
    def test_funnel_suppression_honoured(self, tmp_path):
        assert lint_source(tmp_path, """
            def forward(producer, metadata):
                producer.push(metadata)  # repro: allow[flow-unresolved-emission]
        """) == []
