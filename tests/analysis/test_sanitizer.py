"""Event-ordering sanitizer: engine-level hazard scenarios."""

import pytest

from repro.analysis import EventOrderSanitizer
from repro.sim import Environment, Event


def attached():
    env = Environment()
    sanitizer = EventOrderSanitizer().attach(env)
    return env, sanitizer


class TestAttachment:
    def test_attach_sets_monitor(self):
        env, sanitizer = attached()
        assert env.monitor is sanitizer
        sanitizer.detach()
        assert env.monitor is None

    def test_second_monitor_composes(self):
        """A second observer joins a MonitorChain instead of clobbering
        (or being rejected by) the first — the sanitizer and the
        telemetry sampler must be able to watch the same run."""
        from repro.sim import MonitorChain

        env, first = attached()
        second = EventOrderSanitizer().attach(env)
        assert isinstance(env.monitor, MonitorChain)
        assert env.monitor.monitors == [first, second]

        def chain():
            yield env.timeout(0.1)

        env.run(until=env.process(chain()))
        assert first.events_processed > 0
        assert second.events_processed == first.events_processed

        second.detach()
        assert env.monitor is first
        first.detach()
        assert env.monitor is None


class TestCleanRuns:
    def test_zero_delay_cascades_clean(self):
        env, sanitizer = attached()

        def chain():
            for _ in range(20):
                yield env.timeout(0.0)

        for _ in range(5):
            env.process(chain())
        env.run()
        report = sanitizer.report()
        assert report.active == []
        assert report.stats["events_processed"] > 0

    def test_independent_periodic_timers_coincide_without_findings(self):
        # Two unrelated heartbeat grids aligning at common multiples is
        # the normal, deterministic case (linger vs. monitor interval).
        env, sanitizer = attached()

        def beat(period):
            for _ in range(10):
                yield env.timeout(period)

        env.process(beat(0.05))
        env.process(beat(0.25))
        env.run()
        report = sanitizer.report()
        assert report.active == []
        assert report.stats["tie_groups"] > 0

    def test_producer_flush_pattern_clean(self):
        # AnyOf(store get, linger timer) with the get fired zero-delay:
        # the structural case the exemption must keep quiet about.
        from repro.sim import Store
        env, sanitizer = attached()
        store = Store(env)

        def producer():
            for _ in range(5):
                yield env.timeout(0.05)
                store.put("kick")

        def flusher():
            while True:
                get = store.get()
                timer = env.timeout(0.05)
                result = yield get | timer
                if not get.triggered:
                    store.cancel(get)
                if env.now > 0.6:
                    return

        env.process(producer())
        env.process(flusher())
        env.run(until=1.0)
        assert sanitizer.report().active == []


class TestTieOrder:
    def test_shared_waiter_on_accidental_tie_flagged(self):
        env, sanitizer = attached()
        first = env.timeout(1.0)          # origin 0.0 -> fires at 1.0

        def second_then_wait():
            yield env.timeout(0.5)
            second = env.timeout(0.5)     # origin 0.5 -> also 1.0
            yield env.all_of([first, second])

        env.process(second_then_wait())
        env.run()
        findings = sanitizer.report().active
        assert [f.rule for f in findings] == ["sanitize-tie-order"]
        assert findings[0].time == pytest.approx(1.0)

    def test_disjoint_waiters_on_accidental_tie_exempt(self):
        env, sanitizer = attached()

        def wait_for(delay, start):
            if start:
                yield env.timeout(start)
            yield env.timeout(delay)

        env.process(wait_for(1.0, 0.0))   # origin 0.0 -> 1.0
        env.process(wait_for(0.5, 0.5))   # origin 0.5 -> 1.0
        env.run()
        assert sanitizer.report().active == []


class TestForeignResume:
    def test_out_of_band_resume_flagged(self):
        env, sanitizer = attached()

        def waiter():
            yield env.event()     # parked forever

        process = env.process(waiter())
        env.run(until=env.timeout(0.0))
        assert process.is_alive

        rogue = env.event()
        rogue.callbacks.append(process._resume)
        rogue.succeed("out-of-band")
        env.run(until=env.timeout(0.0))
        rules = [f.rule for f in sanitizer.report().active]
        assert "sanitize-foreign-resume" in rules

    def test_interrupt_is_legal(self):
        env, sanitizer = attached()

        def sleeper():
            try:
                yield env.timeout(10.0)
            except Exception:
                pass

        def interrupter(target):
            yield env.timeout(0.5)
            target.interrupt("wake")

        target = env.process(sleeper())
        env.process(interrupter(target))
        env.run()
        assert sanitizer.report().active == []


class TestNegativeDelay:
    def test_scheduling_into_the_past_flagged(self):
        env, sanitizer = attached()
        env.run(until=env.timeout(1.0))
        event = Event(env)
        event._ok = True
        event._value = None
        env._schedule(event, delay=-0.5)
        rules = [f.rule for f in sanitizer.report().active]
        assert "sanitize-negative-delay" in rules


class TestFindingCap:
    def test_cap_reports_dropped_count(self):
        env, sanitizer = attached()
        sanitizer.max_findings = 3
        env.run(until=env.timeout(1.0))
        for _ in range(5):
            event = Event(env)
            event._ok = True
            event._value = None
            env._schedule(event, delay=-0.1)
        report = sanitizer.report()
        assert len(report.findings) == 3
        assert report.stats["findings_dropped"] == 2


class TestWorkflowIntegration:
    def test_small_workflow_sanitizes_clean(self):
        from repro.workflows import ImageProcessingWorkflow, run_workflow
        sanitizer = EventOrderSanitizer()
        result = run_workflow(ImageProcessingWorkflow(scale=0.04),
                              seed=3, monitor=sanitizer)
        report = sanitizer.report()
        assert report.active == []
        assert report.stats["events_processed"] > 1000
        assert result.wall_time > 0
