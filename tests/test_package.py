"""Package-level checks: imports, version, public API coherence."""

import importlib

import pytest

SUBPACKAGES = [
    "repro.sim", "repro.platform", "repro.jobs", "repro.dasklike",
    "repro.mofka", "repro.darshan", "repro.instrument", "repro.core",
    "repro.workflows", "repro.cli", "repro.experiments",
]


def test_version():
    import repro
    assert repro.__version__


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_imports(name):
    module = importlib.import_module(name)
    assert module.__doc__, f"{name} must carry a module docstring"


@pytest.mark.parametrize("name", [
    "repro.sim", "repro.platform", "repro.jobs", "repro.dasklike",
    "repro.mofka", "repro.darshan", "repro.instrument", "repro.core",
    "repro.workflows",
])
def test_all_exports_resolve(name):
    module = importlib.import_module(name)
    for symbol in getattr(module, "__all__", []):
        assert hasattr(module, symbol), f"{name}.{symbol} missing"


def test_experiment_registry_benches_exist():
    import os

    from repro.experiments import EXPERIMENTS
    root = os.path.join(os.path.dirname(__file__), "..")
    for experiment in EXPERIMENTS:
        path = os.path.join(root, experiment.bench)
        assert os.path.exists(path), experiment.bench


def test_every_public_function_documented():
    """Every symbol exported from repro.core has a docstring."""
    core = importlib.import_module("repro.core")
    undocumented = []
    for symbol in core.__all__:
        obj = getattr(core, symbol)
        if callable(obj) and not isinstance(obj, type):
            if not (obj.__doc__ or "").strip():
                undocumented.append(symbol)
    assert undocumented == []
