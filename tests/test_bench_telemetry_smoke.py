"""The telemetry overhead benchmark's smoke mode runs green.

``bench_telemetry_overhead.py --smoke`` re-checks the zero-perturbation
contract (identical event streams with telemetry on/off) on a tiny
ImageProcessing run, so running it here keeps the benchmark from
rotting alongside the telemetry layer.
"""

import importlib.util
import pathlib

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[1]
              / "benchmarks" / "bench_telemetry_overhead.py")


def test_telemetry_bench_smoke(capsys):
    spec = importlib.util.spec_from_file_location(
        "bench_telemetry_overhead_smoke", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "identical with telemetry on" in out
    assert "overhead:" in out
    assert "spans" in out
