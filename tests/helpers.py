"""Shared helpers to stand up a small simulated cluster for tests."""

from repro.dasklike import DaskCluster, DaskConfig
from repro.instrument import InstrumentedRun
from repro.jobs import BatchSystem, JobSpec
from repro.platform import Cluster, ClusterSpec
from repro.sim import Environment, RandomStreams


def make_wms(seed=0, run_index=0, worker_nodes=2, workers_per_node=2,
             threads=4, config=None, num_nodes=16, io_layer_factory=None):
    """Build (env, cluster, dask, client, job) ready to run a workflow."""
    env = Environment()
    streams = RandomStreams(seed, run_index=run_index)
    cluster = Cluster(env, ClusterSpec(num_nodes=num_nodes), streams)
    batch = BatchSystem(env, cluster, streams)
    spec = JobSpec(worker_nodes=worker_nodes,
                   workers_per_node=workers_per_node,
                   threads_per_worker=threads)
    job = env.run(until=env.process(batch.submit(spec)))
    dask = DaskCluster(env, cluster, job, config=config or DaskConfig(),
                       streams=streams, io_layer_factory=io_layer_factory)
    dask.start()
    client = dask.client()
    return env, cluster, dask, client, job


def make_instrumented(seed=0, run_index=0, worker_nodes=2,
                      workers_per_node=2, threads=4, config=None,
                      num_nodes=16, **run_kwargs):
    """Build (env, cluster, InstrumentedRun) with the full paper stack."""
    env = Environment()
    streams = RandomStreams(seed, run_index=run_index)
    cluster = Cluster(env, ClusterSpec(num_nodes=num_nodes), streams)
    batch = BatchSystem(env, cluster, streams)
    spec = JobSpec(worker_nodes=worker_nodes,
                   workers_per_node=workers_per_node,
                   threads_per_worker=threads)
    job = env.run(until=env.process(batch.submit(spec)))
    run = InstrumentedRun(env, cluster, job, config=config, streams=streams,
                          run_index=run_index, seed=seed, **run_kwargs)
    run.start()
    return env, cluster, run


def drive_instrumented(env, run, *graphs, optimize=True):
    """Run graphs through an InstrumentedRun's client; drains producers."""
    client = run.client()
    results = []

    def driver():
        yield env.process(client.connect())
        for graph in graphs:
            result = yield env.process(
                client.compute(graph, optimize=optimize))
            results.append(result)
        yield env.process(run.drain())

    env.run(until=env.process(driver()))
    return client, results


def run_graphs(env, client, *graphs, optimize=True):
    """Drive the client through one or more graphs; returns results list."""
    out = []

    def driver():
        yield env.process(client.connect())
        for graph in graphs:
            result = yield env.process(client.compute(graph,
                                                      optimize=optimize))
            out.append(result)

    env.run(until=env.process(driver()))
    return out
