"""The scheduler scale benchmark's smoke mode runs green and under budget.

``bench_scheduler_scale.py --smoke`` drives a small workers x tasks
cell through the O(1)-per-transition scheduler plus a reduced
legacy-algorithm comparison (both variants must drive their cells to
completion).  Running it here keeps the scale-out benchmark — the
artifact that pins the 10k-worker / 1M-task knee methodology and the
>=10x legacy gate — from rotting.
"""

import importlib.util
import pathlib

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[1]
              / "benchmarks" / "bench_scheduler_scale.py")


def _load():
    spec = importlib.util.spec_from_file_location(
        "bench_scheduler_scale_smoke", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_scheduler_scale_bench_smoke(capsys):
    module = _load()
    assert module.main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "scheduler scale benchmark (smoke)" in out
    assert "within budget" in out


def test_scheduler_scale_bench_budget_enforced(capsys):
    # An absurd budget must actually fail: the guard is not decorative.
    module = _load()
    assert module.main(["--smoke", "--budget", "0.000001"]) == 1
    assert "over the" in capsys.readouterr().err
