"""One-shot generator for the scale-out parity goldens.

Run from the repo root BEFORE and AFTER the scheduler data-structure
refactor::

    PYTHONPATH=src python tests/dasklike/_parity_golden_gen.py

Prints the sha256 of every stable artifact the parity suite pins.  The
hashes captured at the pre-refactor revision are inlined in
``test_scheduler_scale_parity.py``; the refactor must reproduce them
byte for byte.
"""

import hashlib
import json
import pathlib
import sys
import tempfile

sys.path.insert(0, str(pathlib.Path(__file__).resolve()
                       .parents[2] / "src"))

from repro.workflows import (  # noqa: E402
    ImageProcessingWorkflow,
    ResNet152Workflow,
    XGBoostWorkflow,
    run_workflow,
)

WORKFLOWS = {
    "image_processing": lambda: ImageProcessingWorkflow(scale=0.05),
    "resnet152": lambda: ResNet152Workflow(scale=0.03),
    "xgboost_trip": lambda: XGBoostWorkflow(scale=0.05),
}
SEED = 11


def transition_digest(result) -> str:
    """Order-independent digest of the full transition content.

    The *interleaving* of the merged stream depends on
    ``PYTHONHASHSEED`` (Mofka partitioning), a pre-existing property;
    the transition *set* — keys, states, stimuli, workers, and full-
    precision timestamps — is what placement behaviour determines, so
    that is what the parity suite pins.
    """
    rows = sorted(
        json.dumps(e, sort_keys=True)
        for e in result.data.events_of_type("transition")
    )
    return hashlib.sha256("\n".join(rows).encode()).hexdigest()


def main() -> None:
    goldens = {}
    for name, factory in WORKFLOWS.items():
        with tempfile.TemporaryDirectory() as tmp:
            result = run_workflow(factory(), seed=SEED, persist_dir=tmp)
            run_dir = next(pathlib.Path(tmp).glob("*/run0000"))
            logs = (run_dir / "logs.jsonl").read_bytes()
            goldens[name] = {
                "logs_sha256": hashlib.sha256(logs).hexdigest(),
                "transitions_sha256": transition_digest(result),
                "n_log_lines": logs.count(b"\n"),
            }
    print(json.dumps(goldens, indent=2))


if __name__ == "__main__":
    main()
