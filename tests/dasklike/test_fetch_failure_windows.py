"""Regression tests: the fetch path's failure windows.

Three bugs lived between a fetch's dispatch-time ``who_has`` snapshot
and the moment the bytes landed:

* the stale-snapshot refresh in ``Worker._fetch_one`` took the
  scheduler's *current* ``who_has`` unfiltered, so a retry could
  re-select a worker that had failed since the snapshot was taken;
* a shared in-flight fetch was a failing process, so when the
  initiating task was released mid-gather every *other* waiter joined
  a failed event and saw a phantom dependency-lost error for data a
  later attempt still delivered;
* a worker that crashed mid-transfer still ran the fetch epilogue,
  resurrecting ``managed_bytes``, a comm record, and a scheduler
  replica on a corpse whose accounting :meth:`Worker.fail` had just
  zeroed.

Each test here failed before the corresponding fix.
"""

from repro.dasklike import DaskConfig, TaskSpec
from repro.dasklike.scheduler import SchedulerTaskState
from repro.dasklike.worker import DataLostError
from repro.faults import FaultSchedule, FaultSpec
from repro.sim import Interrupt
from repro.workflows import ResNet152Workflow

from tests.helpers import make_wms

MB = 2**20


def make_cluster(**config_kwargs):
    config = DaskConfig(work_stealing=False, gc_base_rate=0.0,
                        gc_pressure_rate=0.0, **config_kwargs)
    env, cluster, dask, client, job = make_wms(config=config)
    return env, dask


def register_dep(sched, key, holders, nbytes):
    """A completed dependency the scheduler knows about."""
    ts = SchedulerTaskState(
        spec=TaskSpec(key=key, output_nbytes=nbytes),
        state="memory", nbytes=nbytes)
    for holder in holders:
        ts.who_has[holder.address] = holder
        holder.data[key] = nbytes
        holder.managed_bytes += nbytes
    sched.tasks[key] = ts
    return ts


def remote_workers(dask, fetcher, n):
    """``n`` live workers on nodes other than the fetcher's (so every
    fetch is a real cross-node transfer that takes simulated time)."""
    out = [w for w in dask.workers if w.node.name != fetcher.node.name]
    assert len(out) >= n
    return out[:n]


class TestStaleWhoHasRefresh:
    def test_refresh_filters_failed_holders(self):
        """Every snapshot source is dead; the refresh must pick the
        scheduler's *live* replica, never the dead one it also lists."""
        env, dask = make_cluster()
        fetcher = dask.workers[0]
        dead, live = remote_workers(dask, fetcher, 2)
        register_dep(dask.scheduler, "dep-stale", [dead, live], 8 * MB)
        dead.fail()  # silent: still listed in who_has

        proc = env.process(fetcher._fetch_one("dep-stale", [dead], 8 * MB))
        done = env.run(until=proc)
        assert done is True
        assert fetcher.data["dep-stale"] == 8 * MB
        (record,) = fetcher.comms
        assert record.src_worker == live.address

    def test_all_holders_dead_returns_false_not_forever(self):
        env, dask = make_cluster()
        fetcher = dask.workers[0]
        dead, also_dead = remote_workers(dask, fetcher, 2)
        register_dep(dask.scheduler, "dep-gone", [dead, also_dead], MB)
        dead.fail()
        also_dead.fail()

        proc = env.process(fetcher._fetch_one("dep-gone", [dead], MB))
        done = env.run(until=proc)
        assert done is False
        assert "dep-gone" not in fetcher.data
        assert fetcher.comms == []

    def test_source_death_mid_transfer_retries_cleanly(self):
        """The source dies while bytes are in flight: the attempt is
        dropped (no comm record, no accounting) and the fetch retries
        against the surviving holder."""
        env, dask = make_cluster()
        fetcher = dask.workers[0]
        doomed, survivor = remote_workers(dask, fetcher, 2)
        register_dep(dask.scheduler, "dep-cut", [doomed, survivor],
                     64 * MB)

        proc = env.process(
            fetcher._fetch_one("dep-cut", [doomed, survivor], 64 * MB))
        env.run(until=env.timeout(1e-3))  # transfer is in flight
        assert not proc.triggered
        doomed.fail()
        done = env.run(until=proc)
        assert done is True
        # Exactly one comm record — from the survivor, none from the
        # corpse — and the bytes are accounted exactly once.
        (record,) = fetcher.comms
        assert record.src_worker == survivor.address
        assert fetcher.managed_bytes == 64 * MB


class TestSharedInflightWaiters:
    def _gather_driver(self, env, worker, spec, who_has, sizes, box):
        """Mirrors compute_task's gather stanza: the waiter (not the
        shared fetch) is what a release/steal interrupts."""
        try:
            yield env.process(worker._gather(spec, who_has, sizes))
            box[spec.name] = "ok"
        except Interrupt:
            box[spec.name] = "released"
        except DataLostError:
            box[spec.name] = "data-lost"

    def test_release_mid_gather_leaves_other_waiters_whole(self):
        """Two tasks share one in-flight fetch; the initiating gather is
        interrupted (task released/stolen).  The surviving waiter must
        get the data, not a phantom dependency-lost error."""
        env, dask = make_cluster()
        fetcher = dask.workers[0]
        (holder,) = remote_workers(dask, fetcher, 1)
        register_dep(dask.scheduler, "dep-shared", [holder], 64 * MB)
        who_has = {"dep-shared": [holder]}
        sizes = {"dep-shared": 64 * MB}
        spec_a = TaskSpec(key="task-a", deps=("dep-shared",))
        spec_b = TaskSpec(key="task-b", deps=("dep-shared",))

        outcome = {}
        driver_a = env.process(self._gather_driver(
            env, fetcher, spec_a, who_has, sizes, outcome))
        driver_b = env.process(self._gather_driver(
            env, fetcher, spec_b, who_has, sizes, outcome))
        env.run(until=env.timeout(1e-3))  # both joined the same fetch
        assert "dep-shared" in fetcher._inflight_fetch
        driver_a.interrupt("release")
        env.run(until=driver_b)
        assert outcome == {"task-a": "released", "task-b": "ok"}
        assert fetcher.data["dep-shared"] == 64 * MB

    def test_true_loss_surfaces_per_waiter_without_crashing(self):
        """When the data really is gone, each waiter raises its own
        reschedulable DataLostError — the shared fetch process itself
        never fails (an unhandled process failure would kill the
        engine)."""
        env, dask = make_cluster()
        fetcher = dask.workers[0]
        (holder,) = remote_workers(dask, fetcher, 1)
        register_dep(dask.scheduler, "dep-doomed", [holder], 64 * MB)
        who_has = {"dep-doomed": [holder]}
        sizes = {"dep-doomed": 64 * MB}

        outcome = {}
        drivers = [
            env.process(self._gather_driver(
                env, fetcher, TaskSpec(key=key, deps=("dep-doomed",)),
                who_has, sizes, outcome))
            for key in ("task-c", "task-d")
        ]
        env.run(until=env.timeout(1e-3))
        holder.fail()
        dask.scheduler.tasks["dep-doomed"].who_has.clear()
        for driver in drivers:
            env.run(until=driver)
        assert outcome == {"task-c": "data-lost", "task-d": "data-lost"}
        assert "dep-doomed" not in fetcher.data


class TestDestinationCrashMidTransfer:
    def test_no_accounting_resurrected_on_a_corpse(self):
        """The *fetching* worker dies mid-transfer.  fail() zeroed its
        accounting; the landing bytes must not bring any of it back."""
        env, dask = make_cluster()
        fetcher = dask.workers[0]
        (holder,) = remote_workers(dask, fetcher, 1)
        dep_ts = register_dep(dask.scheduler, "dep-late", [holder],
                              64 * MB)

        proc = env.process(
            fetcher._fetch_one("dep-late", [holder], 64 * MB))
        env.run(until=env.timeout(1e-3))
        assert not proc.triggered
        fetcher.fail()
        done = env.run(until=proc)
        assert done is False
        assert fetcher.managed_bytes == 0
        assert fetcher.data == {}
        assert fetcher.comms == []
        # No corpse replica registered with the scheduler either.
        assert fetcher.address not in dep_ts.who_has

    def test_crash_mid_unspill_keeps_accounting_zero(self):
        env, dask = make_cluster()
        worker = dask.workers[0]
        worker.spilled["dep-scratch"] = 64 * MB

        proc = env.process(worker.unspill("dep-scratch"))
        env.run(until=env.timeout(1e-3))
        worker.fail()
        env.run(until=proc)
        assert worker.managed_bytes == 0
        assert "dep-scratch" not in worker.data
        assert worker.spill_events == []

    def test_crash_mid_execute_never_goes_negative(self):
        """compute_task reserves output bytes at execution start and
        rolls the reservation back on a non-materialised exit — unless
        the worker died, in which case fail() already zeroed the books
        and a second subtraction would leak a negative balance."""
        env, dask = make_cluster()
        worker = dask.workers[0]
        spec = TaskSpec(key="task-heavy", compute_time=1.0,
                        output_nbytes=32 * MB)

        proc = env.process(worker.compute_task(spec, {}, {}, 0))
        env.run(until=env.timeout(0.5))  # mid-execution
        assert worker.managed_bytes == 32 * MB  # reservation in place
        worker.fail()
        done = env.run(until=proc)
        assert done is False
        assert worker.managed_bytes == 0

    def test_injected_crash_leaves_no_corpse_accounting(self):
        """End-to-end via the fault injector: a worker_crash fired while
        ResNet152's model broadcast is in flight must leave the corpse
        with zeroed books, no post-mortem comm records, and no replica
        registrations — and the run must still converge."""
        from repro.faults import FaultInjector
        from tests.helpers import make_instrumented

        env, cluster, run = make_instrumented(
            seed=11, worker_nodes=2, workers_per_node=4, threads=8)
        injector = FaultInjector(
            FaultSchedule([FaultSpec("worker_crash", 0.7)]),
            cluster.streams)
        injector.attach(run)
        workflow = ResNet152Workflow(scale=0.03)
        workflow.prepare(cluster, cluster.streams)
        client = run.client()

        def main():
            yield env.process(client.connect())
            yield env.process(workflow.driver(env, client, cluster))
            yield env.process(run.drain())

        env.run(until=env.process(main()))
        (record,) = injector.records
        assert record["fired"] is True
        dead = next(w for w in run.dask.workers
                    if w.address == record["worker"])
        assert dead.failed
        assert dead.managed_bytes == 0
        assert dead.data == {} and dead.spilled == {}
        # No transfer completed *into* the corpse after the crash, and
        # the scheduler holds no replica claims on it.
        assert all(c.stop <= record["time"] for c in dead.comms)
        for ts in run.dask.scheduler.tasks.values():
            assert dead.address not in ts.who_has
