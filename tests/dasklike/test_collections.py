"""Tests for the delayed/array/dataframe graph builders."""

import pytest

from repro.dasklike import (
    IOOp,
    collect,
    delayed,
    imread,
    read_parquet,
)
from repro.dasklike.states import key_split


class TestDelayed:
    def test_chain_builds_graph(self):
        load = delayed("load", compute_time=0.1, output_nbytes=100,
                       reads=(IOOp("/img", "read", 0, 100),))
        transform = delayed("transform", compute_time=0.2,
                            output_nbytes=50, deps=(load,))
        predict = delayed("predict", compute_time=0.3, output_nbytes=10,
                          deps=(transform,))
        graph = collect([predict])
        assert len(graph) == 3
        graph.validate()

    def test_shared_dependency_deduplicated(self):
        base = delayed("base", output_nbytes=10)
        left = delayed("left", deps=(base,))
        right = delayed("right", deps=(base,))
        graph = collect([left, right])
        assert len(graph) == 3

    def test_index_produces_tuple_keys(self):
        nodes = [delayed("load", index=i, output_nbytes=1) for i in range(3)]
        keys = {n.key for n in nodes}
        assert len(keys) == 3
        assert all(isinstance(k, tuple) for k in keys)

    def test_stable_tokens(self):
        a1 = delayed("op", compute_time=1.0, output_nbytes=5)
        a2 = delayed("op", compute_time=1.0, output_nbytes=5)
        assert a1.key == a2.key

    def test_external_deps(self):
        node = delayed("use", external_deps=("old-key",))
        spec = node.to_spec()
        assert "old-key" in spec.deps


class TestImread:
    def test_one_block_per_image(self):
        arr = imread(["/a.tif", "/b.tif"], [80 * 2**20, 80 * 2**20])
        assert arr.nblocks == 2
        assert arr.nbytes == 160 * 2**20

    def test_read_ops_are_4mb(self):
        arr = imread(["/a.tif"], [80 * 2**20])
        (spec,) = arr.pending.values()
        assert len(spec.reads) == 20
        assert all(op.length == 4 * 2**20 for op in spec.reads)
        # Sequential, contiguous coverage of the file.
        offsets = [op.offset for op in spec.reads]
        assert offsets == sorted(offsets)
        assert sum(op.length for op in spec.reads) == 80 * 2**20

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            imread(["/a"], [1, 2])


class TestBlockedArrayOps:
    def make(self):
        return imread([f"/img{i}.tif" for i in range(4)],
                      [8 * 2**20] * 4)

    def test_map_blocks_chains_deps(self):
        arr = self.make()
        out = arr.map_blocks("normalize", 0.05)
        assert out.nblocks == 4
        graph = out.graph()
        assert len(graph) == 8  # 4 reads + 4 normalize
        graph.validate()

    def test_output_ratio_shrinks_blocks(self):
        out = self.make().map_blocks("grayscale", 0.01, output_ratio=1 / 3)
        assert all(b == (8 * 2**20) // 3 for b in out.block_nbytes)

    def test_map_overlap_adds_neighbor_edges(self):
        out = self.make().map_overlap("gaussian_filter", 0.02, depth=1)
        specs = [s for s in out.pending.values()
                 if s.prefix == "gaussian_filter"]
        middle = [s for s in specs if len(s.deps) == 3]
        edges = [s for s in specs if len(s.deps) == 2]
        assert len(middle) == 2 and len(edges) == 2

    def test_save_writes_in_slices(self):
        arr = self.make().map_blocks("segment", 0.01, output_ratio=0.001)
        out = arr.save("imsave", [f"/out{i}.png" for i in range(4)],
                       write_op_nbytes=2048)
        saves = [s for s in out.pending.values() if s.prefix == "imsave"]
        assert len(saves) == 4
        for s in saves:
            assert all(op.op == "write" for op in s.writes)
            assert sum(op.length for op in s.writes) == (8 * 2**20) // 1000

    def test_save_path_count_mismatch(self):
        with pytest.raises(ValueError):
            self.make().save("imsave", ["/only-one.png"])

    def test_tree_reduce_to_single_block(self):
        arr = imread([f"/i{i}" for i in range(16)], [1024] * 16)
        out = arr.tree_reduce("stats", fanin=4)
        assert out.nblocks == 1
        graph = out.graph()
        # 16 reads + 4 level-0 reducers + 1 level-1 reducer
        assert len(graph) == 21
        graph.validate()

    def test_mark_computed_clears_pending(self):
        arr = self.make()
        arr.mark_computed()
        next_stage = arr.map_blocks("normalize", 0.01)
        graph = next_stage.graph()
        assert len(graph) == 4  # only the new stage
        graph.validate(allow_external=True)
        with pytest.raises(Exception):
            graph.validate(allow_external=False)


class TestReadParquet:
    def test_partition_layout(self):
        frame = read_parquet(["/p0.parquet", "/p1.parquet"],
                             [512 * 2**20, 512 * 2**20],
                             partitions_per_file=2)
        assert frame.npartitions == 4
        specs = list(frame.pending.values())
        assert all(s.prefix == "read_parquet" for s in specs)

    def test_in_memory_inflation(self):
        frame = read_parquet(["/p.parquet"], [100 * 2**20],
                             partitions_per_file=1, in_memory_ratio=1.6)
        assert frame.block_nbytes[0] == int(100 * 2**20 * 1.6)

    def test_fusion_produces_paper_category(self):
        from repro.dasklike import fuse_linear_chains
        frame = read_parquet(["/p.parquet"], [256 * 2**20],
                             partitions_per_file=2)
        assigned = frame.assign()
        fused = fuse_linear_chains(assigned.graph())
        prefixes = {s.prefix for s in fused.tasks.values()}
        assert prefixes == {"read_parquet-fused-assign"}

    def test_getitem_and_split_categories(self):
        frame = read_parquet(["/p.parquet"], [64 * 2**20],
                             partitions_per_file=2)
        frame.mark_computed()
        projected = frame.getitem(0.5)
        train, test = projected.random_split(0.8)
        prefixes = {s.prefix for s in train.pending.values()}
        assert "getitem" in prefixes
        assert "random_split_take" in prefixes
        assert train.block_nbytes[0] > test.block_nbytes[0]

    def test_getitem_fraction_validated(self):
        frame = read_parquet(["/p"], [1024], partitions_per_file=1)
        with pytest.raises(ValueError):
            frame.getitem(0.0)
        with pytest.raises(ValueError):
            frame.random_split(1.5)

    def test_reads_cover_each_partition(self):
        frame = read_parquet(["/p"], [90 * 2**20], partitions_per_file=3,
                             read_ops_per_partition=3)
        for spec in frame.pending.values():
            assert 1 <= len(spec.reads) <= 4
        covered = sum(op.length for s in frame.pending.values()
                      for op in s.reads)
        assert covered == 90 * 2**20
