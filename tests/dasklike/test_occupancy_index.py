"""Unit tests for the occupancy-ordered worker index.

The index answers the two placement queries (`least_occupied`,
`busiest_stealable`) from lazy heaps; these tests pin its maintenance
behaviour under occupancy updates, worker failure/removal, steal-driven
adjustments, and external writes to the shared occupancy mapping.
"""

from repro.dasklike.scheduler_state import OccupancyIndex


class StubWorker:
    def __init__(self, address):
        self.address = address
        self.failed = False
        self.ready = {}

    def __repr__(self):
        return f"<StubWorker {self.address}>"


def make_index(n=4):
    occupancy = {}
    index = OccupancyIndex(occupancy)
    workers = []
    for i in range(n):
        worker = StubWorker(f"10.0.0.{i}:4000")
        occupancy[worker.address] = 0.0
        index.add(worker.address, worker)
        workers.append(worker)
    return occupancy, index, workers


class TestLeastOccupied:
    def test_ties_break_by_registration_order(self):
        occupancy, index, workers = make_index()
        assert index.least_occupied() is workers[0]

    def test_tracks_occupancy_updates(self):
        occupancy, index, workers = make_index()
        for worker in workers:
            occupancy[worker.address] = 5.0
            index.update(worker.address, 5.0)
        occupancy[workers[2].address] = 0.5
        index.update(workers[2].address, 0.5)
        assert index.least_occupied() is workers[2]
        # Raising it again moves the answer back to the first-registered.
        occupancy[workers[2].address] = 9.0
        index.update(workers[2].address, 9.0)
        assert index.least_occupied() is workers[0]

    def test_exclude_holders(self):
        occupancy, index, workers = make_index()
        excluded = {workers[0].address, workers[1].address}
        assert index.least_occupied(exclude=excluded) is workers[2]
        # The excluded entries survive for later unrestricted queries.
        assert index.least_occupied() is workers[0]

    def test_skips_failed_unless_allowed(self):
        occupancy, index, workers = make_index(n=2)
        workers[0].failed = True
        assert index.least_occupied() is workers[1]
        workers[1].failed = True
        assert index.least_occupied() is None
        assert index.least_occupied(allow_failed=True) is workers[0]

    def test_removed_worker_never_returned(self):
        occupancy, index, workers = make_index(n=2)
        occupancy.pop(workers[0].address)
        index.remove(workers[0].address)
        assert index.least_occupied() is workers[1]
        assert len(index) == 1
        assert workers[0].address not in index

    def test_reregistration_moves_to_back_of_tie_order(self):
        occupancy, index, workers = make_index(n=3)
        occupancy.pop(workers[0].address)
        index.remove(workers[0].address)
        occupancy[workers[0].address] = 0.0
        index.add(workers[0].address, workers[0])
        # All at 0.0: the re-added worker now loses the tie.
        assert index.least_occupied() is workers[1]

    def test_external_occupancy_writes_only_stale_the_heap(self):
        # Tests (and recovery paths) poke scheduler.occupancy directly;
        # the index must recover by rebuilding from the shared mapping.
        occupancy, index, workers = make_index()
        for worker in workers:
            occupancy[worker.address] = 5.0  # no index.update() calls
        occupancy[workers[3].address] = 0.25
        assert index.least_occupied() is workers[3]


class TestBusiestStealable:
    def test_requires_ready_flag_and_queue(self):
        occupancy, index, workers = make_index()
        assert index.busiest_stealable() is None
        workers[1].ready["t1"] = object()
        index.set_stealable(workers[1].address, True)
        assert index.busiest_stealable() is workers[1]

    def test_orders_by_occupancy_then_late_registration(self):
        occupancy, index, workers = make_index()
        for worker in workers:
            worker.ready["t"] = object()
            index.set_stealable(worker.address, True)
        for worker, occ in zip(workers, (1.0, 3.0, 3.0, 2.0)):
            occupancy[worker.address] = occ
            index.update(worker.address, occ)
        # Equal occupancies: the later-registered worker wins (matches
        # the old sort-then-reverse victim scan).
        assert index.busiest_stealable() is workers[2]
        assert index.busiest_stealable(
            exclude=(workers[2].address,)) is workers[1]

    def test_steal_adjustments_reorder_candidates(self):
        occupancy, index, workers = make_index(n=2)
        for worker, occ in zip(workers, (4.0, 1.0)):
            worker.ready["t"] = object()
            index.set_stealable(worker.address, True)
            occupancy[worker.address] = occ
            index.update(worker.address, occ)
        assert index.busiest_stealable() is workers[0]
        # A steal moves estimate from victim to thief.
        for worker, occ in zip(workers, (1.5, 3.5)):
            occupancy[worker.address] = occ
            index.update(worker.address, occ)
        assert index.busiest_stealable() is workers[1]

    def test_emptied_queue_drops_candidate(self):
        occupancy, index, workers = make_index(n=2)
        workers[0].ready["t"] = object()
        index.set_stealable(workers[0].address, True)
        index.set_stealable(workers[0].address, False)
        assert index.busiest_stealable() is None

    def test_failed_worker_never_a_victim(self):
        occupancy, index, workers = make_index(n=2)
        for worker in workers:
            worker.ready["t"] = object()
            index.set_stealable(worker.address, True)
        workers[0].failed = True
        occupancy[workers[0].address] = 99.0
        index.update(workers[0].address, 99.0)
        assert index.busiest_stealable() is workers[1]

    def test_desynced_ready_flag_self_heals(self):
        occupancy, index, workers = make_index(n=1)
        workers[0].ready["t"] = object()
        index.set_stealable(workers[0].address, True)
        workers[0].ready.clear()  # mutation without a notification
        assert index.busiest_stealable() is None
        # The stale flag was dropped: re-announcing works again.
        workers[0].ready["t2"] = object()
        index.set_stealable(workers[0].address, True)
        assert index.busiest_stealable() is workers[0]


class TestCompaction:
    def test_heaps_stay_bounded_under_churn(self):
        occupancy, index, workers = make_index(n=8)
        for worker in workers:
            worker.ready["t"] = object()
            index.set_stealable(worker.address, True)
        for round_index in range(2000):
            worker = workers[round_index % len(workers)]
            occ = float(round_index % 17)
            occupancy[worker.address] = occ
            index.update(worker.address, occ)
        assert len(index._idle_heap) <= 64 + 8 * len(index) + 1
        assert len(index._busy_heap) <= 64 + 8 * len(workers) + 1
        # And the answers are still exact.
        best = index.least_occupied()
        lowest = min(occupancy.values())
        assert occupancy[best.address] == lowest
