"""Failure-injection tests: the erred path of the task state machine."""

import pytest

from repro.dasklike import IOOp, TaskGraph, TaskSpec

from tests.helpers import make_wms


def failing_graph(token="bad00001"):
    """A task reading a nonexistent file, with dependents behind it."""
    return TaskGraph([
        TaskSpec(key=f"good-{token}", compute_time=0.05, output_nbytes=10),
        TaskSpec(key=f"broken-{token}",
                 reads=(IOOp("/lus/does-not-exist.bin", "read", 0, 1024),),
                 compute_time=0.01, output_nbytes=10),
        TaskSpec(key=f"dependent-{token}",
                 deps=(f"broken-{token}", f"good-{token}"),
                 compute_time=0.01, output_nbytes=1),
    ])


def run_failing(env, client, graph):
    errors = []

    def driver():
        yield env.process(client.connect())
        try:
            yield env.process(client.compute(graph, optimize=False))
        except FileNotFoundError as exc:
            errors.append(exc)
        # The client fails fast; healthy in-flight tasks keep running.
        # Linger so the cluster can settle before assertions.
        yield env.timeout(5.0)

    env.run(until=env.process(driver()))
    return errors


def test_client_sees_the_original_exception():
    env, cluster, dask, client, job = make_wms()
    errors = run_failing(env, client, failing_graph())
    assert len(errors) == 1
    assert "does-not-exist" in str(errors[0])


def test_failing_task_transitions_to_erred():
    env, cluster, dask, client, job = make_wms()
    run_failing(env, client, failing_graph())
    ts = dask.scheduler.tasks["broken-bad00001"]
    assert ts.state == "erred"
    erred = [t for t in dask.scheduler.transitions
             if t.key == "broken-bad00001" and t.finish_state == "erred"]
    assert len(erred) == 1
    assert erred[0].stimulus == "task-erred"


def test_dependents_poisoned_transitively():
    env, cluster, dask, client, job = make_wms()
    run_failing(env, client, failing_graph())
    dep = dask.scheduler.tasks["dependent-bad00001"]
    assert dep.state == "erred"
    upstream = [t for t in dask.scheduler.transitions
                if t.key == "dependent-bad00001"
                and t.stimulus == "upstream-erred"]
    assert upstream


def test_independent_tasks_still_complete():
    env, cluster, dask, client, job = make_wms()
    run_failing(env, client, failing_graph())
    good = dask.scheduler.tasks["good-bad00001"]
    assert good.state in ("memory", "released", "forgotten")
    runs = {r.key for r in dask.all_task_runs()}
    assert "good-bad00001" in runs
    assert "dependent-bad00001" not in runs


def test_worker_logs_the_failure():
    env, cluster, dask, client, job = make_wms()
    run_failing(env, client, failing_graph())
    errors = [e for e in dask.all_logs() if e.level == "ERROR"]
    assert any("Compute Failed" in e.message for e in errors)
    assert any("marked as failed" in e.message
               for e in dask.scheduler.logs)


def test_occupancy_recovers_after_failure():
    env, cluster, dask, client, job = make_wms()
    run_failing(env, client, failing_graph())
    for occ in dask.scheduler.occupancy.values():
        assert occ < 0.01


def test_thread_pool_not_leaked_by_failures():
    """Repeated failures must return their threads to the pool."""
    env, cluster, dask, client, job = make_wms(threads=2)
    graphs = [failing_graph(token=f"bad{k:05d}") for k in range(4)]
    errors = []

    def driver():
        yield env.process(client.connect())
        for graph in graphs:
            try:
                yield env.process(client.compute(graph, optimize=False))
            except FileNotFoundError as exc:
                errors.append(exc)

    env.run(until=env.process(driver()))
    assert len(errors) == 4
    for worker in dask.workers:
        assert len(worker.threads.items) == worker.nthreads
        assert worker.executing == set()


def test_memory_reservation_rolled_back_on_failure():
    env, cluster, dask, client, job = make_wms()
    run_failing(env, client, failing_graph())
    for worker in dask.workers:
        # good task's output may remain (released after gather); the
        # broken/dependent outputs must not be charged.
        assert worker.managed_bytes <= 20
