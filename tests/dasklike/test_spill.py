"""Tests for worker spill-to-disk memory management."""

import pytest

from repro.dasklike import DaskConfig, TaskGraph, TaskSpec

from tests.helpers import make_wms, run_graphs


def big_output_graph(n=12, nbytes=16 * 2**20, token="51111111"):
    """Independent producers with large pinned outputs + a consumer."""
    tasks = [
        TaskSpec(key=(f"produce-{token}", i), compute_time=0.05,
                 output_nbytes=nbytes)
        for i in range(n)
    ]
    tasks.append(TaskSpec(
        key=f"consume-{token}",
        deps=tuple((f"produce-{token}", i) for i in range(n)),
        compute_time=0.05, output_nbytes=8,
    ))
    return TaskGraph(tasks)


def spill_config(limit=64 * 2**20, target=0.6):
    return DaskConfig(
        memory_limit=limit,
        memory_spill_fraction=target,
        memory_spill_low=0.4,
        # Keep stealing quiet so placements stay put for assertions.
        work_stealing=False,
        gc_base_rate=0.0, gc_pressure_rate=0.0,
    )


def test_spill_events_occur_under_pressure():
    env, cluster, dask, client, job = make_wms(
        config=spill_config(), worker_nodes=1, workers_per_node=1,
        threads=4)
    run_graphs(env, client, big_output_graph(), optimize=False)
    worker = dask.workers[0]
    spills = [e for e in worker.spill_events if e.direction == "spill"]
    assert spills, "expected spills under memory pressure"


def test_memory_kept_below_limit_after_spills():
    env, cluster, dask, client, job = make_wms(
        config=spill_config(), worker_nodes=1, workers_per_node=1,
        threads=2)
    run_graphs(env, client, big_output_graph(), optimize=False)
    worker = dask.workers[0]
    # After the run: in-memory bytes match the data map exactly.
    assert worker.managed_bytes == sum(worker.data.values())


def test_unspill_round_trip_preserves_results():
    """Spilled dependencies are read back and the consumer completes."""
    env, cluster, dask, client, job = make_wms(
        config=spill_config(), worker_nodes=1, workers_per_node=1,
        threads=2)
    results = run_graphs(env, client, big_output_graph(), optimize=False)
    (index, values), = results
    assert values["consume-51111111"] == 8
    worker = dask.workers[0]
    unspills = [e for e in worker.spill_events
                if e.direction == "unspill"]
    assert unspills, "the consumer must have read spilled inputs back"


def test_spilling_disabled_by_default():
    env, cluster, dask, client, job = make_wms(
        worker_nodes=1, workers_per_node=1, threads=4)
    run_graphs(env, client, big_output_graph(token="52222222"),
               optimize=False)
    assert all(not w.spill_events for w in dask.workers)


def test_spill_accounting_consistent():
    env, cluster, dask, client, job = make_wms(
        config=spill_config(), worker_nodes=1, workers_per_node=1,
        threads=2)
    run_graphs(env, client, big_output_graph(token="53333333"),
               optimize=False)
    worker = dask.workers[0]
    # No key is simultaneously in memory and on scratch.
    assert not (set(worker.data) & set(worker.spilled))
    # Every spill of a key precedes its unspill.
    last_dir = {}
    for event in worker.spill_events:
        if event.direction == "unspill":
            assert last_dir.get(event.key) == "spill"
        last_dir[event.key] = event.direction


def test_free_keys_clears_scratch_too():
    env, cluster, dask, client, job = make_wms(
        config=spill_config(), worker_nodes=1, workers_per_node=1,
        threads=2)
    run_graphs(env, client, big_output_graph(token="54444444"),
               optimize=False)
    worker = dask.workers[0]
    # The producers were released after the consumer ran; their copies
    # must be gone from both tiers.
    leftover = [k for k in list(worker.data) + list(worker.spilled)
                if "produce" in k]
    assert leftover == []
