"""Tests for client semantics: persist/release, logs, graph indices."""

import pytest

from repro.dasklike import TaskGraph, TaskSpec

from tests.helpers import make_wms


def simple_graph(token, nbytes=1024):
    return TaskGraph([
        TaskSpec(key=(f"work-{token}", i), compute_time=0.02,
                 output_nbytes=nbytes)
        for i in range(4)
    ])


def drive(env, steps):
    out = []

    def driver():
        for step in steps:
            value = yield env.process(step())
            out.append(value)

    env.run(until=env.process(driver()))
    return out


class TestPersistRelease:
    def test_persist_keeps_keys_in_memory(self):
        env, cluster, dask, client, job = make_wms()
        graph = simple_graph("aa0001ff")
        (index, results), = drive(env, [
            lambda: client.persist(graph, optimize=False)])
        for name in results:
            assert dask.scheduler.tasks[name].state == "memory"
        total = sum(sum(w.data.values()) for w in dask.workers)
        assert total == 4 * 1024

    def test_release_frees_memory(self):
        env, cluster, dask, client, job = make_wms()
        graph = simple_graph("bb0002ff")
        (index, results), = drive(env, [
            lambda: client.persist(graph, optimize=False)])
        client.release(list(results))
        for name in results:
            assert dask.scheduler.tasks[name].state == "forgotten"
        assert all(not w.data for w in dask.workers)

    def test_compute_equals_persist_plus_release(self):
        env, cluster, dask, client, job = make_wms()
        graph = simple_graph("cc0003ff")
        (index, results), = drive(env, [
            lambda: client.compute(graph, optimize=False)])
        assert len(results) == 4
        assert all(not w.data for w in dask.workers)

    def test_release_unknown_keys_is_noop(self):
        env, cluster, dask, client, job = make_wms()
        client.release(["never-existed"])  # must not raise

    def test_double_release_is_idempotent(self):
        env, cluster, dask, client, job = make_wms()
        graph = simple_graph("dd0004ff")
        (index, results), = drive(env, [
            lambda: client.persist(graph, optimize=False)])
        client.release(list(results))
        client.release(list(results))


class TestClientBookkeeping:
    def test_graph_indices_accumulate(self):
        env, cluster, dask, client, job = make_wms()
        drive(env, [
            lambda: client.compute(simple_graph("ee0005ff"),
                                   optimize=False),
            lambda: client.compute(simple_graph("ff0006ff"),
                                   optimize=False),
        ])
        assert client.graph_indices == [0, 1]

    def test_explicit_wanted_subset(self):
        env, cluster, dask, client, job = make_wms()
        graph = simple_graph("ab0007ff")
        wanted = [graph.keys()[0]]
        (index, results), = drive(env, [
            lambda: client.persist(graph, optimize=False, wanted=wanted)])
        assert list(results) == wanted
        # Unwanted siblings were freed once nothing needed them.
        for name in graph.keys()[1:]:
            assert dask.scheduler.tasks[name].state == "forgotten"

    def test_client_logs_submission_and_gather(self):
        env, cluster, dask, client, job = make_wms()
        drive(env, [
            lambda: client.compute(simple_graph("ba0008ff"),
                                   optimize=False)])
        messages = [e.message for e in client.logs]
        assert any("Submitted graph" in m for m in messages)
        assert any("Gathered" in m for m in messages)

    def test_submission_cost_scales_with_graph_size(self):
        env, cluster, dask, client, job = make_wms()
        t0 = env.now
        drive(env, [lambda: client.compute(
            simple_graph("ca0009ff"), optimize=False)])
        small = env.now - t0
        env2, cluster2, dask2, client2, job2 = make_wms()
        big = TaskGraph([
            TaskSpec(key=("many-da000aff", i), compute_time=0.0,
                     output_nbytes=1)
            for i in range(400)
        ])
        t0 = env2.now
        drive(env2, [lambda: client2.compute(big, optimize=False)])
        large = env2.now - t0
        assert large > small  # graph build cost is per-task
