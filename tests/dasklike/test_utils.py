"""Tests for WMS utility helpers."""

import pytest

from repro.dasklike.utils import format_bytes, tokenize


class TestTokenize:
    def test_deterministic(self):
        assert tokenize("a", 1, [2, 3]) == tokenize("a", 1, [2, 3])

    def test_distinct_inputs_distinct_tokens(self):
        assert tokenize("a") != tokenize("b")
        assert tokenize("a", 1) != tokenize("a", 2)

    def test_eight_hex_chars(self):
        token = tokenize("anything")
        assert len(token) == 8
        assert all(c in "0123456789abcdef" for c in token)

    def test_separator_prevents_concat_collisions(self):
        assert tokenize("ab", "c") != tokenize("a", "bc")


class TestFormatBytes:
    @pytest.mark.parametrize("n,expected", [
        (0, "0 B"),
        (512, "512 B"),
        (2048, "2.00 KiB"),
        (5 * 2**20, "5.00 MiB"),
        (int(1.5 * 2**30), "1.50 GiB"),
        (3 * 2**40, "3.00 TiB"),
    ])
    def test_rendering(self, n, expected):
        assert format_bytes(n) == expected
