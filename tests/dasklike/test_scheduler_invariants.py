"""End-to-end scheduler invariants over randomized workloads.

These are property-style integration tests: random DAGs run through the
full client/scheduler/worker stack, and structural invariants that must
hold for *any* workload are checked — exactly-once execution, legal
transition sequences, conservation of transferred bytes, and complete
release of unpinned memory.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dasklike import DaskConfig, TaskGraph, TaskSpec
from repro.dasklike.states import SCHEDULER_TRANSITIONS

from tests.helpers import make_wms, run_graphs


@st.composite
def workload(draw):
    n = draw(st.integers(3, 30))
    tasks = []
    for i in range(n):
        if i == 0:
            deps = ()
        else:
            n_deps = draw(st.integers(0, min(i, 3)))
            deps = tuple(
                ("t-cafe0000", j) for j in sorted(
                    draw(st.lists(st.integers(0, i - 1),
                                  min_size=n_deps, max_size=n_deps,
                                  unique=True)))
            )
        tasks.append(TaskSpec(
            key=("t-cafe0000", i),
            deps=deps,
            compute_time=draw(st.floats(0.0, 0.3)),
            output_nbytes=draw(st.integers(0, 4 * 2**20)),
        ))
    return TaskGraph(tasks)


def run_workload(graph, seed=0, stealing=True):
    config = DaskConfig(work_stealing=stealing,
                        gc_base_rate=0.0, gc_pressure_rate=0.0)
    env, cluster, dask, client, job = make_wms(seed=seed, config=config)
    run_graphs(env, client, graph, optimize=False)
    return dask


@given(workload(), st.integers(0, 3))
@settings(max_examples=15, deadline=None)
def test_every_task_completes_exactly_once(graph, seed):
    dask = run_workload(graph, seed=seed)
    runs = [r.key for r in dask.all_task_runs()]
    assert sorted(runs) == sorted(graph.keys())


@given(workload(), st.integers(0, 3))
@settings(max_examples=10, deadline=None)
def test_scheduler_transitions_always_legal(graph, seed):
    dask = run_workload(graph, seed=seed)
    per_key: dict = {}
    for t in dask.scheduler.transitions:
        assert (t.start_state, t.finish_state) in SCHEDULER_TRANSITIONS
        per_key.setdefault(t.key, []).append(t)
    for key, transitions in per_key.items():
        # Consecutive transitions chain states.
        for a, b in zip(transitions, transitions[1:]):
            assert a.finish_state == b.start_state, \
                f"{key}: {a.finish_state} then {b.start_state}"
        # Timestamps never go backwards.
        times = [t.timestamp for t in transitions]
        assert times == sorted(times)


@given(workload())
@settings(max_examples=10, deadline=None)
def test_transferred_bytes_match_dependency_sizes(graph):
    dask = run_workload(graph)
    sizes = {name: spec.output_nbytes
             for name, spec in graph.tasks.items()}
    for comm in dask.all_comms():
        assert comm.nbytes == sizes[comm.key]
        assert comm.duration >= 0


@given(workload())
@settings(max_examples=10, deadline=None)
def test_all_memory_released_after_gather(graph):
    dask = run_workload(graph)
    # Client gathered and released everything: workers hold nothing.
    for worker in dask.workers:
        assert worker.data == {}, worker.data
        assert worker.managed_bytes == 0
        assert worker.spilled == {}


@given(workload(), st.booleans())
@settings(max_examples=10, deadline=None)
def test_stealing_never_changes_results(graph, stealing):
    dask = run_workload(graph, stealing=stealing)
    runs = [r.key for r in dask.all_task_runs()]
    assert sorted(runs) == sorted(graph.keys())
    # Memory transitions: exactly one per key.
    memory = [t for t in dask.scheduler.transitions
              if t.finish_state == "memory"]
    assert len(memory) == len(graph)


def test_occupancy_total_tracks_increments_and_resyncs_exactly():
    """The incremental ``_occupancy_total`` must stay within float
    tolerance of the recomputed sum under randomized adjustments, and
    snap back to *exact* equality at every membership resync point
    (worker add/remove), so rounding drift can never accumulate across
    the life of a long-running scheduler."""
    env, cluster, dask, client, job = make_wms(
        config=DaskConfig(work_stealing=False,
                          gc_base_rate=0.0, gc_pressure_rate=0.0))
    sched = dask.scheduler
    rng = np.random.RandomState(42)
    addresses = list(sched.workers)
    for _ in range(5000):
        address = addresses[rng.randint(len(addresses))]
        delta = float(rng.uniform(-0.5, 2.0))
        # Occupancy is a non-negative estimate; mirror real adjustments.
        delta = max(delta, -sched.occupancy[address])
        sched._adjust_occupancy(address, delta)
        assert sched._occupancy_total == pytest.approx(
            sum(sched.occupancy.values()), abs=1e-6)

    # Membership changes recompute the total from scratch: exact.
    victim = next(iter(sched.workers.values()))
    sched.remove_worker(victim)
    assert sched._occupancy_total == sum(sched.occupancy.values())
    sched.add_worker(victim)
    assert sched._occupancy_total == sum(sched.occupancy.values())
    # And the index agrees on who is least loaded after the churn.
    best = sched.occupancy_index.least_occupied()
    assert sched.occupancy[best.address] == min(sched.occupancy.values())
