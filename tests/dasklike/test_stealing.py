"""Tests for the work-stealing balancer."""

from repro.dasklike import DaskConfig, TaskGraph, TaskSpec

from tests.helpers import make_wms, run_graphs


def skewed_graph(width=24, token="feed1234"):
    """A root task followed by a wide fan-out of slow tasks.

    All fan-out tasks become ready at the same instant and are assigned
    by occupancy estimates that start equal, so the initial placement
    piles estimation error onto some workers — prime stealing territory.
    """
    tasks = [TaskSpec(key=f"seed-{token}", compute_time=0.01,
                      output_nbytes=1024)]
    tasks += [
        TaskSpec(key=(f"slow-{token}", i), deps=(f"seed-{token}",),
                 compute_time=1.0, output_nbytes=8)
        for i in range(width)
    ]
    return TaskGraph(tasks)


def run_with_config(config, run_index=0):
    env, cluster, dask, client, job = make_wms(
        config=config, run_index=run_index,
        worker_nodes=2, workers_per_node=2, threads=2,
    )
    run_graphs(env, client, skewed_graph(), optimize=False)
    return env, dask


def test_stealing_moves_tasks():
    config = DaskConfig(work_stealing=True, work_stealing_interval=0.05,
                        steal_ratio=1.2)
    env, dask = run_with_config(config)
    assert dask.scheduler.steal_events, "balancer never moved a task"
    for event in dask.scheduler.steal_events:
        assert event.victim != event.thief


def test_stolen_tasks_still_complete_exactly_once():
    config = DaskConfig(work_stealing=True, work_stealing_interval=0.05,
                        steal_ratio=1.2)
    env, dask = run_with_config(config)
    runs = dask.all_task_runs()
    keys = [r.key for r in runs]
    assert len(keys) == len(set(keys)) == 25  # seed + 24 fan-out


def test_stealing_disabled_produces_no_events():
    config = DaskConfig(work_stealing=False)
    env, dask = run_with_config(config)
    assert dask.scheduler.steal_events == []


def test_victim_records_steal_transition():
    config = DaskConfig(work_stealing=True, work_stealing_interval=0.05,
                        steal_ratio=1.2)
    env, dask = run_with_config(config)
    steal_transitions = [
        t for w in dask.workers for t in w.transitions
        if t.stimulus == "steal"
    ]
    assert len(steal_transitions) == len(dask.scheduler.steal_events)
    for t in steal_transitions:
        assert (t.start_state, t.finish_state) == ("ready", "released")


def test_occupancy_balanced_after_run():
    config = DaskConfig(work_stealing=True, work_stealing_interval=0.05,
                        steal_ratio=1.2)
    env, dask = run_with_config(config)
    for occ in dask.scheduler.occupancy.values():
        assert occ < 0.01
