"""Event-stream parity pins for the scheduler scale-out refactor.

The O(1)-per-transition data structures (``scheduler_state.OccupancyIndex``,
the ``_has_what``/``_worker_processing`` reverse indexes, batched slab
dispatch) must not change a single scheduling decision at the paper's
8-worker scale.  These tests pin the exact artifacts of the three paper
workflows against sha256 digests captured at the pre-refactor revision
(commit 729b9a3, via ``tests/dasklike/_parity_golden_gen.py``):

* ``logs.jsonl`` — byte-for-byte: every scheduler/worker log line, in
  persisted order, with full-precision timestamps;
* the transition stream — full content (key, states, stimulus, worker,
  full-precision timestamp) as an order-independent digest, because the
  *interleaving* of the merged stream depends on ``PYTHONHASHSEED``
  (Mofka partitioning), a pre-existing property unrelated to placement.

Any placement drift — a different tie-break, a worker picked in a
different order, one extra or missing transition — shifts downstream
timestamps and changes both digests.  If one of these fails after an
intentional semantic change, regenerate with the golden generator and
say so loudly in the commit message.
"""

import hashlib
import json
import pathlib

import pytest

from repro.workflows import (
    ImageProcessingWorkflow,
    ResNet152Workflow,
    XGBoostWorkflow,
    run_workflow,
)

SEED = 11

#: Captured at the pre-refactor revision; the refactor reproduces them.
GOLDENS = {
    "image_processing": {
        "logs_sha256": ("4217da4c5045bb0dfbafca7d737c5759"
                        "1330448b2adc654af26cfccc867ca707"),
        "transitions_sha256": ("bcc0ecc585e3288715b896b4c57c0fe3"
                               "ae80180253fc9a28d2912b8eede86532"),
        "n_log_lines": 29,
    },
    "resnet152": {
        "logs_sha256": ("2508e78e81dd2b37fb90b2965d6beb7e"
                        "37e9c8423d511026a9ab915b33e7a813"),
        "transitions_sha256": ("323da0c9ba6e7f86f323298f21c6f182"
                               "438a8e0fd5e0858bec99eb352115c8df"),
        "n_log_lines": 23,
    },
    "xgboost_trip": {
        "logs_sha256": ("96ad6426375ea92eac91783344bdf617"
                        "1e3bf42ab3b917dfe1752cfa91d082cf"),
        "transitions_sha256": ("8528d0abada0f8b2d89507df6815748a"
                               "a831ed9cbfe272b7b8c66804d5b97451"),
        "n_log_lines": 1301,
    },
}

FACTORIES = {
    "image_processing": lambda: ImageProcessingWorkflow(scale=0.05),
    "resnet152": lambda: ResNet152Workflow(scale=0.03),
    "xgboost_trip": lambda: XGBoostWorkflow(scale=0.05),
}


def transition_digest(result) -> str:
    rows = sorted(
        json.dumps(e, sort_keys=True)
        for e in result.data.events_of_type("transition")
    )
    return hashlib.sha256("\n".join(rows).encode()).hexdigest()


@pytest.mark.parametrize("name", sorted(GOLDENS))
def test_event_streams_byte_identical(name, tmp_path):
    result = run_workflow(FACTORIES[name](), seed=SEED,
                          persist_dir=str(tmp_path))
    run_dir = next(pathlib.Path(tmp_path).glob("*/run0000"))
    logs = (run_dir / "logs.jsonl").read_bytes()
    golden = GOLDENS[name]
    assert logs.count(b"\n") == golden["n_log_lines"]
    assert hashlib.sha256(logs).hexdigest() == golden["logs_sha256"], (
        f"{name}: logs.jsonl drifted from the pre-refactor stream — a "
        "scheduling decision changed")
    assert transition_digest(result) == golden["transitions_sha256"], (
        f"{name}: the transition set (content incl. full-precision "
        "timestamps) drifted from the pre-refactor stream")
