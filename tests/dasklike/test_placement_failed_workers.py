"""Regression tests: placement must never target a silently-failed worker.

A worker can be dead (``failed``) yet still registered for a whole
heartbeat window.  ``WorkStealing.balance`` always guarded against
that; placement did not:

* ``decide_worker`` filtered ``who_has`` holders only by registration,
  so a dependent task could be placed straight onto a corpse;
* the root co-assignment path took ``list(self.workers.values())``
  unfiltered, handing a whole slab of roots to a dead worker;
* the ``who_has``/``sizes`` maps shipped by ``_assign`` and
  ``WorkStealing._steal`` listed replicas held by failed-but-registered
  workers, offering a corpse as a fetch source.

Each test here failed before the corresponding guard was added.
"""

from repro.dasklike import DaskConfig, TaskGraph, TaskSpec
from repro.dasklike.scheduler import SchedulerTaskState
from repro.dasklike.stealing import WorkStealing

from tests.helpers import make_wms


def make_sched(**config_kwargs):
    config = DaskConfig(work_stealing=False, gc_base_rate=0.0,
                        gc_pressure_rate=0.0, **config_kwargs)
    env, cluster, dask, client, job = make_wms(config=config)
    return env, dask, client


class TestDecideWorkerLiveness:
    def test_dependent_avoids_silently_failed_holder(self):
        env, dask, client = make_sched()
        sched = dask.scheduler
        seed = TaskGraph([TaskSpec(key="seed-11aa22bb", compute_time=0.01,
                                   output_nbytes=64 * 2**20)])
        # Submitted directly (no client): the leaf is ``wanted``, so the
        # replica stays pinned in memory after it completes.
        sched.update_graph(seed)
        env.run(until=env.timeout(5.0))
        seed_ts = sched.tasks["seed-11aa22bb"]
        assert seed_ts.state == "memory"
        holder = next(iter(seed_ts.who_has.values()))

        holder.fail()  # silent: stays registered until the next deadline
        assert holder.address in sched.workers

        # The huge dependency makes the holder the runaway favourite of
        # the locality term; liveness must veto it anyway.
        dep = TaskGraph([TaskSpec(key="child-33cc44dd",
                                  deps=("seed-11aa22bb",))])
        sched.update_graph(dep)
        placed_on = sched.tasks["child-33cc44dd"].processing_on
        assert placed_on is not holder
        assert not placed_on.failed

    def test_rootless_task_avoids_silently_failed_tie_winner(self):
        env, dask, client = make_sched()
        sched = dask.scheduler
        # All occupancies are 0.0: the old whole-pool argmin would pick
        # the first-registered worker.  Kill exactly that one, silently.
        first = next(iter(sched.workers.values()))
        first.fail()
        sched.update_graph(TaskGraph([TaskSpec(key="root-55ee66ff")]))
        placed_on = sched.tasks["root-55ee66ff"].processing_on
        assert placed_on is not first
        assert not placed_on.failed

    def test_root_slab_skips_silently_failed_worker(self):
        env, dask, client = make_sched()
        sched = dask.scheduler
        dead = list(sched.workers.values())[1]
        dead.fail()
        assert dead.address in sched.workers
        n = 8 * len(sched.workers)
        graph = TaskGraph([
            TaskSpec(key=("root-77aa88bb", i)) for i in range(n)
        ])
        sched.update_graph(graph)
        targets = {ts.processing_on for ts in sched.tasks.values()}
        assert dead not in targets
        # Live workers still share the slab load.
        assert len(targets) == len(sched.workers) - 1


class TestGatherSourcesLiveness:
    def test_dispatch_maps_exclude_failed_holders(self):
        env, dask, client = make_sched()
        sched = dask.scheduler
        live, dead = list(sched.workers.values())[:2]
        dep_spec = TaskSpec(key="input-99cc00dd", output_nbytes=1024)
        dep_ts = SchedulerTaskState(spec=dep_spec, state="memory",
                                    nbytes=1024)
        dep_ts.who_has = {dead.address: dead, live.address: live}
        sched.tasks[dep_ts.name] = dep_ts
        dead.fail()

        child = SchedulerTaskState(
            spec=TaskSpec(key="child-aa11bb22", deps=("input-99cc00dd",)))
        who_has, sizes = sched.gather_sources(child)
        assert who_has["input-99cc00dd"] == [live]
        assert sizes["input-99cc00dd"] == 1024

    def test_mid_window_steal_never_offers_a_corpse_source(self):
        """A steal inside the heartbeat window re-snapshots ``who_has``;
        replicas on failed-but-registered workers must be dropped from
        the maps handed to the thief."""
        config = DaskConfig(work_stealing=False, gc_base_rate=0.0,
                            gc_pressure_rate=0.0)
        env, cluster, dask, client, job = make_wms(
            config=config, worker_nodes=2, workers_per_node=2, threads=1)
        sched = dask.scheduler
        balancer = WorkStealing(sched)
        seed_key = "seed-bb33cc44"
        graph = TaskGraph(
            [TaskSpec(key=seed_key, compute_time=0.01,
                      output_nbytes=1024)] +
            [TaskSpec(key=("slow-bb33cc44", i), deps=(seed_key,),
                      compute_time=1.0, output_nbytes=8)
             for i in range(16)]
        )
        done = []

        def driver():
            yield env.process(client.connect())
            result = yield env.process(
                client.compute(graph, optimize=False))
            done.append(result)

        proc = env.process(driver())
        # Step until the seed replica spread and queues built up.
        seed_ts = None
        while env.now < 5.0:
            env.run(until=env.timeout(0.01))
            seed_ts = sched.tasks.get(seed_key)
            if (seed_ts is not None and len(seed_ts.who_has) >= 2
                    and any(w.ready for w in dask.workers)):
                break
        assert seed_ts is not None and len(seed_ts.who_has) >= 2

        dead = next(iter(seed_ts.who_has.values()))
        dead.fail()  # silent
        assert dead.address in sched.workers

        victim = next(w for w in dask.workers
                      if w.ready and w is not dead)
        thief = next(w for w in dask.workers
                     if w is not victim and w is not dead)

        captured = {}
        original_dispatch = sched._dispatch

        def capturing_dispatch(ts, worker, who_has, sizes):
            captured["who_has"] = who_has
            return original_dispatch(ts, worker, who_has, sizes)

        sched._dispatch = capturing_dispatch
        try:
            name = next(reversed(victim.ready))
            assert balancer._steal(name, victim, thief) is True
        finally:
            sched._dispatch = original_dispatch

        sources = captured["who_has"][seed_key]
        assert sources, "the steal must still ship a live source"
        assert all(not w.failed for w in sources)
        assert dead.address not in {w.address for w in sources}

        # The workload still converges once recovery notices the crash.
        sched.handle_worker_failure(dead)
        env.run(until=proc)
        assert done
