"""Worker-failure injection: detection, recovery, recomputation."""

import pytest

from repro.dasklike import DaskConfig, TaskGraph, TaskSpec

from tests.helpers import make_wms


def pipeline_graph(width=8, token="f00dfeed"):
    tasks = [
        TaskSpec(key=(f"stage1-{token}", i), compute_time=0.3,
                 output_nbytes=2**20)
        for i in range(width)
    ] + [
        TaskSpec(key=(f"stage2-{token}", i),
                 deps=((f"stage1-{token}", i),),
                 compute_time=0.3, output_nbytes=2**19)
        for i in range(width)
    ] + [
        TaskSpec(key=f"final-{token}",
                 deps=tuple((f"stage2-{token}", i) for i in range(width)),
                 compute_time=0.1, output_nbytes=16),
    ]
    return TaskGraph(tasks)


def run_with_mid_run_failure(kill_at=0.5, monitor=False, **wms_kwargs):
    env, cluster, dask, client, job = make_wms(**wms_kwargs)
    if monitor:
        dask.scheduler.start_liveness_monitor(misses=3)
    victim = dask.workers[0]
    results = []

    def killer():
        yield env.timeout(kill_at)
        if monitor:
            victim.fail()  # silent crash; heartbeats stop
        else:
            dask.scheduler.handle_worker_failure(victim)

    def driver():
        yield env.process(client.connect())
        result = yield env.process(
            client.compute(pipeline_graph(), optimize=False))
        results.append(result)
        dask.scheduler.stop_liveness_monitor()

    env.process(killer())
    env.run(until=env.process(driver()))
    return env, dask, victim, results


def test_workflow_completes_despite_failure():
    env, dask, victim, results = run_with_mid_run_failure()
    (index, values), = results
    assert "final-f00dfeed" in values


def test_failed_worker_removed_from_membership():
    env, dask, victim, results = run_with_mid_run_failure()
    assert victim.address not in dask.scheduler.workers
    assert victim.failed
    assert victim.data == {}


def test_no_surviving_replicas_on_dead_worker():
    env, dask, victim, results = run_with_mid_run_failure()
    for ts in dask.scheduler.tasks.values():
        assert victim.address not in ts.who_has


def test_recovery_transitions_recorded():
    env, dask, victim, results = run_with_mid_run_failure()
    stimuli = {t.stimulus for t in dask.scheduler.transitions}
    assert "worker-failed" in stimuli or "recompute" in stimuli


def test_tasks_not_duplicated_in_results():
    """Every task reaches memory exactly once per needed computation
    (recomputed tasks may run twice, but the final answer is single)."""
    env, dask, victim, results = run_with_mid_run_failure()
    final_memory = [
        t for t in dask.scheduler.transitions
        if t.key == "final-f00dfeed" and t.finish_state == "memory"
    ]
    assert len(final_memory) == 1


def test_heartbeat_based_detection():
    """A silent crash is detected via missed heartbeats."""
    env, dask, victim, results = run_with_mid_run_failure(
        monitor=True, kill_at=0.3)
    (index, values), = results
    assert "final-f00dfeed" in values
    assert victim.address not in dask.scheduler.workers
    warnings = [e for e in dask.scheduler.logs
                if "failed heartbeat check" in e.message]
    assert len(warnings) == 1


def assert_converged(scheduler):
    """No task may be left behind by failure recovery."""
    for ts in scheduler.tasks.values():
        assert not (ts.state == "waiting" and not ts.waiting_on), \
            f"{ts.name} stuck in waiting with empty waiting_on"
        assert ts.state in ("memory", "forgotten", "released"), \
            f"{ts.name} stuck in {ts.state} (waiting_on={ts.waiting_on})"


def run_with_cascading_failure(kill_at=0.5, monitor=False):
    """First failure is handled, then the worker that received one of
    the reassigned in-flight tasks dies silently — before any liveness
    tick could notice."""
    env, cluster, dask, client, job = make_wms()
    scheduler = dask.scheduler
    if monitor:
        scheduler.start_liveness_monitor(misses=3)
    results = []
    victims = []

    def killer():
        yield env.timeout(kill_at)
        victim1 = dask.workers[0]
        victims.append(victim1)
        inflight = [ts.name for ts in scheduler.tasks.values()
                    if ts.processing_on is victim1]
        if monitor:
            victim1.fail()
            # Wait for heartbeat-based detection of the first death.
            while victim1.address in scheduler.workers:
                yield env.timeout(0.05)
        else:
            scheduler.handle_worker_failure(victim1)
        reassigned = [ts for ts in scheduler.tasks.values()
                      if ts.name in inflight and ts.state == "processing"
                      and ts.processing_on is not None]
        if not reassigned:
            return
        victim2 = reassigned[0].processing_on
        victims.append(victim2)
        victim2.fail()  # silent: nobody tells the scheduler

    def driver():
        yield env.process(client.connect())
        result = yield env.process(
            client.compute(pipeline_graph(token="cascade1"), optimize=False))
        results.append(result)
        scheduler.stop_liveness_monitor()

    env.process(killer())
    env.run(until=env.process(driver()))
    return env, dask, victims, results


class TestCascadingFailure:
    def test_cascade_without_monitor_completes(self):
        """The dispatch return path must recover a task whose *second*
        worker died silently, with no liveness monitor running.
        (Before the fix this deadlocked: the task sat in "processing"
        on the dead worker forever.)"""
        env, dask, victims, results = run_with_cascading_failure()
        assert len(victims) == 2, "cascade did not trigger"
        (index, values), = results
        assert "final-cascade1" in values
        assert_converged(dask.scheduler)

    def test_cascade_with_monitor_completes(self):
        """Heartbeat detection of the second death also converges."""
        env, dask, victims, results = run_with_cascading_failure(
            monitor=True, kill_at=0.3)
        (index, values), = results
        assert "final-cascade1" in values
        assert_converged(dask.scheduler)

    def test_cascade_removes_both_workers(self):
        env, dask, victims, results = run_with_cascading_failure()
        for victim in victims:
            assert victim.address not in dask.scheduler.workers
            assert victim.data == {}

    def test_cascade_final_reaches_memory_once(self):
        env, dask, victims, results = run_with_cascading_failure()
        final_memory = [
            t for t in dask.scheduler.transitions
            if t.key == "final-cascade1" and t.finish_state == "memory"
        ]
        assert len(final_memory) == 1

    def test_dead_worker_refuses_dispatch(self):
        """A task dispatched to an already-dead worker bails out without
        recording zombie lifecycle transitions on that worker."""
        env, cluster, dask, client, job = make_wms()
        victim = dask.workers[0]
        before = len(victim.transitions)
        victim.fail()
        done = []

        def probe():
            from repro.dasklike import TaskSpec
            spec = TaskSpec(key="probe-task", compute_time=0.1,
                            output_nbytes=16)
            ok = yield env.process(
                victim.compute_task(spec, {}, {}, graph_index=0))
            done.append(ok)

        env.run(until=env.process(probe()))
        assert done == [False]
        assert len(victim.transitions) == before


def test_healthy_run_has_no_failure_logs():
    env, cluster, dask, client, job = make_wms()
    dask.scheduler.start_liveness_monitor()
    results = []

    def driver():
        yield env.process(client.connect())
        result = yield env.process(
            client.compute(pipeline_graph(token="ok11ok11"),
                           optimize=False))
        results.append(result)
        dask.scheduler.stop_liveness_monitor()

    env.run(until=env.process(driver()))
    assert results
    assert not any("heartbeat check" in e.message
                   for e in dask.scheduler.logs)
    assert len(dask.scheduler.workers) == 4
