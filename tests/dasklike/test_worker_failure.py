"""Worker-failure injection: detection, recovery, recomputation."""

import pytest

from repro.dasklike import DaskConfig, TaskGraph, TaskSpec

from tests.helpers import make_wms


def pipeline_graph(width=8, token="f00dfeed"):
    tasks = [
        TaskSpec(key=(f"stage1-{token}", i), compute_time=0.3,
                 output_nbytes=2**20)
        for i in range(width)
    ] + [
        TaskSpec(key=(f"stage2-{token}", i),
                 deps=((f"stage1-{token}", i),),
                 compute_time=0.3, output_nbytes=2**19)
        for i in range(width)
    ] + [
        TaskSpec(key=f"final-{token}",
                 deps=tuple((f"stage2-{token}", i) for i in range(width)),
                 compute_time=0.1, output_nbytes=16),
    ]
    return TaskGraph(tasks)


def run_with_mid_run_failure(kill_at=0.5, monitor=False, **wms_kwargs):
    env, cluster, dask, client, job = make_wms(**wms_kwargs)
    if monitor:
        dask.scheduler.start_liveness_monitor(misses=3)
    victim = dask.workers[0]
    results = []

    def killer():
        yield env.timeout(kill_at)
        if monitor:
            victim.fail()  # silent crash; heartbeats stop
        else:
            dask.scheduler.handle_worker_failure(victim)

    def driver():
        yield env.process(client.connect())
        result = yield env.process(
            client.compute(pipeline_graph(), optimize=False))
        results.append(result)
        dask.scheduler.stop_liveness_monitor()

    env.process(killer())
    env.run(until=env.process(driver()))
    return env, dask, victim, results


def test_workflow_completes_despite_failure():
    env, dask, victim, results = run_with_mid_run_failure()
    (index, values), = results
    assert "final-f00dfeed" in values


def test_failed_worker_removed_from_membership():
    env, dask, victim, results = run_with_mid_run_failure()
    assert victim.address not in dask.scheduler.workers
    assert victim.failed
    assert victim.data == {}


def test_no_surviving_replicas_on_dead_worker():
    env, dask, victim, results = run_with_mid_run_failure()
    for ts in dask.scheduler.tasks.values():
        assert victim.address not in ts.who_has


def test_recovery_transitions_recorded():
    env, dask, victim, results = run_with_mid_run_failure()
    stimuli = {t.stimulus for t in dask.scheduler.transitions}
    assert "worker-failed" in stimuli or "recompute" in stimuli


def test_tasks_not_duplicated_in_results():
    """Every task reaches memory exactly once per needed computation
    (recomputed tasks may run twice, but the final answer is single)."""
    env, dask, victim, results = run_with_mid_run_failure()
    final_memory = [
        t for t in dask.scheduler.transitions
        if t.key == "final-f00dfeed" and t.finish_state == "memory"
    ]
    assert len(final_memory) == 1


def test_heartbeat_based_detection():
    """A silent crash is detected via missed heartbeats."""
    env, dask, victim, results = run_with_mid_run_failure(
        monitor=True, kill_at=0.3)
    (index, values), = results
    assert "final-f00dfeed" in values
    assert victim.address not in dask.scheduler.workers
    warnings = [e for e in dask.scheduler.logs
                if "failed heartbeat check" in e.message]
    assert len(warnings) == 1


def test_healthy_run_has_no_failure_logs():
    env, cluster, dask, client, job = make_wms()
    dask.scheduler.start_liveness_monitor()
    results = []

    def driver():
        yield env.process(client.connect())
        result = yield env.process(
            client.compute(pipeline_graph(token="ok11ok11"),
                           optimize=False))
        results.append(result)
        dask.scheduler.stop_liveness_monitor()

    env.run(until=env.process(driver()))
    assert results
    assert not any("heartbeat check" in e.message
                   for e in dask.scheduler.logs)
    assert len(dask.scheduler.workers) == 4
