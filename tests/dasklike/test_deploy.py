"""Tests for the DaskCluster deployment helper."""

import pytest

from repro.dasklike import DaskCluster, DaskConfig, PassthroughIO
from repro.jobs import BatchSystem, JobSpec
from repro.platform import Cluster, ClusterSpec
from repro.sim import Environment, RandomStreams

from tests.helpers import make_wms, run_graphs
from tests.dasklike.test_integration import map_reduce_graph


def build(worker_nodes=2, workers_per_node=3, threads=5):
    env = Environment()
    streams = RandomStreams(7)
    cluster = Cluster(env, ClusterSpec(num_nodes=8), streams)
    batch = BatchSystem(env, cluster, streams)
    job = env.run(until=env.process(batch.submit(JobSpec(
        worker_nodes=worker_nodes, workers_per_node=workers_per_node,
        threads_per_worker=threads))))
    dask = DaskCluster(env, cluster, job, streams=streams)
    return env, cluster, dask


class TestLayout:
    def test_worker_placement_matches_job(self):
        env, cluster, dask = build()
        assert len(dask.workers) == 6
        hosts = {}
        for worker in dask.workers:
            hosts.setdefault(worker.node.name, []).append(worker)
        assert len(hosts) == 2
        assert all(len(ws) == 3 for ws in hosts.values())
        assert all(w.nthreads == 5 for w in dask.workers)

    def test_scheduler_on_first_node(self):
        env, cluster, dask = build()
        assert dask.scheduler.node is dask.job.nodes[0]
        worker_nodes = {w.node.name for w in dask.workers}
        assert dask.scheduler.node.name not in worker_nodes

    def test_default_io_layer_is_passthrough(self):
        env, cluster, dask = build()
        assert all(isinstance(w.io_layer, PassthroughIO)
                   for w in dask.workers)

    def test_unique_worker_addresses_and_threads(self):
        env, cluster, dask = build()
        addresses = [w.address for w in dask.workers]
        assert len(set(addresses)) == len(addresses)
        all_tids = [tid for w in dask.workers for tid in w.thread_ids]
        assert len(set(all_tids)) == len(all_tids)

    def test_start_is_idempotent(self):
        env, cluster, dask = build()
        dask.start()
        dask.start()  # second call must be a no-op
        assert dask._started


class TestAggregationHelpers:
    def test_all_logs_sorted_and_all_transitions_sorted(self):
        env, cluster, dask, client, job = make_wms()
        run_graphs(env, client, map_reduce_graph(width=8,
                                                 token="de9de9de"))
        logs = dask.all_logs()
        assert [e.time for e in logs] == sorted(e.time for e in logs)
        transitions = dask.all_transitions()
        times = [t.timestamp for t in transitions]
        assert times == sorted(times)
        sources = {t.source for t in transitions}
        assert "scheduler" in sources and len(sources) > 1
