"""Tests for key naming conventions and transition validation."""

import pytest

from repro.dasklike import key_group, key_split, key_str
from repro.dasklike.states import validate_transition


class TestKeyStr:
    def test_plain_string(self):
        assert key_str("sum-abc123") == "sum-abc123"

    def test_tuple_key(self):
        assert key_str(("getitem-24266c", 63)) == "('getitem-24266c', 63)"

    def test_nested_index(self):
        assert key_str(("blocks-ff00aa", 1, 2)) == "('blocks-ff00aa', 1, 2)"


class TestKeyGroup:
    def test_string_key_is_its_own_group(self):
        assert key_group("train-part-9f8e7d61") == "train-part-9f8e7d61"

    def test_tuple_key_group_is_name(self):
        assert key_group(("getitem-24266c", 63)) == "getitem-24266c"


class TestKeySplit:
    def test_strips_hash_token(self):
        assert key_split("getitem-24266c1f") == "getitem"

    def test_strips_numeric_suffix(self):
        assert key_split(("sum-123", 4)) == "sum"

    def test_keeps_composite_names(self):
        assert key_split("read_parquet-fused-assign-9a8b7c6d") == \
            "read_parquet-fused-assign"

    def test_plain_word_unchanged(self):
        assert key_split("normalize") == "normalize"

    def test_word_with_dash_but_no_token(self):
        assert key_split("random_split_take") == "random_split_take"


class TestTransitions:
    @pytest.mark.parametrize("start,finish", [
        ("released", "waiting"),
        ("waiting", "processing"),
        ("processing", "memory"),
        ("memory", "released"),
        ("memory", "forgotten"),
        ("processing", "erred"),
    ])
    def test_legal(self, start, finish):
        validate_transition(start, finish)

    @pytest.mark.parametrize("start,finish", [
        ("memory", "processing"),
        ("released", "memory"),
        ("waiting", "memory"),
        ("processing", "waiting"),
    ])
    def test_illegal(self, start, finish):
        with pytest.raises(ValueError):
            validate_transition(start, finish)
