"""Property-based tests on task-graph and fusion invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dasklike import TaskGraph, TaskSpec, fuse_linear_chains
from repro.dasklike.states import key_split
from repro.dasklike.utils import tokenize


@st.composite
def random_dag(draw):
    """A random DAG: each task may depend on earlier tasks only."""
    n = draw(st.integers(1, 25))
    tasks = []
    for i in range(n):
        n_deps = draw(st.integers(0, min(i, 3)))
        deps = tuple(
            f"t{j}-aa00bb11" for j in sorted(
                draw(st.lists(st.integers(0, i - 1), min_size=n_deps,
                              max_size=n_deps, unique=True))
            )
        ) if i > 0 else ()
        tasks.append(TaskSpec(
            key=f"t{i}-aa00bb11",
            deps=deps,
            compute_time=draw(st.floats(0, 2)),
            output_nbytes=draw(st.integers(0, 10**6)),
        ))
    return TaskGraph(tasks)


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_fusion_preserves_total_compute(graph):
    fused = fuse_linear_chains(graph)
    original = sum(t.compute_time for t in graph.tasks.values())
    after = sum(t.compute_time for t in fused.tasks.values())
    assert after == pytest.approx(original)


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_fusion_never_grows_the_graph(graph):
    fused = fuse_linear_chains(graph)
    assert len(fused) <= len(graph)
    fused.validate(allow_external=True)


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_fusion_preserves_io_ops(graph):
    fused = fuse_linear_chains(graph)
    def ops(g):
        return sum(len(t.reads) + len(t.writes) for t in g.tasks.values())
    assert ops(fused) == ops(graph)


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_fusion_preserves_leaf_outputs(graph):
    """The set of leaf output sizes survives fusion (keys may rename)."""
    fused = fuse_linear_chains(graph)
    original = sorted(graph[k].output_nbytes for k in graph.leaves())
    after = sorted(fused[k].output_nbytes for k in fused.leaves())
    assert after == original


@given(random_dag())
@settings(max_examples=60, deadline=None)
def test_toposort_respects_all_edges(graph):
    order = {name: i for i, name in enumerate(graph.toposort())}
    for name, task in graph.tasks.items():
        for dep in task.deps:
            assert order[str(dep)] < order[name]


@given(st.lists(st.sampled_from(
    ["load", "transform", "read_parquet", "getitem", "assign"]),
    min_size=1, max_size=5))
@settings(max_examples=50, deadline=None)
def test_key_split_strips_tokenize_tokens(names):
    """Any tokenize() token is stripped from any operation name."""
    for name in names:
        token = tokenize(*names)
        assert key_split(f"{name}-{token}") == name
        assert key_split((f"{name}-{token}", 5)) == name
