"""End-to-end tests: graphs through client → scheduler → workers."""

import pytest

from repro.dasklike import DaskConfig, IOOp, TaskGraph, TaskSpec

from tests.helpers import make_wms, run_graphs


def map_reduce_graph(width=8, token="ab12cd34"):
    """width independent map tasks feeding one reduction."""
    tasks = [
        TaskSpec(key=(f"chunk-{token}", i), compute_time=0.05,
                 output_nbytes=1 * 2**20)
        for i in range(width)
    ]
    tasks.append(TaskSpec(
        key=f"sum-{token}",
        deps=tuple((f"chunk-{token}", i) for i in range(width)),
        compute_time=0.02, output_nbytes=8,
    ))
    return TaskGraph(tasks)


def test_single_task_graph_completes():
    env, cluster, dask, client, job = make_wms()
    graph = TaskGraph([TaskSpec(key="solo-11110000", compute_time=0.1,
                                output_nbytes=64)])
    ((index, results),) = run_graphs(env, client, graph)
    assert index == 0
    assert results == {"solo-11110000": 64}


def test_map_reduce_completes_and_orders_transitions():
    env, cluster, dask, client, job = make_wms()
    ((_, results),) = run_graphs(env, client, map_reduce_graph())
    assert results["sum-ab12cd34"] == 8
    sched = dask.scheduler
    # The reduction must finish after every chunk.
    memory_times = {
        r.key: r.timestamp for r in sched.transitions
        if r.finish_state == "memory"
    }
    for i in range(8):
        assert memory_times[f"('chunk-ab12cd34', {i})"] <= \
            memory_times["sum-ab12cd34"]


def test_tasks_spread_across_workers():
    env, cluster, dask, client, job = make_wms(workers_per_node=2,
                                               worker_nodes=2)
    run_graphs(env, client, map_reduce_graph(width=32))
    used_workers = {run.worker for run in dask.all_task_runs()}
    assert len(used_workers) > 1


def test_dependency_transfers_recorded():
    """The reducer needs chunks from other workers -> comm records."""
    env, cluster, dask, client, job = make_wms(workers_per_node=2,
                                               worker_nodes=2)
    run_graphs(env, client, map_reduce_graph(width=16))
    comms = dask.all_comms()
    assert comms, "expected inter-worker dependency transfers"
    for c in comms:
        assert c.nbytes == 1 * 2**20
        assert c.duration > 0
        assert c.dst_worker != c.src_worker


def test_io_tasks_touch_pfs():
    env, cluster, dask, client, job = make_wms()
    cluster.pfs.create_file("/lus/in.dat", 8 * 2**20)
    graph = TaskGraph([
        TaskSpec(key="load-00ff00ff", compute_time=0.01,
                 reads=(IOOp("/lus/in.dat", "read", 0, 4 * 2**20),),
                 output_nbytes=4 * 2**20),
        TaskSpec(key="save-00ff00ff", deps=("load-00ff00ff",),
                 writes=(IOOp("/lus/out.dat", "write", 0, 1 * 2**20),),
                 output_nbytes=0),
    ])
    cluster.pfs.create_file("/lus/out.dat", 0)
    run_graphs(env, client, graph, optimize=False)
    runs = {r.key: r for r in dask.all_task_runs()}
    assert runs["load-00ff00ff"].io_time > 0
    assert runs["load-00ff00ff"].n_reads == 1
    assert cluster.pfs.stat("/lus/out.dat").size == 1 * 2**20


def test_thread_ids_are_worker_threads():
    env, cluster, dask, client, job = make_wms(threads=4)
    run_graphs(env, client, map_reduce_graph(width=16))
    by_worker = {w.address: set(w.thread_ids) for w in dask.workers}
    for run in dask.all_task_runs():
        assert run.thread_id in by_worker[run.worker]


def test_memory_released_after_dependents_finish():
    env, cluster, dask, client, job = make_wms()
    run_graphs(env, client, map_reduce_graph(width=8))
    sched = dask.scheduler
    for i in range(8):
        ts = sched.tasks[f"('chunk-ab12cd34', {i})"]
        assert ts.state == "forgotten"
        assert not ts.who_has
    # Workers hold no leftover chunk data.
    for worker in dask.workers:
        assert all("chunk" not in k for k in worker.data)


def test_multiple_graphs_sequential_submission():
    env, cluster, dask, client, job = make_wms()
    results = run_graphs(env, client,
                         map_reduce_graph(token="aaaa1111"),
                         map_reduce_graph(token="bbbb2222"),
                         map_reduce_graph(token="cccc3333"))
    assert [index for index, _ in results] == [0, 1, 2]
    graph_indices = {r.graph_index for r in dask.all_task_runs()}
    assert graph_indices == {0, 1, 2}


def test_cross_graph_dependency():
    env, cluster, dask, client, job = make_wms()
    first = TaskGraph([TaskSpec(key="base-12121212", compute_time=0.05,
                                output_nbytes=256)])
    second = TaskGraph([TaskSpec(key="follow-34343434",
                                 deps=("base-12121212",),
                                 compute_time=0.05, output_nbytes=1)])

    out = []

    def driver():
        yield env.process(client.connect())
        # Keep the first graph's future alive while the second runs.
        g = first
        from repro.dasklike import fuse_linear_chains  # no-op for 1 task
        yield env.timeout(0)
        index0 = dask.scheduler.update_graph(g, wanted=["base-12121212"])
        yield dask.scheduler.wanted_event("base-12121212")
        result = yield env.process(client.compute(second, optimize=False))
        dask.scheduler.release_wanted(["base-12121212"])
        out.append(result)

    env.run(until=env.process(driver()))
    (index, results), = out
    assert results == {"follow-34343434": 1}


def test_occupancy_returns_to_zero():
    env, cluster, dask, client, job = make_wms()
    run_graphs(env, client, map_reduce_graph(width=16))
    for occ in dask.scheduler.occupancy.values():
        assert occ == pytest.approx(0.0, abs=1e-6)


def test_run_to_run_task_placement_varies():
    """Same workflow, different run index -> different placements."""
    def placement(run_index):
        env, cluster, dask, client, job = make_wms(run_index=run_index)
        run_graphs(env, client, map_reduce_graph(width=24))
        return tuple(sorted(
            (r.key, r.worker) for r in dask.all_task_runs()
        ))

    placements = {placement(k) for k in range(4)}
    assert len(placements) > 1


def test_same_seed_same_run_index_reproduces():
    def trace(run_index):
        env, cluster, dask, client, job = make_wms(run_index=run_index)
        run_graphs(env, client, map_reduce_graph(width=12))
        return [(r.key, r.worker, round(r.start, 9), round(r.stop, 9))
                for r in sorted(dask.all_task_runs(), key=lambda r: r.key)]

    assert trace(2) == trace(2)


def test_unresponsive_warnings_emitted_under_memory_pressure():
    config = DaskConfig(
        memory_limit=64 * 2**20,   # tiny limit -> high pressure
        gc_base_rate=0.5, gc_pressure_rate=5.0,
        gc_pause_median=1.5, gc_pause_sigma=0.5,
        tick_warn_threshold=0.5,
    )
    env, cluster, dask, client, job = make_wms(config=config)
    graph = TaskGraph([
        TaskSpec(key=(f"big-0f0f0f0f", i), compute_time=1.0,
                 output_nbytes=32 * 2**20)
        for i in range(8)
    ] + [TaskSpec(key="sink-0e0e0e0e",
                  deps=tuple(("big-0f0f0f0f", i) for i in range(8)),
                  compute_time=0.1, output_nbytes=1)])
    run_graphs(env, client, graph)
    kinds = {w.kind for w in dask.all_warnings()}
    assert "gc_collect" in kinds
    assert "unresponsive_event_loop" in kinds


def test_logs_cover_all_components():
    env, cluster, dask, client, job = make_wms()
    run_graphs(env, client, map_reduce_graph())
    sources = {entry.source for entry in dask.all_logs()}
    assert "scheduler" in sources
    assert any(s.startswith("10.") for s in sources)  # workers
    assert any("Submitted graph" in e.message for e in client.logs)
