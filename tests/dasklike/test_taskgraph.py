"""Tests for task-graph construction, validation, and fusion."""

import pytest

from repro.dasklike import GraphError, IOOp, TaskGraph, TaskSpec, fuse_linear_chains


def simple_chain():
    """read -> transform -> write, a pure linear chain."""
    return TaskGraph([
        TaskSpec(key="read-aa11bb22", compute_time=0.1,
                 reads=(IOOp("/f", "read", 0, 1024),),
                 output_nbytes=1024),
        TaskSpec(key="transform-cc33dd44", deps=("read-aa11bb22",),
                 compute_time=0.5, output_nbytes=512),
        TaskSpec(key="store-ee55ff66", deps=("transform-cc33dd44",),
                 writes=(IOOp("/out", "write", 0, 512),),
                 output_nbytes=0),
    ])


class TestTaskSpec:
    def test_prefix_group_derivation(self):
        spec = TaskSpec(key=("getitem-24266c1f", 63))
        assert spec.group == "getitem-24266c1f"
        assert spec.prefix == "getitem"
        assert spec.name == "('getitem-24266c1f', 63)"

    def test_ioop_validation(self):
        with pytest.raises(ValueError):
            IOOp("/f", "append", 0, 10)
        with pytest.raises(ValueError):
            IOOp("/f", "read", -1, 10)


class TestTaskGraph:
    def test_add_and_lookup(self):
        graph = simple_chain()
        assert len(graph) == 3
        assert "read-aa11bb22" in graph
        assert graph["read-aa11bb22"].output_nbytes == 1024

    def test_duplicate_key_rejected(self):
        graph = simple_chain()
        with pytest.raises(GraphError):
            graph.add(TaskSpec(key="read-aa11bb22"))

    def test_missing_dep_detected(self):
        graph = TaskGraph([TaskSpec(key="a", deps=("ghost",))])
        with pytest.raises(GraphError, match="missing"):
            graph.validate()

    def test_cycle_detected(self):
        graph = TaskGraph([
            TaskSpec(key="a", deps=("b",)),
            TaskSpec(key="b", deps=("a",)),
        ])
        with pytest.raises(GraphError, match="cycle"):
            graph.validate()

    def test_toposort_respects_dependencies(self):
        graph = simple_chain()
        order = graph.toposort()
        assert order.index("read-aa11bb22") < order.index("transform-cc33dd44")
        assert order.index("transform-cc33dd44") < order.index("store-ee55ff66")

    def test_roots_and_leaves(self):
        graph = simple_chain()
        assert graph.roots() == ["read-aa11bb22"]
        assert graph.leaves() == ["store-ee55ff66"]

    def test_stats(self):
        stats = simple_chain().stats()
        assert stats["tasks"] == 3
        assert stats["edges"] == 2
        assert stats["distinct_files"] == 2
        assert stats["planned_io_ops"] == 2
        assert "transform" in stats["prefixes"]


class TestFusion:
    def test_linear_chain_fuses_to_one_task(self):
        fused = fuse_linear_chains(simple_chain())
        assert len(fused) == 1
        (task,) = fused.tasks.values()
        assert "fused" in task.prefix

    def test_fused_costs_accumulate(self):
        fused = fuse_linear_chains(simple_chain())
        (task,) = fused.tasks.values()
        assert task.compute_time == pytest.approx(0.6)
        assert len(task.reads) == 1
        assert len(task.writes) == 1
        assert task.output_nbytes == 0  # tail's output

    def test_read_parquet_assign_naming(self):
        graph = TaskGraph([
            TaskSpec(key=("read_parquet-1a2b3c4d", 0),
                     reads=(IOOp("/p", "read", 0, 100),),
                     output_nbytes=100),
            TaskSpec(key=("assign-5e6f7a8b", 0),
                     deps=(("read_parquet-1a2b3c4d", 0),),
                     compute_time=0.2, output_nbytes=120),
        ])
        fused = fuse_linear_chains(graph)
        (task,) = fused.tasks.values()
        assert task.prefix == "read_parquet-fused-assign"

    def test_fan_out_not_fused(self):
        graph = TaskGraph([
            TaskSpec(key="src-ab12cd34", output_nbytes=10),
            TaskSpec(key="left-ab12cd34", deps=("src-ab12cd34",)),
            TaskSpec(key="right-ab12cd34", deps=("src-ab12cd34",)),
        ])
        fused = fuse_linear_chains(graph)
        assert len(fused) == 3

    def test_fan_in_not_fused_across_join(self):
        graph = TaskGraph([
            TaskSpec(key="a-11112222", output_nbytes=1),
            TaskSpec(key="b-11112222", output_nbytes=1),
            TaskSpec(key="join-33334444", deps=("a-11112222", "b-11112222")),
        ])
        fused = fuse_linear_chains(graph)
        assert len(fused) == 3

    def test_external_deps_preserved(self):
        """Deps pointing outside the graph survive fusion untouched."""
        graph = TaskGraph([
            TaskSpec(key="load-99990000", deps=("external-key",),
                     output_nbytes=5),
            TaskSpec(key="use-99990000", deps=("load-99990000",)),
        ])
        fused = fuse_linear_chains(graph)
        (task,) = fused.tasks.values()
        assert "external-key" in [str(d) for d in task.deps]

    def test_diamond_partial_fusion(self):
        """Only the unbranched tails of a diamond fuse."""
        graph = TaskGraph([
            TaskSpec(key="src-0a0a0a0a"),
            TaskSpec(key="l1-0a0a0a0a", deps=("src-0a0a0a0a",)),
            TaskSpec(key="r1-0a0a0a0a", deps=("src-0a0a0a0a",)),
            TaskSpec(key="sink-0b0b0b0b", deps=("l1-0a0a0a0a", "r1-0a0a0a0a")),
        ])
        fused = fuse_linear_chains(graph)
        fused.validate()
        assert len(fused) == 4

    def test_fusion_keeps_graph_valid(self):
        fused = fuse_linear_chains(simple_chain())
        fused.validate()


class TestToposortMemo:
    def chain(self, n=4):
        graph = TaskGraph()
        prev = None
        for i in range(n):
            deps = (prev,) if prev is not None else ()
            graph.add(TaskSpec(key=f"t{i}", deps=deps))
            prev = f"t{i}"
        return graph

    def test_repeated_toposort_is_cached(self):
        graph = self.chain()
        first = graph.toposort()
        assert graph._toposort_cache is not None
        assert graph.toposort() == first

    def test_add_invalidates_cache(self):
        graph = self.chain()
        first = graph.toposort()
        graph.add(TaskSpec(key="extra", deps=("t3",)))
        assert graph._toposort_cache is None
        second = graph.toposort()
        assert second != first
        assert "extra" in second

    def test_callers_cannot_corrupt_cache(self):
        graph = self.chain()
        original = graph.toposort()
        mutated = graph.toposort()
        mutated.reverse()
        assert graph.toposort() == original
