"""Unit tests for scheduler internals: placement, estimates, slabs."""

import pytest

from repro.dasklike import DaskConfig, TaskGraph, TaskSpec

from tests.helpers import make_wms, run_graphs


def make_sched(**config_kwargs):
    config = DaskConfig(work_stealing=False, gc_base_rate=0.0,
                        gc_pressure_rate=0.0, **config_kwargs)
    env, cluster, dask, client, job = make_wms(config=config)
    return env, dask, client


class TestDurationEstimates:
    def test_default_guess(self):
        env, dask, client = make_sched()
        spec = TaskSpec(key="never-seen-ab12cd34")
        assert dask.scheduler.estimate_duration(spec) == 0.5

    def test_first_observation_replaces_guess(self):
        env, dask, client = make_sched()
        spec = TaskSpec(key="op-ab12cd34")
        dask.scheduler.observe_duration(spec, 2.0)
        assert dask.scheduler.estimate_duration(spec) == 2.0

    def test_ema_blends(self):
        env, dask, client = make_sched()
        spec = TaskSpec(key="op-ab12cd34")
        dask.scheduler.observe_duration(spec, 2.0)
        dask.scheduler.observe_duration(spec, 4.0)
        assert dask.scheduler.estimate_duration(spec) == pytest.approx(3.0)

    def test_estimates_shared_per_prefix(self):
        env, dask, client = make_sched()
        dask.scheduler.observe_duration(
            TaskSpec(key=("op-ab12cd34", 0)), 6.0)
        assert dask.scheduler.estimate_duration(
            TaskSpec(key=("op-99999999", 5))) == 6.0


class TestDecideWorker:
    def test_root_task_picks_least_occupied(self):
        env, dask, client = make_sched()
        sched = dask.scheduler
        addresses = list(sched.workers)
        for a in addresses:
            sched.occupancy[a] = 5.0
        sched.occupancy[addresses[2]] = 0.5
        graph = TaskGraph([TaskSpec(key="root-0a0b0c0d")])
        sched.update_graph(graph)
        ts = sched.tasks["root-0a0b0c0d"]
        assert ts.processing_on.address == addresses[2]

    def test_dependent_sticks_with_big_data(self):
        """A task whose dependency is huge stays on the holder even when
        another worker is idle."""
        env, dask, client = make_sched(idle_fraction=10.0)  # all idle
        run_graphs(env, client, TaskGraph([
            TaskSpec(key="big-0c0c0c0c", compute_time=0.01,
                     output_nbytes=10 * 2**30)]), optimize=False)
        # keep the key pinned by a dependent graph
        sched = dask.scheduler
        holder = None
        for w in dask.workers:
            if "big-0c0c0c0c" in w.data:
                holder = w.address
        # big result was gathered+released; recreate state manually:
        # (use persist to keep it in memory instead)
        env2, dask2, client2 = make_sched(idle_fraction=10.0)
        out = []

        def driver():
            result = yield env2.process(client2.persist(TaskGraph([
                TaskSpec(key="big-0d0d0d0d", compute_time=0.01,
                         output_nbytes=10 * 2**30)]), optimize=False))
            out.append(result)
            result2 = yield env2.process(client2.compute(TaskGraph([
                TaskSpec(key="child-0e0e0e0e", deps=("big-0d0d0d0d",),
                         compute_time=0.01, output_nbytes=1)]),
                optimize=False))
            out.append(result2)

        env2.run(until=env2.process(driver()))
        sched2 = dask2.scheduler
        parent = sched2.tasks["big-0d0d0d0d"]
        child_runs = [r for w in dask2.workers for r in w.task_runs
                      if r.key == "child-0e0e0e0e"]
        parent_runs = [r for w in dask2.workers for r in w.task_runs
                       if r.key == "big-0d0d0d0d"]
        assert child_runs[0].worker == parent_runs[0].worker
        # And no transfer happened.
        assert dask2.all_comms() == []


class TestRootCoassignment:
    def test_slabs_are_contiguous(self):
        env, dask, client = make_sched()
        n = 32
        graph = TaskGraph([
            TaskSpec(key=("root-0f0f0f0f", i), compute_time=0.01,
                     output_nbytes=1)
            for i in range(n)
        ])
        dask.scheduler.update_graph(graph)
        # Consecutive root indices mostly share a worker (slab layout).
        placement = {}
        for name, ts in dask.scheduler.tasks.items():
            index = int(name.split(", ")[1].rstrip(")"))
            placement[index] = ts.processing_on.address
        same_as_next = sum(
            1 for i in range(n - 1) if placement[i] == placement[i + 1]
        )
        # 4 workers -> at most 3 slab boundaries in a perfect layout.
        assert same_as_next >= n - 1 - 4

    def test_coassignment_can_be_disabled(self):
        env, dask, client = make_sched(root_coassignment=False)
        n = 32
        graph = TaskGraph([
            TaskSpec(key=("root-1a1a1a1a", i), compute_time=0.01,
                     output_nbytes=1)
            for i in range(n)
        ])
        dask.scheduler.update_graph(graph)
        placement = {}
        for name, ts in dask.scheduler.tasks.items():
            index = int(name.split(", ")[1].rstrip(")"))
            placement[index] = ts.processing_on.address
        same_as_next = sum(
            1 for i in range(n - 1) if placement[i] == placement[i + 1]
        )
        # Round-robin assignment: neighbours rarely share a worker.
        assert same_as_next < n / 2


class TestOccupancyAccounting:
    def test_assign_adds_estimate(self):
        env, dask, client = make_sched()
        sched = dask.scheduler
        graph = TaskGraph([TaskSpec(key="solo-2b2b2b2b")])
        sched.update_graph(graph)
        ts = sched.tasks["solo-2b2b2b2b"]
        assert ts.occupancy_contrib == 0.5
        assert sched.occupancy[ts.processing_on.address] == 0.5


class TestTransitionRecordFastPath:
    """``make_transition_record`` must be indistinguishable from the
    dataclass constructor — the hot path builds records by filling
    ``__dict__`` directly."""

    def test_fast_constructor_equivalent(self):
        from dataclasses import asdict

        from repro.dasklike.states import (
            TransitionRecord,
            make_transition_record,
        )

        slow = TransitionRecord(
            key="('x', 3)", group="x", prefix="x",
            start_state="waiting", finish_state="processing",
            timestamp=1.25, stimulus="dep-ready",
            worker="w-0-0", source="scheduler",
        )
        fast = make_transition_record(
            "('x', 3)", "x", "x", "waiting", "processing",
            1.25, "dep-ready", "w-0-0", "scheduler",
        )
        assert fast == slow
        assert asdict(fast) == asdict(slow)
        assert isinstance(fast, TransitionRecord)
        with pytest.raises(Exception):
            fast.key = "mutated"  # still frozen
