"""Retries, timeouts, and graceful degradation in the scheduler.

The acceptance bar for the retry path: a task that fails transiently
(its input file appears only after the first attempt) must fail the
whole run without ``retries=`` and succeed with it.
"""

import pytest

from repro.dasklike import DaskConfig, IOOp, TaskGraph, TaskSpec
from repro.dasklike.stealing import WorkStealing

from tests.helpers import make_wms


def late_file_graph(token, retries=None, path=None):
    """A task reading a file that does not exist yet."""
    return TaskGraph([
        TaskSpec(key=f"flaky-{token}",
                 reads=(IOOp(path or f"/lus/late-{token}.bin",
                             "read", 0, 1024),),
                 compute_time=0.01, output_nbytes=16, retries=retries),
        TaskSpec(key=f"after-{token}", deps=(f"flaky-{token}",),
                 compute_time=0.01, output_nbytes=8),
    ])


def run_to_result(env, client, graph, linger=0.0):
    """Drive one graph; returns (results, errors)."""
    results, errors = [], []

    def driver():
        yield env.process(client.connect())
        try:
            result = yield env.process(client.compute(graph,
                                                      optimize=False))
            results.append(result)
        except Exception as exc:  # noqa: BLE001 - we assert on the type
            errors.append(exc)
        if linger:
            yield env.timeout(linger)

    env.run(until=env.process(driver()))
    return results, errors


def create_later(env, cluster, path, at, size=1 << 20):
    """Simulated operator: the missing input lands at ``at`` seconds."""
    def creator():
        yield env.timeout(at)
        cluster.pfs.create_file(path, size)
    env.process(creator())


class TestRetriesRecoverTransientError:
    def test_fails_without_retries(self):
        """Baseline (pre-retry behavior): one transient miss kills the
        run even though the input shows up moments later."""
        env, cluster, dask, client, job = make_wms()
        create_later(env, cluster, "/lus/late-aa01.bin", at=0.5)
        results, errors = run_to_result(
            env, client, late_file_graph("aa01"))
        assert not results
        assert len(errors) == 1
        assert isinstance(errors[0], FileNotFoundError)

    def test_spec_retries_recover(self):
        env, cluster, dask, client, job = make_wms()
        create_later(env, cluster, "/lus/late-aa02.bin", at=0.5)
        results, errors = run_to_result(
            env, client, late_file_graph("aa02", retries=3))
        assert not errors
        (index, values), = results
        assert "after-aa02" in values
        ts = dask.scheduler.tasks["flaky-aa02"]
        assert ts.state in ("memory", "released", "forgotten")
        assert ts.retry_count >= 1
        retry_logs = [e for e in dask.scheduler.logs
                      if "retrying in" in e.message]
        assert retry_logs

    def test_config_wide_retries_recover(self):
        config = DaskConfig(task_retries=3)
        env, cluster, dask, client, job = make_wms(config=config)
        create_later(env, cluster, "/lus/late-aa03.bin", at=0.5)
        results, errors = run_to_result(
            env, client, late_file_graph("aa03"))
        assert not errors and results

    def test_retry_transitions_recorded(self):
        env, cluster, dask, client, job = make_wms()
        create_later(env, cluster, "/lus/late-aa04.bin", at=0.5)
        run_to_result(env, client, late_file_graph("aa04", retries=3))
        retry = [t for t in dask.scheduler.transitions
                 if t.key == "flaky-aa04" and t.stimulus == "retry"]
        # released (budget consumed) then waiting (timer fired), per
        # attempt.
        assert any(t.finish_state == "released" for t in retry)
        assert any(t.finish_state == "waiting" for t in retry)


class TestBackoff:
    def test_delays_grow_exponentially(self):
        config = DaskConfig(retry_backoff_base=0.5, retry_backoff_factor=2.0)
        env, cluster, dask, client, job = make_wms(config=config)
        # The file never appears: both retries burn, then erred.
        results, errors = run_to_result(
            env, client, late_file_graph("ab01", retries=2), linger=1.0)
        assert len(errors) == 1 and isinstance(errors[0], FileNotFoundError)
        delays = []
        for entry in dask.scheduler.logs:
            if "retrying in" in entry.message:
                delays.append(float(
                    entry.message.split("retrying in ")[1].split("s")[0]))
        assert delays == [0.5, 1.0]

    def test_budget_exhaustion_erres_task(self):
        env, cluster, dask, client, job = make_wms()
        results, errors = run_to_result(
            env, client, late_file_graph("ab02", retries=1), linger=1.0)
        assert len(errors) == 1
        ts = dask.scheduler.tasks["flaky-ab02"]
        assert ts.state == "erred"
        assert ts.retry_count == 1
        assert ts.retries_left == 0


class TestTaskTimeout:
    def slow_graph(self, token, timeout=None, retries=0):
        return TaskGraph([
            TaskSpec(key=f"slow-{token}", compute_time=5.0,
                     output_nbytes=8, timeout=timeout, retries=retries),
        ])

    def test_spec_timeout_erres_task(self):
        env, cluster, dask, client, job = make_wms()
        results, errors = run_to_result(
            env, client, self.slow_graph("ac01", timeout=0.5), linger=1.0)
        assert len(errors) == 1
        assert isinstance(errors[0], TimeoutError)
        assert "0.5s timeout" in str(errors[0])
        timed_out = [t for t in dask.scheduler.transitions
                     if t.key == "slow-ac01"
                     and t.stimulus == "task-timeout"]
        assert timed_out
        # The interrupted attempt released its worker-side claim.
        assert env.now < 5.0

    def test_config_timeout_applies(self):
        config = DaskConfig(task_timeout=0.5)
        env, cluster, dask, client, job = make_wms(config=config)
        results, errors = run_to_result(
            env, client, self.slow_graph("ac02"), linger=1.0)
        assert len(errors) == 1 and isinstance(errors[0], TimeoutError)

    def test_timeout_consumes_retry_budget(self):
        env, cluster, dask, client, job = make_wms()
        results, errors = run_to_result(
            env, client, self.slow_graph("ac03", timeout=0.5, retries=1),
            linger=1.0)
        assert len(errors) == 1 and isinstance(errors[0], TimeoutError)
        ts = dask.scheduler.tasks["slow-ac03"]
        assert ts.retry_count == 1
        retry = [t for t in dask.scheduler.transitions
                 if t.key == "slow-ac03" and t.stimulus == "retry"]
        assert retry

    def test_no_timeout_by_default(self):
        env, cluster, dask, client, job = make_wms()
        results, errors = run_to_result(
            env, client, self.slow_graph("ac04"))
        assert not errors and results
        assert not any(t.stimulus == "task-timeout"
                       for t in dask.scheduler.transitions)


class TestGracefulDegradation:
    def test_all_workers_lost_fails_futures(self):
        """Losing the last worker must fail pending futures with a clear
        diagnosis instead of parking the client forever."""
        env, cluster, dask, client, job = make_wms()
        graph = TaskGraph([
            TaskSpec(key=(f"doomed-ad01", i), compute_time=2.0,
                     output_nbytes=8)
            for i in range(8)
        ])

        def killer():
            yield env.timeout(0.3)
            for worker in list(dask.workers):
                dask.scheduler.handle_worker_failure(worker)

        env.process(killer())
        results, errors = run_to_result(env, client, graph, linger=1.0)
        assert not results
        assert len(errors) == 1
        assert "all workers are gone" in str(errors[0])
        assert not dask.scheduler.workers
        for ts in dask.scheduler.tasks.values():
            assert ts.state in ("erred", "memory", "released", "forgotten")

    def test_degradation_transitions_use_no_workers_stimulus(self):
        env, cluster, dask, client, job = make_wms()
        graph = TaskGraph([TaskSpec(key="doomed-ad02", compute_time=2.0,
                                    output_nbytes=8)])

        def killer():
            yield env.timeout(0.3)
            for worker in list(dask.workers):
                dask.scheduler.handle_worker_failure(worker)

        env.process(killer())
        run_to_result(env, client, graph, linger=1.0)
        stimuli = {t.stimulus for t in dask.scheduler.transitions
                   if t.key == "doomed-ad02"}
        assert "no-workers" in stimuli


class TestLivenessMonitorStop:
    def test_stop_mid_interval_suppresses_pending_sweep(self):
        """stop_liveness_monitor() between ticks: the already-scheduled
        tick must not execute one more sweep (it used to fail workers
        the caller had stopped watching)."""
        env, cluster, dask, client, job = make_wms()
        sched = dask.scheduler
        sched.start_liveness_monitor()  # misses=4, interval=heartbeat
        victim = dask.workers[0]
        victim.fail()                   # silent: heartbeats just stop
        env.run(until=env.timeout(1.0))  # not yet stale: no sweep
        assert victim.address in sched.workers
        # Make the victim maximally stale, then stop while the next
        # tick is already scheduled.
        sched._last_heartbeat[victim.address] = env.now - 10.0
        sched.stop_liveness_monitor()
        env.run(until=env.timeout(2.0))  # let the pending tick fire
        assert victim.address in sched.workers
        assert not any("failed heartbeat check" in e.message
                       for e in sched.logs)


class TestResubmitDedup:
    def diamond(self, token):
        return TaskGraph([
            TaskSpec(key=f"root-{token}", compute_time=0.02,
                     output_nbytes=64),
            TaskSpec(key=f"mid1-{token}", deps=(f"root-{token}",),
                     compute_time=0.02, output_nbytes=64),
            TaskSpec(key=f"mid2-{token}", deps=(f"root-{token}",),
                     compute_time=0.02, output_nbytes=64),
            TaskSpec(key=f"sink-{token}",
                     deps=(f"mid1-{token}", f"mid2-{token}"),
                     compute_time=0.02, output_nbytes=8),
        ])

    def test_one_pass_never_resubmits_twice(self):
        """Diamond recovery: reaching the same key along two dependency
        edges of one pass must count each dependency claim exactly once
        (a second full visit used to double-increment
        ``remaining_dependents``, leaking the dependency forever)."""
        env, cluster, dask, client, job = make_wms()
        sched = dask.scheduler
        results, errors = run_to_result(env, client, self.diamond("ae01"))
        assert results and not errors

        sink = sched.tasks["sink-ae01"]
        mid1 = sched.tasks["mid1-ae01"]
        mid2 = sched.tasks["mid2-ae01"]
        root = sched.tasks["root-ae01"]
        assert (mid1.remaining_dependents, mid2.remaining_dependents,
                root.remaining_dependents) == (0, 0, 0)

        seen = set()
        sched._resubmit(sink, seen)
        assert mid1.remaining_dependents == 1
        assert mid2.remaining_dependents == 1
        # root consumed once per mid — reached along two edges, walked
        # (and therefore resubmitted) once.
        assert root.remaining_dependents == 2

        # Second arrival at the sink in the *same* pass (the other
        # diamond edge): even if interleaved recovery work put the key
        # back into a resubmittable state, the pass must not walk its
        # dependencies again.
        saved_state = sink.state
        sink.state = "memory"
        sched._resubmit(sink, seen)
        sink.state = saved_state
        assert mid1.remaining_dependents == 1
        assert mid2.remaining_dependents == 1
        assert root.remaining_dependents == 2

        # The recomputation converges and drains every claim.
        env.run(until=env.timeout(5.0))
        assert (mid1.remaining_dependents, mid2.remaining_dependents,
                root.remaining_dependents) == (0, 0, 0)


class TestStealingFailedWorkerGuards:
    def skewed_graph(self, token, width=16):
        tasks = [TaskSpec(key=f"seed-{token}", compute_time=0.01,
                          output_nbytes=1024)]
        tasks += [
            TaskSpec(key=(f"slow-{token}", i), deps=(f"seed-{token}",),
                     compute_time=1.0, output_nbytes=8)
            for i in range(width)
        ]
        return TaskGraph(tasks)

    def test_balance_never_picks_a_silently_dead_worker(self):
        """A worker that crashed silently (not yet noticed by the
        liveness monitor) is still registered.  ``balance()`` used to
        pick it — its 0.0 occupancy makes it the ideal thief — stealing
        queued work *onto* a corpse."""
        config = DaskConfig(work_stealing=False)
        env, cluster, dask, client, job = make_wms(
            config=config, worker_nodes=2, workers_per_node=2, threads=1)
        sched = dask.scheduler
        balancer = WorkStealing(sched)
        done = []

        def driver():
            yield env.process(client.connect())
            result = yield env.process(
                client.compute(self.skewed_graph("af01"), optimize=False))
            done.append(result)

        proc = env.process(driver())
        # Step until queues have built up on the workers.
        while not any(w.ready for w in dask.workers) and env.now < 5.0:
            env.run(until=env.timeout(0.01))
        assert any(w.ready for w in dask.workers)

        dead = min(dask.workers,
                   key=lambda w: sched.occupancy[w.address])
        dead.fail()  # silent: stays in sched.workers
        assert dead.address in sched.workers

        balancer.balance()
        for event in sched.steal_events:
            assert dead.address not in (event.victim, event.thief)

        # Direct guard: a steal with a dead endpoint must refuse.
        victim = max((w for w in dask.workers if w is not dead),
                     key=lambda w: sched.occupancy[w.address])
        if victim.ready:
            name = next(reversed(victim.ready))
            assert balancer._steal(name, victim, dead) is False
            assert balancer._steal(name, dead, victim) is False

        # Let recovery reclaim the dead worker's queue and finish.
        sched.handle_worker_failure(dead)
        env.run(until=proc)
        assert done
