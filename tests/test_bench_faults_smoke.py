"""The fault-injector overhead benchmark's smoke mode runs green.

``bench_faults_overhead.py --smoke`` re-checks the zero-idle-footprint
contract (identical event streams with an empty schedule attached) on a
tiny ImageProcessing run, so running it here keeps the benchmark from
rotting alongside the faults subsystem.
"""

import importlib.util
import pathlib

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[1]
              / "benchmarks" / "bench_faults_overhead.py")


def test_faults_bench_smoke(capsys):
    spec = importlib.util.spec_from_file_location(
        "bench_faults_overhead_smoke", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "identical with idle injector attached" in out
    assert "overhead:" in out
