"""Flag consistency across the perfrecup subcommands.

Every analysis subcommand shares one parent parser, so ``--out``,
``--format``, and ``--workers`` must parse identically everywhere —
the satellite guarantee of the AnalysisSession API redesign, extended
to the data-lake commands (``ingest``/``query``/``serve``).  The
workflow-output commands (``faults``/``metrics``/``trace``/
``sanitize``) share the ``--out``/``--format`` half of that parent.
"""

import pytest

from repro.cli import ANALYSIS_COMMANDS, OUTPUT_COMMANDS, build_parser

POSITIONAL = {
    "analyze": ["some/run"],
    "compare": ["some/runs"],
    "figures": ["some/run"],
    "zoom": ["some/run"],
    "report": ["some/run"],
    "ingest": ["some/lake", "some/runs"],
    "query": ["some/lake", "/runs"],
    "serve": ["some/lake"],
    "dataplane": ["some/run"],
    "faults": ["imageprocessing"],
    "metrics": ["imageprocessing"],
    "trace": ["imageprocessing"],
    "sanitize": ["imageprocessing"],
}


class TestSharedAnalysisFlags:
    @pytest.mark.parametrize("command", ANALYSIS_COMMANDS)
    def test_accepts_common_flags(self, command):
        parser = build_parser()
        args = parser.parse_args(
            [command, *POSITIONAL[command],
             "--out", "dest", "--format", "json", "--workers", "4"])
        assert args.command == command
        assert args.out == "dest"
        assert args.format == "json"
        assert args.workers == 4

    @pytest.mark.parametrize("command", ANALYSIS_COMMANDS)
    def test_defaults(self, command):
        args = build_parser().parse_args([command, *POSITIONAL[command]])
        assert args.out is None
        assert args.format == "text"
        assert args.workers is None

    @pytest.mark.parametrize("command", ANALYSIS_COMMANDS)
    def test_rejects_unknown_format(self, command, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [command, *POSITIONAL[command], "--format", "xml"])
        assert "invalid choice" in capsys.readouterr().err

    def test_run_takes_workers_too(self):
        args = build_parser().parse_args(
            ["run", "imageprocessing", "--workers", "2"])
        assert args.workers == 2


class TestSharedOutputFlags:
    """faults/metrics/trace/sanitize share --out/--format (no --workers)."""

    @pytest.mark.parametrize("command", OUTPUT_COMMANDS)
    def test_accepts_output_flags(self, command):
        args = build_parser().parse_args(
            [command, *POSITIONAL[command],
             "--out", "dest", "--format", "json"])
        assert args.out == "dest"
        assert args.format == "json"

    @pytest.mark.parametrize("command", OUTPUT_COMMANDS)
    def test_defaults(self, command):
        args = build_parser().parse_args([command, *POSITIONAL[command]])
        assert args.out is None
        # trace's product is the Chrome trace document itself.
        expected = "json" if command == "trace" else "text"
        assert args.format == expected

    @pytest.mark.parametrize("command", OUTPUT_COMMANDS)
    def test_rejects_unknown_format(self, command, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [command, *POSITIONAL[command], "--format", "xml"])
        assert "invalid choice" in capsys.readouterr().err
