"""Flag consistency across the analysis subcommands.

Every analysis subcommand shares one parent parser, so ``--out``,
``--format``, and ``--workers`` must parse identically everywhere —
the satellite guarantee of the AnalysisSession API redesign.
"""

import pytest

from repro.cli import ANALYSIS_COMMANDS, build_parser

POSITIONAL = {
    "analyze": ["some/run"],
    "compare": ["some/runs"],
    "figures": ["some/run"],
    "zoom": ["some/run"],
    "report": ["some/run"],
}


class TestSharedAnalysisFlags:
    @pytest.mark.parametrize("command", ANALYSIS_COMMANDS)
    def test_accepts_common_flags(self, command):
        parser = build_parser()
        args = parser.parse_args(
            [command, *POSITIONAL[command],
             "--out", "dest", "--format", "json", "--workers", "4"])
        assert args.command == command
        assert args.out == "dest"
        assert args.format == "json"
        assert args.workers == 4

    @pytest.mark.parametrize("command", ANALYSIS_COMMANDS)
    def test_defaults(self, command):
        args = build_parser().parse_args([command, *POSITIONAL[command]])
        assert args.out is None
        assert args.format == "text"
        assert args.workers is None

    @pytest.mark.parametrize("command", ANALYSIS_COMMANDS)
    def test_rejects_unknown_format(self, command, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                [command, *POSITIONAL[command], "--format", "xml"])
        assert "invalid choice" in capsys.readouterr().err

    def test_run_takes_workers_too(self):
        args = build_parser().parse_args(
            ["run", "imageprocessing", "--workers", "2"])
        assert args.workers == 2
