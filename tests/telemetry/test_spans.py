"""Span tracer: nesting, deterministic IDs, Chrome export."""

import pytest

from repro.telemetry import SpanTracer, chrome_trace


class TestCompleteSpans:
    def test_add_complete_records_identifiers(self):
        tracer = SpanTracer(run_name="r", seed=1)
        span = tracer.add_complete(
            "imread", start=1.0, stop=2.5, pid="nid00001",
            tid=0x7F0000001000, cat="task", args={"key": "('imread', 0)"})
        assert span.pid == "nid00001"
        assert span.tid == 0x7F0000001000
        assert span.duration == pytest.approx(1.5)
        assert span.trace_id == tracer.trace_id
        assert span.args["key"] == "('imread', 0)"

    def test_span_ids_unique_within_trace(self):
        tracer = SpanTracer()
        ids = {tracer.add_complete("t", 0.0, 1.0).span_id
               for _ in range(50)}
        assert len(ids) == 50


class TestNesting:
    def test_begin_end_nests_per_track(self):
        tracer = SpanTracer()
        outer = tracer.begin("graph", start=0.0, pid="h0", tid=1)
        inner = tracer.begin("task", start=0.5, pid="h0", tid=1)
        assert tracer.open_depth(pid="h0", tid=1) == 2
        assert inner.parent_id == outer.span_id

        closed_inner = tracer.end(stop=1.0, pid="h0", tid=1)
        closed_outer = tracer.end(stop=2.0, pid="h0", tid=1)
        assert closed_inner is inner
        assert closed_outer is outer
        assert inner.stop == 1.0 and outer.stop == 2.0
        assert tracer.open_depth(pid="h0", tid=1) == 0

    def test_tracks_are_independent(self):
        tracer = SpanTracer()
        tracer.begin("a", start=0.0, pid="h0", tid=1)
        b = tracer.begin("b", start=0.0, pid="h1", tid=2)
        assert b.parent_id == ""  # different track, no nesting
        with pytest.raises(ValueError):
            tracer.end(stop=1.0, pid="h9", tid=9)

    def test_complete_span_nests_under_open_span(self):
        tracer = SpanTracer()
        outer = tracer.begin("phase", start=0.0, pid="h0", tid=1)
        leaf = tracer.add_complete("io", start=0.2, stop=0.4,
                                   pid="h0", tid=1)
        assert leaf.parent_id == outer.span_id


class TestDeterminism:
    def test_same_inputs_same_ids(self):
        def build():
            tracer = SpanTracer(run_name="wf", seed=7)
            tracer.add_complete("a", 0.0, 1.0, pid="h0", tid=1)
            tracer.add_complete("b", 1.0, 2.0, pid="h1", tid=2)
            return tracer

        one, two = build(), build()
        assert one.trace_id == two.trace_id
        assert [s.span_id for s in one.spans] == \
            [s.span_id for s in two.spans]

    def test_different_seed_different_trace(self):
        assert SpanTracer(seed=0).trace_id != SpanTracer(seed=1).trace_id


class TestChromeExport:
    def test_document_shape(self):
        tracer = SpanTracer(run_name="wf", seed=0)
        tracer.add_complete("t", 1.0, 3.0, pid="h0", tid=42, cat="task",
                            args={"key": "k"})
        doc = chrome_trace(tracer)
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["trace_id"] == tracer.trace_id

        events = doc["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(metas) == 1 and len(xs) == 1
        span = xs[0]
        assert span["ts"] == pytest.approx(1.0e6)
        assert span["dur"] == pytest.approx(2.0e6)
        assert span["pid"] == "h0" and span["tid"] == 42
        assert span["args"]["key"] == "k"
        assert span["args"]["trace_id"] == tracer.trace_id

    def test_events_sorted_by_start(self):
        tracer = SpanTracer()
        tracer.add_complete("late", 5.0, 6.0, pid="h", tid=1)
        tracer.add_complete("early", 1.0, 2.0, pid="h", tid=1)
        xs = [e for e in chrome_trace(tracer)["traceEvents"]
              if e["ph"] == "X"]
        assert [e["name"] for e in xs] == ["early", "late"]

    def test_json_serializable(self):
        import json
        tracer = SpanTracer()
        tracer.add_complete("t", 0.0, 1.0, pid="h", tid=1,
                            args={"n": 3, "flag": True})
        json.dumps(chrome_trace(tracer))
