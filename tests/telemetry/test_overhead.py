"""Telemetry overhead guard: observing a run must not perturb it.

The whole point of the zero-perturbation design (samplers piggyback on
the engine's monitor hook instead of scheduling their own events) is
that a run with telemetry attached records *exactly* the provenance a
bare run records.  These tests pin that down for ImageProcessing, plus
the provenance join (§III-E3): every task span carries the task key,
pthread ID, and hostname of a provenance ``task_run`` event.
"""

import time

import pytest

from repro.telemetry import Telemetry
from repro.workflows import ImageProcessingWorkflow, run_workflow

SCALE = 0.04
SEED = 3


@pytest.fixture(scope="module")
def baseline():
    start = time.perf_counter()
    result = run_workflow(ImageProcessingWorkflow(scale=SCALE), seed=SEED)
    return result, time.perf_counter() - start


@pytest.fixture(scope="module")
def traced():
    telemetry = Telemetry(interval=0.5, run_name="image_processing",
                          seed=SEED)
    start = time.perf_counter()
    result = run_workflow(ImageProcessingWorkflow(scale=SCALE), seed=SEED,
                          telemetry=telemetry)
    return result, time.perf_counter() - start


class TestZeroPerturbation:
    def test_event_stream_identical(self, baseline, traced):
        off, _ = baseline
        on, _ = traced
        assert on.data.events == off.data.events

    def test_task_level_provenance_identical(self, baseline, traced):
        off, _ = baseline
        on, _ = traced
        assert on.data.events_of_type("task_run") == \
            off.data.events_of_type("task_run")

    def test_wall_clock_overhead_bounded(self, baseline, traced):
        # Generous bound: telemetry may cost something, but not blow up
        # the run.  Guard against O(events) pathologies, not noise.
        _, off_wall = baseline
        _, on_wall = traced
        assert on_wall < max(5.0 * off_wall, off_wall + 2.0)


class TestCoverage:
    def test_metric_families_nonempty(self, traced):
        result, _ = traced
        metrics = {r["metric"]
                   for r in result.telemetry.metrics_records()}
        for family in ("scheduler.", "worker.", "mofka.", "pfs."):
            assert any(m.startswith(family) for m in metrics), family

    def test_spans_join_provenance_identifiers(self, traced):
        result, _ = traced
        prov = {(e["key"], e["thread_id"], e["hostname"])
                for e in result.data.events_of_type("task_run")}
        task_spans = [s for s in result.telemetry.tracer.spans
                      if s.cat == "task"]
        assert len(task_spans) == len(prov)
        for span in task_spans:
            assert (span.args["key"], span.tid, span.pid) in prov

    def test_chrome_trace_covers_all_tasks(self, traced):
        result, _ = traced
        doc = result.telemetry.chrome_trace()
        xs = [e for e in doc["traceEvents"]
              if e["ph"] == "X" and e["cat"] == "task"]
        assert len(xs) == len(result.data.events_of_type("task_run"))
        for event in xs:
            assert event["dur"] >= 0
            assert "span_id" in event["args"]
