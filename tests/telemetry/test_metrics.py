"""Registry label handling, instrument semantics, sampled series."""

import pytest

from repro.telemetry import MetricsRegistry, metrics_table


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("requests", "help text")
        b = registry.counter("requests")
        assert a is b

    def test_kind_conflict_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_names_sorted(self):
        registry = MetricsRegistry()
        registry.gauge("zeta")
        registry.counter("alpha")
        assert registry.names() == ["alpha", "zeta"]


class TestLabels:
    def test_label_order_is_canonicalized(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(1, worker="w0", state="ready")
        counter.inc(2, state="ready", worker="w0")
        assert counter.value(worker="w0", state="ready") == 3.0

    def test_distinct_labelsets_are_independent(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(5, ost=0)
        gauge.set(7, ost=1)
        assert gauge.value(ost=0) == 5.0
        assert gauge.value(ost=1) == 7.0
        assert gauge.value(ost=2) == 0.0

    def test_label_values_stringified(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(1, partition=3)
        assert gauge.value(partition="3") == 1.0

    def test_labelsets_listed_sorted(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        counter.inc(1, k="z")
        counter.inc(1, k="a")
        assert counter.labelsets() == [(("k", "a"),), (("k", "z"),)]


class TestInstruments:
    def test_counter_is_monotonic(self):
        registry = MetricsRegistry()
        counter = registry.counter("c")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("g")
        gauge.set(10)
        gauge.dec(4)
        gauge.inc(1)
        assert gauge.value() == 7.0

    def test_histogram_buckets_and_totals(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.5, 5.0):
            hist.observe(value)
        assert hist.count() == 4
        assert hist.total() == pytest.approx(6.05)
        assert hist.bucket_counts() == [1, 2, 1]  # <=0.1, <=1.0, <=inf

    def test_histogram_always_has_inf_bucket(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0,))
        assert hist.buckets[-1] == float("inf")


class TestSampledSeries:
    def test_sample_appends_one_row_per_labelset(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue")
        gauge.set(3, ost=0)
        gauge.set(1, ost=1)
        appended = registry.sample(now=2.5)
        assert appended == 2
        records = registry.to_records()
        assert [r["value"] for r in records] == [3.0, 1.0]
        assert all(r["time"] == 2.5 for r in records)
        assert all(r["metric"] == "queue" for r in records)

    def test_rows_ordered_by_metric_then_labels(self):
        registry = MetricsRegistry()
        registry.gauge("b").set(1, k="y")
        registry.gauge("b").set(2, k="x")
        registry.gauge("a").set(3)
        registry.sample(now=0.0)
        names = [(r["metric"], r["labels"])
                 for r in registry.to_records()]
        assert names == [("a", ""), ("b", "k=x"), ("b", "k=y")]

    def test_histogram_samples_count_and_sum(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat")
        hist.observe(0.2, producer="p0")
        hist.observe(0.3, producer="p0")
        registry.sample(now=1.0)
        rows = {r["metric"]: r["value"] for r in registry.to_records()}
        assert rows["lat.count"] == 2.0
        assert rows["lat.sum"] == pytest.approx(0.5)

    def test_metrics_table_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1, w="a")
        registry.sample(now=0.5)
        registry.counter("c").inc(1, w="a")
        registry.sample(now=1.0)
        table = metrics_table(registry)
        assert len(table) == 2
        assert table.column_names == ["time", "metric", "kind",
                                      "labels", "value"]
        assert list(table["value"]) == [1.0, 2.0]

    def test_current_skips_histograms(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(4)
        registry.histogram("h").observe(1.0)
        current = registry.current()
        assert current == {"g": {"": 4.0}}
