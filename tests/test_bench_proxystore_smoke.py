"""The data-plane benchmark's smoke mode runs green.

``bench_proxystore.py --smoke`` re-checks the zero-footprint contract
(identical event streams with ``proxy_enabled=False``) and exercises
put/resolve through all three backends on a tiny transfer-bound
ResNet152 run, so running it here keeps the benchmark from rotting
alongside the proxystore subsystem.
"""

import importlib.util
import pathlib

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[1]
              / "benchmarks" / "bench_proxystore.py")


def test_proxystore_bench_smoke(capsys):
    spec = importlib.util.spec_from_file_location(
        "bench_proxystore_smoke", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "identical with proxying disabled" in out
    for backend in ("local", "pfs", "mofka"):
        assert backend in out
    assert "best end-to-end speedup:" in out
