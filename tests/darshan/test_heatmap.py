"""Tests for the Darshan HEATMAP module."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.darshan import HeatmapModule, merge_heatmaps
from repro.darshan.log import DarshanLog
from repro.darshan import read_log, write_log

from tests.darshan.test_darshan import run_runtime_io


class TestHeatmapBasics:
    def test_single_bin_accumulation(self):
        hm = HeatmapModule(nbins=10, initial_bin_width=1.0)
        hm.record("read", 1000, 0.2, 0.8)
        assert hm.read_bytes[0] == 1000
        assert hm.read_ops[0] == 1
        assert hm.write_bytes.sum() == 0

    def test_spanning_op_spread_proportionally(self):
        hm = HeatmapModule(nbins=10, initial_bin_width=1.0)
        hm.record("write", 300, 0.5, 3.5)  # spans bins 0..3
        assert hm.write_bytes[0] == pytest.approx(50)   # 0.5s of 3s
        assert hm.write_bytes[1] == pytest.approx(100)
        assert hm.write_bytes[2] == pytest.approx(100)
        assert hm.write_bytes[3] == pytest.approx(50)
        assert hm.write_ops.sum() == 1

    def test_widening_preserves_totals(self):
        hm = HeatmapModule(nbins=4, initial_bin_width=1.0)
        hm.record("read", 100, 0.0, 0.5)
        hm.record("read", 200, 3.0, 3.5)
        total_before = hm.read_bytes.sum()
        hm.record("read", 50, 30.0, 30.1)  # forces widening
        assert hm.read_bytes.sum() == pytest.approx(total_before + 50)
        assert hm.bin_width > 1.0
        assert hm.horizon >= 30.1

    def test_validation(self):
        with pytest.raises(ValueError):
            HeatmapModule(nbins=1)
        with pytest.raises(ValueError):
            HeatmapModule(initial_bin_width=0)
        hm = HeatmapModule()
        with pytest.raises(ValueError):
            hm.record("seek", 1, 0, 1)
        with pytest.raises(ValueError):
            hm.record("read", 1, 2.0, 1.0)

    def test_roundtrip(self):
        hm = HeatmapModule(nbins=8, initial_bin_width=0.5)
        hm.record("read", 123, 0.1, 0.2)
        hm.record("write", 456, 1.0, 3.0)
        back = HeatmapModule.from_dict(hm.to_dict())
        assert np.allclose(back.read_bytes, hm.read_bytes)
        assert np.allclose(back.write_bytes, hm.write_bytes)
        assert back.bin_width == hm.bin_width


class TestMerge:
    def test_merge_same_width(self):
        a = HeatmapModule(nbins=4, initial_bin_width=1.0)
        b = HeatmapModule(nbins=4, initial_bin_width=1.0)
        a.record("read", 100, 0.0, 0.5)
        b.record("read", 200, 1.0, 1.5)
        merged = merge_heatmaps([a, b])
        assert merged.read_bytes[0] == 100
        assert merged.read_bytes[1] == 200

    def test_merge_widens_to_coarsest(self):
        a = HeatmapModule(nbins=4, initial_bin_width=1.0)
        b = HeatmapModule(nbins=4, initial_bin_width=1.0)
        a.record("read", 100, 0.0, 0.5)
        b.record("read", 200, 10.0, 10.5)  # b widens internally
        merged = merge_heatmaps([a, b])
        assert merged.bin_width == b.bin_width
        assert merged.read_bytes.sum() == pytest.approx(300)

    def test_merge_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_heatmaps([])


@given(st.lists(
    st.tuples(st.sampled_from(["read", "write"]),
              st.integers(1, 10**6),
              st.floats(0, 500), st.floats(0.001, 5.0)),
    min_size=1, max_size=40))
@settings(max_examples=50, deadline=None)
def test_property_total_bytes_conserved(ops):
    hm = HeatmapModule(nbins=16, initial_bin_width=0.5)
    expected_read = expected_write = 0
    for op, nbytes, start, dur in ops:
        hm.record(op, nbytes, start, start + dur)
        if op == "read":
            expected_read += nbytes
        else:
            expected_write += nbytes
    assert hm.read_bytes.sum() == pytest.approx(expected_read, rel=1e-9)
    assert hm.write_bytes.sum() == pytest.approx(expected_write, rel=1e-9)
    assert hm.read_ops.sum() + hm.write_ops.sum() == len(ops)


class TestRuntimeIntegration:
    def test_runtime_populates_heatmap(self):
        runtime = run_runtime_io([
            ("/lus/a", "read", 0, 4 * 2**20, 1),
            ("/lus/b", "write", 0, 2**20, 2),
        ])
        log = runtime.finalize()
        assert log.heatmap is not None
        assert log.heatmap.read_bytes.sum() == pytest.approx(4 * 2**20)
        assert log.heatmap.write_bytes.sum() == pytest.approx(2**20)

    def test_heatmap_survives_log_roundtrip(self, tmp_path):
        runtime = run_runtime_io([("/lus/a", "read", 0, 2**20, 1)])
        path = str(tmp_path / "log.darshan.json.gz")
        write_log(runtime.finalize(), path)
        back = read_log(path)
        assert back.heatmap is not None
        assert back.heatmap.read_bytes.sum() == pytest.approx(2**20)

    def test_report_job_heatmap(self, tmp_path):
        from repro.darshan import DarshanReport
        logs = []
        for rank in range(2):
            runtime = run_runtime_io([
                ("/lus/a", "read", 0, 2**20, 10 + rank)])
            log = runtime.finalize()
            log.rank = rank
            logs.append(log)
        report = DarshanReport(logs)
        merged = report.job_heatmap()
        assert merged is not None
        assert merged.read_bytes.sum() == pytest.approx(2 * 2**20)
