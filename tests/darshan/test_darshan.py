"""Tests for POSIX counters, DXT tracing, logs, and the report layer."""

import pytest

from repro.darshan import (
    DXTModule,
    DXTSegment,
    DarshanLog,
    DarshanReport,
    DarshanRuntime,
    PosixCounters,
    read_log,
    size_bin_label,
    write_log,
)
from repro.platform import ParallelFileSystem, PFSSpec
from repro.sim import Environment, RandomStreams


class TestSizeBins:
    @pytest.mark.parametrize("length,label", [
        (0, "0_100"),
        (100, "0_100"),
        (101, "100_1K"),
        (4 * 2**20, "1M_4M"),
        (80 * 2**20, "10M_100M"),
        (2 * 2**30, "1G_PLUS"),
    ])
    def test_bins(self, length, label):
        assert size_bin_label(length) == label


class TestPosixCounters:
    def test_read_write_accumulation(self):
        c = PosixCounters("/f")
        c.record_open()
        c.record("read", 0, 1000, 1.0, 1.5)
        c.record("read", 1000, 1000, 2.0, 2.2)
        c.record("write", 0, 500, 3.0, 3.1)
        d = c.to_dict()
        assert d["POSIX_READS"] == 2
        assert d["POSIX_WRITES"] == 1
        assert d["POSIX_BYTES_READ"] == 2000
        assert d["POSIX_BYTES_WRITTEN"] == 500
        assert d["POSIX_F_READ_TIME"] == pytest.approx(0.7)
        assert d["POSIX_MAX_BYTE_READ"] == 1999
        assert d["POSIX_F_FASTEST_OP_TIME"] == pytest.approx(0.1)
        assert d["POSIX_F_SLOWEST_OP_TIME"] == pytest.approx(0.5)

    def test_histogram_labels(self):
        c = PosixCounters("/f")
        c.record("read", 0, 50, 0, 1)
        c.record("read", 0, 4 * 2**20, 0, 1)
        d = c.to_dict()
        assert d["SIZE_HISTOGRAM"]["READ_0_100"] == 1
        assert d["SIZE_HISTOGRAM"]["READ_1M_4M"] == 1

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            PosixCounters("/f").record("seek", 0, 1, 0, 1)

    def test_roundtrip(self):
        c = PosixCounters("/f")
        c.record_open()
        c.record("write", 10, 20, 0.0, 0.5)
        back = PosixCounters.from_dict(c.to_dict())
        assert back.to_dict() == c.to_dict()


class TestDXT:
    def seg(self, i=0):
        return DXTSegment(path="/f", op="read", offset=i * 10, length=10,
                          start=float(i), end=float(i) + 0.5,
                          pthread_id=1000 + (i % 2))

    def test_records_with_pthread_id(self):
        mod = DXTModule(buffer_limit=10)
        assert mod.record(self.seg(0))
        assert mod.segments[0].pthread_id == 1000
        assert mod.segments[0].duration == 0.5

    def test_buffer_limit_truncates(self):
        mod = DXTModule(buffer_limit=3)
        results = [mod.record(self.seg(i)) for i in range(5)]
        assert results == [True, True, True, False, False]
        assert mod.truncated
        assert mod.dropped == 2
        assert len(mod.segments) == 3

    def test_groupings(self):
        mod = DXTModule(buffer_limit=100)
        for i in range(6):
            mod.record(self.seg(i))
        assert set(mod.by_thread()) == {1000, 1001}
        assert len(mod.by_thread()[1000]) == 3
        assert set(mod.by_file()) == {"/f"}

    def test_bad_limit(self):
        with pytest.raises(ValueError):
            DXTModule(buffer_limit=0)


def run_runtime_io(ops, dxt_buffer_limit=2048):
    """Run a sequence of (path, op, offset, length, tid) through a runtime."""
    env = Environment()
    pfs = ParallelFileSystem(env, PFSSpec(jitter_sigma=0.0),
                             RandomStreams(1))
    pfs.create_file("/lus/a", 100 * 2**20)
    pfs.create_file("/lus/b", 100 * 2**20)
    runtime = DarshanRuntime(pfs, jobid="123.sim", rank=0,
                             hostname="nid00001",
                             dxt_buffer_limit=dxt_buffer_limit)

    def driver():
        for path, op, offset, length, tid in ops:
            yield from runtime.io(path, op, offset, length, tid)

    env.run(until=env.process(driver()))
    return runtime


class TestRuntime:
    def test_counters_and_dxt_from_io(self):
        runtime = run_runtime_io([
            ("/lus/a", "read", 0, 4 * 2**20, 111),
            ("/lus/a", "read", 4 * 2**20, 4 * 2**20, 111),
            ("/lus/b", "write", 0, 2**20, 222),
        ])
        log = runtime.finalize()
        assert log.total_io_ops == 3
        assert log.total_bytes == 9 * 2**20
        assert log.total_io_time > 0
        assert {s.pthread_id for s in log.dxt_segments} == {111, 222}
        assert not log.dxt_truncated

    def test_truncation_flagged(self):
        ops = [("/lus/a", "read", 0, 1024, 1)] * 10
        runtime = run_runtime_io(ops, dxt_buffer_limit=4)
        log = runtime.finalize()
        assert log.dxt_truncated
        assert log.dxt_dropped == 6
        # POSIX counters keep counting even when DXT drops segments.
        assert log.total_io_ops == 10

    def test_finalize_idempotent(self):
        runtime = run_runtime_io([("/lus/a", "read", 0, 1024, 1)])
        assert runtime.finalize() is runtime.finalize()


class TestLogIO:
    def test_write_read_roundtrip(self, tmp_path):
        runtime = run_runtime_io([
            ("/lus/a", "read", 0, 2**20, 7),
            ("/lus/b", "write", 0, 2**10, 8),
        ])
        log = runtime.finalize()
        path = str(tmp_path / "w0.darshan.json.gz")
        write_log(log, path)
        back = read_log(path)
        assert back.jobid == log.jobid
        assert back.total_io_ops == log.total_io_ops
        assert back.dxt_segments[0].pthread_id == 7
        assert back.files() == ["/lus/a", "/lus/b"]


class TestReport:
    def make_report(self, tmp_path):
        for rank in range(2):
            runtime = run_runtime_io([
                ("/lus/a", "read", 0, 2**20, 100 + rank),
                ("/lus/b", "write", 0, 2**10, 100 + rank),
            ])
            log = runtime.finalize()
            log.rank = rank
            write_log(log, str(tmp_path / f"w{rank}.darshan.json.gz"))
        return DarshanReport.from_directory(str(tmp_path))

    def test_aggregation(self, tmp_path):
        report = self.make_report(tmp_path)
        assert report.total_io_ops == 4
        assert report.distinct_files() == ["/lus/a", "/lus/b"]
        summary = report.summary()
        assert summary["processes"] == 2
        assert summary["distinct_files"] == 2

    def test_per_file_summary(self, tmp_path):
        report = self.make_report(tmp_path)
        rows = report.per_file_summary()
        a_row = next(r for r in rows if r["file"] == "/lus/a")
        assert a_row["reads"] == 2
        assert a_row["processes"] == 2

    def test_dxt_rows_sorted_with_join_keys(self, tmp_path):
        report = self.make_report(tmp_path)
        rows = report.dxt_rows()
        assert len(rows) == 4
        for row in rows:
            assert {"hostname", "pthread_id", "start", "end", "op"} <= set(row)
        starts = [r["start"] for r in rows]
        assert starts == sorted(starts)

    def test_missing_directory_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            DarshanReport.from_directory(str(tmp_path / "empty"))
