"""Unit tests for the pass-by-reference data plane.

Covers the Store front door (threshold policy, put/resolve/evict,
provenance events, retry/fallback on transient unavailability) and all
three simulated backends — worker-local memory, shared-PFS staging, and
the Mofka-backed blob channel — against a real simulated cluster.
"""

import pytest

from repro.mofka import MofkaService
from repro.proxystore import (
    MOFKA_BLOB_TOPIC,
    BackendUnavailable,
    LocalMemoryBackend,
    MofkaBlobBackend,
    PFSStagingBackend,
    Proxy,
    ProxyResolveError,
    Store,
    factory_fingerprint,
    make_backend,
)

from tests.helpers import make_wms

MB = 2**20


def make_plane(backend_kind="local", *, threshold=MB, max_retries=3,
               retry_backoff=0.05, **backend_kwargs):
    """(env, dask, store, mofka) over a small real cluster."""
    env, cluster, dask, client, job = make_wms()
    mofka = MofkaService(env)
    backend = make_backend(backend_kind, env=env, network=cluster.network,
                           pfs=cluster.pfs, mofka=mofka, **backend_kwargs)
    store = Store(env, backend, threshold=threshold,
                  max_retries=max_retries, retry_backoff=retry_backoff)
    return env, dask, store, mofka


def drive(env, gen):
    """Run one store generator to completion; returns (value, error)."""
    box = {}

    def runner():
        try:
            box["value"] = yield from gen
        except (ProxyResolveError, BackendUnavailable) as exc:
            box["error"] = exc

    env.run(until=env.process(runner()))
    return box.get("value"), box.get("error")


def remote_pair(dask):
    """Two live workers on different nodes."""
    first = dask.workers[0]
    other = next(w for w in dask.workers
                 if w.node.name != first.node.name)
    return first, other


class TestProxyHandle:
    def test_fingerprint_is_deterministic(self):
        assert (factory_fingerprint("k1", 10, "pfs")
                == factory_fingerprint("k1", 10, "pfs"))
        p1 = Proxy.create("k1", 10, "pfs")
        p2 = Proxy.create("k1", 10, "pfs")
        assert p1.fingerprint == p2.fingerprint

    def test_fingerprint_separates_key_size_backend(self):
        base = factory_fingerprint("k1", 10, "pfs")
        assert factory_fingerprint("k2", 10, "pfs") != base
        assert factory_fingerprint("k1", 11, "pfs") != base
        assert factory_fingerprint("k1", 10, "mofka") != base


class TestThresholdPolicy:
    def test_threshold_is_inclusive(self):
        env, dask, store, _ = make_plane(threshold=4 * MB)
        assert store.should_proxy(4 * MB)
        assert store.should_proxy(5 * MB)
        assert not store.should_proxy(4 * MB - 1)
        assert not store.should_proxy(0)

    def test_attach_points_scheduler_and_workers_at_store(self):
        env, dask, store, _ = make_plane()
        assert dask.scheduler.proxy_store is None
        store.attach(dask)
        assert dask.scheduler.proxy_store is store
        assert all(w.proxy_store is store for w in dask.workers)


class TestLocalBackend:
    def test_put_then_resolve_charges_one_network_hop(self):
        env, dask, store, _ = make_plane("local")
        owner, consumer = remote_pair(dask)
        drive(env, store.put("blob-a", 64 * MB, owner))
        assert store.has("blob-a")
        assert not store.durable("blob-a")

        t0 = env.now
        got, err = drive(env, store.resolve("blob-a", consumer))
        assert err is None and got == 64 * MB
        assert env.now > t0  # a real transfer took simulated time

    def test_resolve_on_owner_is_free(self):
        env, dask, store, _ = make_plane("local")
        owner, _ = remote_pair(dask)
        drive(env, store.put("blob-b", 8 * MB, owner))
        t0 = env.now
        got, err = drive(env, store.resolve("blob-b", owner))
        assert err is None and got == 8 * MB
        assert env.now == t0

    def test_dead_owner_exhausts_retries_then_raises(self):
        env, dask, store, _ = make_plane("local", max_retries=2,
                                         retry_backoff=0.01)
        owner, consumer = remote_pair(dask)
        drive(env, store.put("blob-c", 8 * MB, owner))
        owner.fail()
        got, err = drive(env, store.resolve("blob-c", consumer))
        assert isinstance(err, ProxyResolveError)
        assert store.n_failed_resolves == 1
        lost = [e for e in store.events if e["type"] == "proxy_resolve"]
        assert lost[-1]["status"] == "lost"
        assert lost[-1]["retries"] == 2


class TestPFSBackend:
    def test_put_stages_a_striped_file(self):
        env, dask, store, _ = make_plane("pfs")
        owner, consumer = remote_pair(dask)
        drive(env, store.put("blob-d", 32 * MB, owner))
        backend = store.backend
        assert backend.pfs.exists(backend._path("blob-d"))
        assert store.durable("blob-d")  # survives the owner's crash
        owner.fail()
        got, err = drive(env, store.resolve("blob-d", consumer))
        assert err is None and got == 32 * MB

    def test_evict_unlinks_and_is_idempotent(self):
        env, dask, store, _ = make_plane("pfs")
        owner, _ = remote_pair(dask)
        drive(env, store.put("blob-e", MB, owner))
        store.evict("blob-e")
        assert not store.has("blob-e")
        assert not store.backend.pfs.exists(store.backend._path("blob-e"))
        store.evict("blob-e")  # second call is a no-op
        assert store.n_evictions == 1


class TestMofkaBackend:
    def test_put_and_resolve_pay_rpc_plus_ingest(self):
        env, dask, store, mofka = make_plane("mofka")
        owner, consumer = remote_pair(dask)
        nbytes = 50 * MB
        t0 = env.now
        drive(env, store.put("blob-f", nbytes, owner))
        expected = mofka.RPC_LATENCY + nbytes / mofka.INGEST_BANDWIDTH
        assert env.now - t0 == pytest.approx(expected)
        t1 = env.now
        got, err = drive(env, store.resolve("blob-f", consumer))
        assert err is None and got == nbytes
        assert env.now - t1 == pytest.approx(expected)

    def test_resolve_stalls_through_partition_outage(self):
        env, dask, store, mofka = make_plane("mofka")
        owner, consumer = remote_pair(dask)
        drive(env, store.put("blob-g", MB, owner))
        partition = store.backend._partition_for("blob-g")
        heal = env.now + 2.0
        mofka.partition_outage(MOFKA_BLOB_TOPIC, partition, heal)
        got, err = drive(env, store.resolve("blob-g", consumer))
        assert err is None and got == MB
        assert env.now >= heal  # waited out the blackout, then resolved
        event = [e for e in store.events
                 if e["type"] == "proxy_resolve"][-1]
        assert event["status"] == "ok"

    def test_blob_topic_never_reaches_the_event_stream(self):
        env, dask, store, mofka = make_plane("mofka")
        owner, _ = remote_pair(dask)
        drive(env, store.put("blob-h", MB, owner))
        assert MOFKA_BLOB_TOPIC not in mofka.topics


class TestProvenanceEvents:
    def test_events_carry_paper_identifiers(self):
        env, dask, store, _ = make_plane("local")
        owner, consumer = remote_pair(dask)
        drive(env, store.put("blob-i", 16 * MB, owner))
        drive(env, store.resolve("blob-i", consumer))
        store.evict("blob-i")
        types = [e["type"] for e in store.events]
        assert types == ["proxy_put", "proxy_resolve", "proxy_evict"]
        for event in store.events:
            for field in ("key", "worker", "hostname", "timestamp"):
                assert field in event, (event["type"], field)
        put, resolve, evict = store.events
        assert put["worker"] == owner.address
        assert put["hostname"] == owner.node.name
        assert resolve["worker"] == consumer.address
        fingerprint = factory_fingerprint("blob-i", 16 * MB, "local")
        assert {e["fingerprint"] for e in store.events} == {fingerprint}

    def test_resolve_records_baseline_saving(self):
        env, dask, store, _ = make_plane("pfs")
        owner, consumer = remote_pair(dask)
        drive(env, store.put("blob-j", 64 * MB, owner))
        drive(env, store.resolve("blob-j", consumer))
        event = [e for e in store.events
                 if e["type"] == "proxy_resolve"][-1]
        assert event["baseline_s"] == pytest.approx(
            64 * MB / store.baseline_bandwidth)
        # The PFS striped read beats the scheduler's flat estimate.
        assert event["duration"] < event["baseline_s"]

    def test_counters_track_traffic(self):
        env, dask, store, _ = make_plane("local")
        owner, consumer = remote_pair(dask)
        drive(env, store.put("blob-k", 2 * MB, owner))
        drive(env, store.resolve("blob-k", consumer))
        store.evict("blob-k")
        description = store.describe()
        assert description["n_puts"] == 1
        assert description["n_resolves"] == 1
        assert description["n_evictions"] == 1
        assert description["bytes_put"] == 2 * MB
        assert description["bytes_resolved"] == 2 * MB
        assert description["backend"]["name"] == "local"


class TestFailureWindows:
    def test_put_from_dying_worker_never_registers(self):
        """A blob half-staged by a crashing owner must not advertise."""
        env, dask, store, _ = make_plane("pfs")
        owner, _ = remote_pair(dask)

        def stage():
            yield from store.put("blob-l", 128 * MB, owner)

        proc = env.process(stage())
        env.run(until=env.timeout(1e-4))  # mid-staging
        owner.fail()
        env.run(until=proc)
        assert not store.has("blob-l")
        assert store.n_puts == 0
        assert store.events == []

    def test_unknown_key_raises_immediately(self):
        env, dask, store, _ = make_plane("local")
        _, consumer = remote_pair(dask)
        got, err = drive(env, store.resolve("never-put", consumer))
        assert isinstance(err, ProxyResolveError)

    def test_transient_unavailability_retries_then_succeeds(self):
        """The first fetch attempts fail; the retry loop recovers and
        the resolve event records how many tries it took."""
        env, dask, store, _ = make_plane("local", max_retries=3,
                                         retry_backoff=0.01)
        owner, consumer = remote_pair(dask)
        drive(env, store.put("blob-m", MB, owner))

        flaky = {"left": 2}
        original = store.backend.fetch

        def flaky_fetch(proxy, worker):
            if flaky["left"] > 0:
                flaky["left"] -= 1
                raise BackendUnavailable("transient blip")
            return original(proxy, worker)

        store.backend.fetch = flaky_fetch
        got, err = drive(env, store.resolve("blob-m", consumer))
        assert err is None and got == MB
        event = [e for e in store.events
                 if e["type"] == "proxy_resolve"][-1]
        assert event["status"] == "ok"
        assert event["retries"] == 2


class TestBackendFactory:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown proxy backend"):
            make_backend("s3")

    def test_each_kind_needs_its_resource(self):
        with pytest.raises(ValueError):
            make_backend("local")
        with pytest.raises(ValueError):
            make_backend("pfs")
        with pytest.raises(ValueError):
            make_backend("mofka")

    def test_builds_each_backend(self):
        env, cluster, dask, client, job = make_wms()
        mofka = MofkaService(env)
        assert isinstance(make_backend("local", network=cluster.network),
                          LocalMemoryBackend)
        assert isinstance(make_backend("pfs", pfs=cluster.pfs),
                          PFSStagingBackend)
        assert isinstance(make_backend("mofka", env=env, mofka=mofka),
                          MofkaBlobBackend)
