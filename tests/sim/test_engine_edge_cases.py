"""Edge-case tests for the simulation engine's failure semantics."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, SimulationError


class TestFailurePropagation:
    def test_allof_fails_if_component_fails(self):
        env = Environment()
        good = env.timeout(1.0)
        bad = env.event()
        caught = []

        def waiter():
            try:
                yield AllOf(env, [good, bad])
            except RuntimeError as exc:
                caught.append(exc)

        def failer():
            yield env.timeout(0.5)
            bad.fail(RuntimeError("component"))

        env.process(waiter())
        env.process(failer())
        env.run()
        assert caught and str(caught[0]) == "component"

    def test_anyof_succeeds_before_failure(self):
        env = Environment()
        fast = env.timeout(0.1, value="fast")
        slow_fail = env.event()
        got = []

        def waiter():
            result = yield AnyOf(env, [fast, slow_fail])
            got.append(result)

        def failer():
            yield env.timeout(1.0)
            slow_fail.fail(RuntimeError("late"))
            slow_fail.defuse()

        env.process(waiter())
        env.process(failer())
        env.run()
        assert got and fast in got[0]

    def test_defused_failure_does_not_crash_run(self):
        env = Environment()
        event = env.event()

        def failer():
            yield env.timeout(0.2)
            event.fail(ValueError("handled elsewhere"))
            event.defuse()

        env.process(failer())
        env.run()  # must not raise

    def test_undefused_failure_crashes_run(self):
        env = Environment()
        event = env.event()

        def failer():
            yield env.timeout(0.2)
            event.fail(ValueError("unhandled"))

        env.process(failer())
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not-an-exception")


class TestConditions:
    def test_condition_with_pre_fired_events(self):
        env = Environment()
        done = env.event()
        done.succeed("early")
        env.run()  # process the trigger
        got = []

        def waiter():
            result = yield AllOf(env, [done])
            got.append(result)

        env.process(waiter())
        env.run()
        assert got and got[0][done] == "early"

    def test_empty_condition_fires_immediately(self):
        env = Environment()
        got = []

        def waiter():
            result = yield AllOf(env, [])
            got.append((env.now, result))

        env.process(waiter())
        env.run()
        assert got == [(0.0, {})]

    def test_cross_environment_rejected(self):
        env1, env2 = Environment(), Environment()
        with pytest.raises(SimulationError):
            AllOf(env1, [env1.timeout(1), env2.timeout(1)])


class TestEventValues:
    def test_value_before_trigger_raises(self):
        env = Environment()
        event = env.event()
        with pytest.raises(SimulationError):
            _ = event.value
        with pytest.raises(SimulationError):
            _ = event.ok

    def test_timeout_carries_value(self):
        env = Environment()
        got = []

        def waiter():
            value = yield env.timeout(1.0, value="payload")
            got.append(value)

        env.process(waiter())
        env.run()
        assert got == ["payload"]

    def test_process_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_step_on_empty_queue_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.step()
