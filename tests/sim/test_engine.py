"""Unit tests for the discrete-event simulation engine."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Interrupt,
    SimulationError,
)


def test_clock_starts_at_zero():
    env = Environment()
    assert env.now == 0.0


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc():
        yield env.timeout(5.0)
        log.append(env.now)

    env.process(proc())
    env.run()
    assert log == [5.0]


def test_timeout_negative_delay_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc():
        while True:
            yield env.timeout(1.0)

    env.process(proc())
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_past_time_rejected():
    env = Environment()
    env.run(until=2.0)
    with pytest.raises(ValueError):
        env.run(until=1.0)


def test_process_return_value_propagates():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        return 42

    def parent(results):
        value = yield env.process(child())
        results.append(value)

    results = []
    env.process(parent(results))
    env.run()
    assert results == [42]


def test_run_until_event_returns_value():
    env = Environment()

    def child():
        yield env.timeout(2.0)
        return "done"

    proc = env.process(child())
    assert env.run(until=proc) == "done"
    assert env.now == 2.0


def test_simultaneous_events_fifo_order():
    env = Environment()
    order = []

    def proc(tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in ("a", "b", "c"):
        env.process(proc(tag))
    env.run()
    assert order == ["a", "b", "c"]


def test_unhandled_process_failure_raises():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(bad())
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_failure_propagates_to_waiter():
    env = Environment()

    def bad():
        yield env.timeout(1.0)
        raise KeyError("inner")

    def waiter(log):
        try:
            yield env.process(bad())
        except KeyError:
            log.append("caught")

    log = []
    env.process(waiter(log))
    env.run()
    assert log == ["caught"]


def test_event_succeed_twice_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)


def test_yield_non_event_is_error():
    env = Environment()

    def bad():
        yield 17

    env.process(bad())
    with pytest.raises(SimulationError, match="non-event"):
        env.run()


def test_all_of_waits_for_all():
    env = Environment()
    times = []

    def waiter():
        yield AllOf(env, [env.timeout(1.0), env.timeout(3.0)])
        times.append(env.now)

    env.process(waiter())
    env.run()
    assert times == [3.0]


def test_any_of_fires_on_first():
    env = Environment()
    times = []

    def waiter():
        yield AnyOf(env, [env.timeout(1.0), env.timeout(3.0)])
        times.append(env.now)

    env.process(waiter())
    env.run()
    assert times == [1.0]


def test_condition_operators():
    env = Environment()
    times = []

    def waiter():
        yield env.timeout(2.0) & env.timeout(4.0)
        times.append(env.now)
        yield env.timeout(1.0) | env.timeout(9.0)
        times.append(env.now)

    env.process(waiter())
    env.run()
    assert times == [4.0, 5.0]


def test_interrupt_reaches_process():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt as exc:
            log.append((env.now, exc.cause))

    def interrupter(target):
        yield env.timeout(3.0)
        target.interrupt("steal")

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [(3.0, "steal")]


def test_interrupted_process_can_continue():
    env = Environment()
    log = []

    def sleeper():
        try:
            yield env.timeout(100.0)
        except Interrupt:
            pass
        yield env.timeout(1.0)
        log.append(env.now)

    def interrupter(target):
        yield env.timeout(2.0)
        target.interrupt()

    target = env.process(sleeper())
    env.process(interrupter(target))
    env.run()
    assert log == [3.0]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick():
        yield env.timeout(1.0)

    def late(target):
        yield env.timeout(5.0)
        with pytest.raises(SimulationError):
            target.interrupt()

    target = env.process(quick())
    env.process(late(target))
    env.run()


def test_deadlock_detected_when_waiting_on_unreachable_event():
    env = Environment()
    never = env.event()

    def waiter():
        yield never

    env.process(waiter())
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=never)


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    env.run()
    assert env.peek() == float("inf")


def test_nested_processes_chain():
    env = Environment()

    def level3():
        yield env.timeout(1.0)
        return 3

    def level2():
        value = yield env.process(level3())
        yield env.timeout(1.0)
        return value + 2

    def level1(results):
        value = yield env.process(level2())
        results.append((env.now, value))

    results = []
    env.process(level1(results))
    env.run()
    assert results == [(2.0, 5)]
