"""Batched process start: one ``Initialize`` event per batch.

``Environment.process_batch`` spawns N processes off a *single*
``(now, -1, seq)`` queue entry — the first process's ``Initialize``
carries the whole batch's resume callbacks.  The contract these tests
pin: the processes behave exactly as N consecutive per-process
``Initialize`` events would (start order, values, interleavings), only
the event count changes.
"""

import heapq

import pytest

from repro.sim import Environment


class CountingMonitor:
    def __init__(self):
        self.scheduled = []
        self.stepped = []
        self._heap = []

    def attach(self, env):
        env.add_monitor(self)
        return self

    def on_schedule(self, event, when, priority, seq, now):
        self.scheduled.append((when, priority, seq))
        heapq.heappush(self._heap, (when, priority, seq))

    def on_step(self, event, when, priority, seq):
        self.stepped.append((when, priority, seq))
        assert (when, priority, seq) == heapq.heappop(self._heap)

    def before_callback(self, event, callback):
        pass


def _worker(env, tag, delay, trace):
    trace.append((tag, "start", env.now))
    yield env.timeout(delay)
    trace.append((tag, "done", env.now))


def test_batch_starts_in_iteration_order():
    env = Environment()
    trace = []
    procs = env.process_batch(
        _worker(env, i, 0.25, trace) for i in range(5))
    assert len(procs) == 5
    env.run()
    starts = [tag for tag, phase, _ in trace if phase == "start"]
    assert starts == [0, 1, 2, 3, 4]


def test_batch_trace_matches_individual_processes():
    batch_trace = []
    env = Environment()
    env.process_batch(
        _worker(env, i, 0.25 * (1 + i % 3), batch_trace) for i in range(6))
    env.run()

    solo_trace = []
    env2 = Environment()
    for i in range(6):
        env2.process(_worker(env2, i, 0.25 * (1 + i % 3), solo_trace))
    env2.run()

    assert batch_trace == solo_trace


def test_batch_schedules_one_initialize_event():
    env = Environment()
    monitor = CountingMonitor().attach(env)
    env.process_batch(
        _worker(env, i, 0.25, []) for i in range(8))
    initializes = [s for s in monitor.scheduled if s[1] == -1]
    assert len(initializes) == 1

    env2 = Environment()
    monitor2 = CountingMonitor().attach(env2)
    for i in range(8):
        env2.process(_worker(env2, i, 0.25, []))
    assert len([s for s in monitor2.scheduled if s[1] == -1]) == 8

    # Both drain in exact heap order (CountingMonitor asserts per step).
    env.run()
    env2.run()
    # Same payload events; the batch saves exactly 7 queue entries.
    assert len(monitor2.stepped) - len(monitor.stepped) == 7


def test_batch_accepts_named_pairs():
    env = Environment()
    procs = env.process_batch(
        ((_worker(env, i, 0.25, []), f"proc-{i}") for i in range(3)),
        name="fallback")
    assert [p.name for p in procs] == ["proc-0", "proc-1", "proc-2"]
    single = env.process_batch([_worker(env, 9, 0.25, [])], name="solo")
    assert single[0].name == "solo"
    env.run()


def test_empty_batch_is_a_no_op():
    env = Environment()
    assert env.process_batch(iter(())) == []
    assert not env.has_events
    env.run()


def test_batch_results_and_interleaving_with_other_traffic():
    env = Environment()
    trace = []

    def outer():
        yield env.timeout(0.1)
        trace.append(("outer", env.now))

    env.process(outer())
    procs = env.process_batch(
        _worker(env, f"b{i}", delay, trace)
        for i, delay in enumerate((0.0625, 0.1875, 0.3125)))
    env.run()
    assert trace == [
        ("b0", "start", 0.0), ("b1", "start", 0.0), ("b2", "start", 0.0),
        ("b0", "done", 0.0625), ("outer", 0.1),
        ("b1", "done", 0.1875), ("b2", "done", 0.3125),
    ]
    assert all(p.processed for p in procs)
