"""Zero-delay fast-lane semantics of the event kernel.

The engine keeps two FIFO lanes next to the binary heap — one for
zero-delay priority-0 events (``succeed``/``fail``/``Timeout(0)``), one
for the priority ``-1`` ``Initialize`` events — because at any moment
each lane is already sorted: the clock never rewinds and the sequence
counter only grows.  These tests pin the contract that makes the lanes
safe: the processing order is *exactly* the ``(time, priority, seq)``
total order the heap alone used to produce.
"""

import heapq

import pytest

from repro.sim import Environment
from repro.sim.engine import SimulationError


class RecordingMonitor:
    """Captures every schedule/step the engine performs."""

    def __init__(self):
        self.scheduled = []
        self.stepped = []

    def attach(self, env):
        env.add_monitor(self)
        return self

    def on_schedule(self, event, when, priority, seq, now):
        self.scheduled.append((when, priority, seq))

    def on_step(self, event, when, priority, seq):
        self.stepped.append((when, priority, seq))

    def before_callback(self, event, callback):
        pass


class ShadowHeapMonitor(RecordingMonitor):
    """Oracle for the pre-fast-lane engine: a plain binary heap.

    Every schedule pushes onto the shadow heap; every step must pop
    exactly the shadow heap's minimum.  If the fast lanes ever reorder
    relative to the single-heap engine, this monitor catches it at the
    first divergent event.
    """

    def __init__(self):
        super().__init__()
        self._heap = []

    def on_schedule(self, event, when, priority, seq, now):
        super().on_schedule(event, when, priority, seq, now)
        heapq.heappush(self._heap, (when, priority, seq))

    def on_step(self, event, when, priority, seq):
        super().on_step(event, when, priority, seq)
        expected = heapq.heappop(self._heap)
        assert (when, priority, seq) == expected, (
            f"fast lane diverged from heap order: stepped "
            f"{(when, priority, seq)}, heap says {expected}")


def _mixed_traffic(env, trace):
    """Exercise all three lanes: heap, fast0, and Initialize."""

    def worker(name, delay):
        for i in range(3):
            yield env.timeout(delay)
            trace.append((name, "woke", env.now))
            done = env.event()
            done.succeed(i)           # fast0 lane
            yield done
            trace.append((name, "done", env.now))

    def spawner():
        yield env.timeout(0.5)
        for i in range(3):            # Initialize lane, same timestamp
            env.process(worker(f"late{i}", 0.2))
            yield env.timeout(0)      # zero-delay Timeout, fast0 lane

    for i in range(3):
        env.process(worker(f"w{i}", 0.3 + 0.1 * i))
    env.process(spawner())


def test_processing_matches_single_heap_order():
    env = Environment()
    monitor = ShadowHeapMonitor().attach(env)
    _mixed_traffic(env, [])
    env.run()                         # ShadowHeapMonitor asserts per step
    assert monitor.stepped, "no events processed"
    times = [t for t, _, _ in monitor.stepped]
    assert times == sorted(times)
    seqs = [s for _, _, s in monitor.stepped]
    assert len(seqs) == len(set(seqs))
    assert set(monitor.stepped) == set(monitor.scheduled)


def test_monitored_and_inline_runs_produce_identical_traces():
    plain_trace = []
    env = Environment()
    _mixed_traffic(env, plain_trace)
    env.run()                         # monitor None → inline fast loop

    monitored_trace = []
    env2 = Environment()
    RecordingMonitor().attach(env2)
    _mixed_traffic(env2, monitored_trace)
    env2.run()                        # monitored → step loop

    assert plain_trace == monitored_trace


def test_initialize_preempts_same_time_zero_delay_events():
    env = Environment()
    order = []

    def driver():
        first = env.event()
        first.succeed()               # fast0, seq 1 (at t=0)
        env.process(noter("spawned"))  # Initialize, priority -1
        yield first
        order.append("driver")

    def noter(tag):
        order.append(tag)
        yield env.timeout(0)

    env.process(driver())
    env.run()
    # Initialize has priority -1, so the spawned process's first slice
    # runs before the already-triggered priority-0 event resumes driver.
    assert order.index("spawned") < order.index("driver")


def test_fast_lane_and_heap_merge_on_peek():
    env = Environment()
    env.timeout(2.0)                  # heap
    assert env.peek() == 2.0
    done = env.event()
    done.succeed()                    # fast0 at now=0
    assert env.peek() == 0.0
    env.step()                        # consumes the fast-lane event
    assert env.peek() == 2.0


def test_zero_delay_events_are_fifo_within_priority():
    env = Environment()
    values = []

    def waiter(event):
        values.append((yield event))

    events = [env.event() for _ in range(5)]
    for i, event in enumerate(events):
        env.process(waiter(event))
    for i, event in enumerate(events):
        event.succeed(i)
    env.run()
    assert values == [0, 1, 2, 3, 4]


def test_deadlock_detected_on_both_run_paths():
    def stuck(env):
        yield env.event()             # never triggered

    env = Environment()
    process = env.process(stuck(env))
    with pytest.raises(SimulationError, match="deadlock"):
        env.run(until=process)        # inline path (no monitor)

    env2 = Environment()
    RecordingMonitor().attach(env2)
    process2 = env2.process(stuck(env2))
    with pytest.raises(SimulationError, match="deadlock"):
        env2.run(until=process2)      # monitored step path


def test_interrupt_removes_cached_resume_callback():
    env = Environment()
    caught = []

    def sleeper():
        try:
            yield env.timeout(10.0)
        except Exception as exc:      # Interrupt
            caught.append(exc.cause)
            yield env.timeout(0.5)

    def interrupter(victim):
        yield env.timeout(1.0)
        victim.interrupt("stop")

    victim = env.process(sleeper())
    env.process(interrupter(victim))
    env.run(until=victim)
    assert caught == ["stop"]
    assert env.now == 1.5
