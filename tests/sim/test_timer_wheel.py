"""Differential fuzzing of the timer-wheel event queue.

The engine's timed lane is a calendar-queue/timer-wheel hybrid (dict
buckets over quantised timestamps + an overflow heap for the sparse
tail) whose one job is to reproduce *exactly* the ``(time, priority,
seq)`` total order a single binary heap would.  These tests pin that
equivalence two independent ways:

1. A shadow-heap oracle monitor: every schedule pushes onto a plain
   ``heapq``; every step must pop exactly the shadow heap's minimum.
   The first divergent event fails with both orderings in hand.
2. Heap-mode differential replay: the same randomized workload runs on
   a default (wheel) environment and a ``wheel_width=0`` (pure-heap)
   environment, and the full step traces must match byte for byte.

The fuzzed distributions are the adversarial ones for a calendar
queue: all-identical timestamps (single mega-bucket), exponential
tails (sparse buckets + overflow horizon), bucket-boundary values
(quantisation edges), and mixed traffic that interleaves the
negative-priority ``Initialize`` fast lane, zero-delay events, and
far-future overflow entries.
"""

import heapq
import random

import pytest

from repro.sim import Environment
from repro.sim.engine import WHEEL_WIDTH, _WHEEL_HORIZON

N_PROCS = 8
N_STEPS = 12
SEEDS = (11, 23, 47)


class OrderOracle:
    """Shadow-heap monitor: asserts heap order at every single step."""

    def __init__(self):
        self._heap = []
        self.stepped = []

    def attach(self, env):
        env.add_monitor(self)
        return self

    def on_schedule(self, event, when, priority, seq, now):
        heapq.heappush(self._heap, (when, priority, seq))

    def on_step(self, event, when, priority, seq):
        self.stepped.append((when, priority, seq))
        expected = heapq.heappop(self._heap)
        assert (when, priority, seq) == expected, (
            f"timer wheel diverged from heap order: stepped "
            f"{(when, priority, seq)}, heap says {expected}")

    def before_callback(self, event, callback):
        pass


def _draw(rng, dist):
    """One scripted action for a fuzz process: a delay or a tag."""
    if dist == "identical":
        return 0.25
    if dist == "clustered":
        return rng.choice((0.125, 0.25, 0.25, 0.25, 0.375))
    if dist == "exponential":
        delay = rng.expovariate(1.0)
        return delay * 1000.0 if rng.random() < 0.1 else delay
    if dist == "boundary":
        # Land exactly on bucket edges and a hair to either side; the
        # quantisation must never reorder equal-or-adjacent deadlines.
        edge = rng.randrange(1, 64) * WHEEL_WIDTH
        return edge + rng.choice((0.0, 0.0, 1e-12, -1e-12))
    if dist == "mixed":
        roll = rng.random()
        if roll < 0.15:
            return "succeed"          # zero-delay fast lane
        if roll < 0.25:
            return "spawn"            # Initialize lane (priority -1)
        if roll < 0.30:
            return "peek"             # may park the wheel cursor early
        if roll < 0.35:
            return _WHEEL_HORIZON * 16.0   # overflow lane
        if roll < 0.45:
            return 0.0                # zero-delay Timeout
        return rng.choice((0.25, rng.expovariate(2.0)))
    raise AssertionError(dist)


DISTRIBUTIONS = ("identical", "clustered", "exponential", "boundary",
                 "mixed")


def _make_script(seed, dist):
    rng = random.Random(seed * 1_000_003 + DISTRIBUTIONS.index(dist))
    return [[_draw(rng, dist) for _ in range(N_STEPS)]
            for _ in range(N_PROCS)]


def _replay(script, wheel_width=None, oracle=True):
    """Run one scripted workload; return (trace, step order)."""
    env = Environment() if wheel_width is None \
        else Environment(wheel_width=wheel_width)
    monitor = OrderOracle().attach(env) if oracle else None
    trace = []

    def proc(name, actions):
        for action in actions:
            if action == "succeed":
                done = env.event()
                done.succeed()
                yield done
            elif action == "spawn":
                env.process(child(name))
                yield env.timeout(0)
            elif action == "peek":
                env.peek()
                yield env.timeout(0.25)
            else:
                yield env.timeout(action)
            trace.append((name, env.now))

    def child(parent):
        yield env.timeout(0.25)
        trace.append((parent, "child", env.now))

    for i, actions in enumerate(script):
        env.process(proc(i, actions))
    env.run()
    steps = monitor.stepped if monitor is not None else None
    return trace, steps


@pytest.mark.parametrize("dist", ["identical", "clustered", "exponential",
                                  "boundary", "mixed"])
@pytest.mark.parametrize("seed", SEEDS)
def test_wheel_matches_shadow_heap(dist, seed):
    script = _make_script(seed, dist)
    trace, steps = _replay(script)    # OrderOracle asserts per step
    assert steps, "no events processed"
    times = [when for when, _, _ in steps]
    assert times == sorted(times)


@pytest.mark.parametrize("dist", ["identical", "clustered", "exponential",
                                  "boundary", "mixed"])
@pytest.mark.parametrize("seed", SEEDS)
def test_wheel_and_pure_heap_produce_identical_traces(dist, seed):
    script = _make_script(seed, dist)
    wheel_trace, wheel_steps = _replay(script)
    heap_trace, heap_steps = _replay(script, wheel_width=0)
    assert wheel_trace == heap_trace
    assert wheel_steps == heap_steps


@pytest.mark.parametrize("seed", SEEDS)
def test_inline_loop_matches_monitored_loop(seed):
    # The unmonitored run() takes the inlined drain loop; a monitor
    # forces the step loop.  Same script, same trace.
    script = _make_script(seed, "mixed")
    inline_trace, _ = _replay(script, oracle=False)
    monitored_trace, _ = _replay(script)
    assert inline_trace == monitored_trace


def test_peek_parks_cursor_then_earlier_schedule_reconciles():
    # peek() may activate a future bucket (parking the drain cursor on
    # it) without advancing the clock; a later schedule that lands in
    # an *earlier* bucket must re-park the cursor eagerly, not fire
    # behind the parked bucket.
    env = Environment()
    order = []

    def late():
        yield env.timeout(1.0)
        order.append(("late", env.now))

    def early():
        yield env.timeout(0.3)
        order.append(("early", env.now))

    env.process(late())
    assert env.peek() == 0.0          # Initialize event
    env.step()                        # start late(); timeout(1.0) pending
    assert env.peek() == 1.0          # parks the cursor on bucket(1.0)
    env.process(early())              # Initialize + bucket(0.3) < bucket(1.0)
    env.run()
    assert order == [("early", 0.3), ("late", 1.0)]


def test_same_bucket_insert_while_cursor_live():
    # A schedule landing in the cursor's own quantum must slot into the
    # live bucket in (when, priority, seq) position, not at the end.
    env = Environment()
    order = []
    quantum = WHEEL_WIDTH

    def proc(tag, delay):
        yield env.timeout(delay)
        order.append((tag, env.now))

    env.process(proc("a", quantum * 0.9))
    assert env.peek() == 0.0
    env.step()                        # Initialize for a
    env.peek()                        # activates a's bucket (quantum 0)
    env.process(proc("b", quantum * 0.5))
    env.run()
    assert order == [("b", quantum * 0.5), ("a", quantum * 0.9)]


def test_exotic_priorities_route_through_overflow_in_order():
    env = Environment()
    fired = []

    def note(tag):
        def callback(_event):
            fired.append((tag, env.now))
        return callback

    for tag, delay, priority in [("p2", 0.25, 2), ("p1", 0.25, 1),
                                 ("p0", 0.25, 0), ("pn", 0.25, -5),
                                 ("far", 0.75, 3)]:
        event = env.event()
        event.callbacks.append(note(tag))
        env._schedule(event, delay=delay, priority=priority)
    env.run()
    assert fired == [("pn", 0.25), ("p0", 0.25), ("p1", 0.25),
                     ("p2", 0.25), ("far", 0.75)]


def test_negative_clock_uses_overflow_lane():
    env = Environment(initial_time=-3.0)
    order = []

    def proc(tag, delay):
        yield env.timeout(delay)
        order.append((tag, env.now))

    env.process(proc("still-negative", 1.0))
    env.process(proc("crosses-zero", 4.0))
    env.run()
    assert order == [("still-negative", -2.0), ("crosses-zero", 1.0)]
    assert env.now == 1.0


def test_horizon_tail_goes_to_overflow_and_merges():
    env = Environment()
    order = []

    def proc(tag, delay):
        yield env.timeout(delay)
        order.append(tag)

    env.process(proc("near", 0.5))
    env.process(proc("far", _WHEEL_HORIZON * 2))
    env.process(proc("near2", 0.75))
    env.run()
    assert order == ["near", "near2", "far"]


def test_wheel_disabled_environment_still_exact():
    env = Environment(wheel_width=0)
    oracle = OrderOracle().attach(env)

    def proc(delay):
        for _ in range(4):
            yield env.timeout(delay)

    for i in range(4):
        env.process(proc(0.25 + 0.125 * i))
    env.run()
    # 4 Initialize + 16 timeouts + 4 process-completion events
    assert len(oracle.stepped) == 24


def test_negative_wheel_width_rejected():
    with pytest.raises(ValueError, match="negative wheel_width"):
        Environment(wheel_width=-1.0)
