"""Unit tests for Resource, Store, and Container primitives."""

import pytest

from repro.sim import Container, Environment, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def user(tag, hold):
        req = res.request()
        yield req
        log.append((tag, env.now))
        yield env.timeout(hold)
        res.release(req)

    env.process(user("a", 5))
    env.process(user("b", 5))
    env.process(user("c", 5))
    env.run()
    assert log == [("a", 0.0), ("b", 0.0), ("c", 5.0)]


def test_resource_fifo_queueing():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(tag):
        req = res.request()
        yield req
        order.append(tag)
        yield env.timeout(1)
        res.release(req)

    for tag in range(5):
        env.process(user(tag))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_resource_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    times = []

    def user():
        with res.request() as req:
            yield req
            yield env.timeout(2)
        times.append(env.now)

    def second():
        yield env.timeout(0.5)
        req = res.request()
        yield req
        times.append(env.now)
        res.release(req)

    env.process(user())
    env.process(second())
    env.run()
    assert times == [2.0, 2.0]
    assert res.count == 0


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_queued_request_cancels_it():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    def impatient(log):
        yield env.timeout(1)
        req = res.request()
        # Give up without ever being granted.
        res.release(req)
        log.append("gave-up")

    log = []
    env.process(holder())
    env.process(impatient(log))
    env.run()
    assert log == ["gave-up"]
    assert res.count == 0


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    got = []

    def consumer():
        item = yield store.get()
        got.append((env.now, item))

    def producer():
        yield env.timeout(4)
        yield store.put("x")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert got == [(4.0, "x")]


def test_store_fifo_item_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_store_bounded_put_blocks():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer():
        yield store.put("a")
        log.append(("put-a", env.now))
        yield store.put("b")
        log.append(("put-b", env.now))

    def consumer():
        yield env.timeout(5)
        item = yield store.get()
        log.append((f"got-{item}", env.now))

    env.process(producer())
    env.process(consumer())
    env.run()
    assert ("put-a", 0.0) in log
    assert ("put-b", 5.0) in log


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    assert len(store) == 2


def test_container_levels():
    env = Environment()
    tank = Container(env, capacity=10, init=5)
    assert tank.level == 5

    def proc():
        yield tank.get(3)
        assert tank.level == 2
        yield tank.put(8)
        assert tank.level == 10

    env.process(proc())
    env.run()


def test_container_get_blocks_until_enough():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    times = []

    def getter():
        yield tank.get(10)
        times.append(env.now)

    def putter():
        yield env.timeout(1)
        yield tank.put(4)
        yield env.timeout(1)
        yield tank.put(6)

    env.process(getter())
    env.process(putter())
    env.run()
    assert times == [2.0]


def test_container_put_blocks_when_full():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    times = []

    def putter():
        yield tank.put(5)
        times.append(env.now)

    def getter():
        yield env.timeout(3)
        yield tank.get(5)

    env.process(putter())
    env.process(getter())
    env.run()
    assert times == [3.0]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=9)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
