"""The ingest benchmark's smoke mode runs green inside the suite.

``bench_perfrecup_ingest.py --smoke`` checks columnar/legacy parity on
a small synthetic compare workload, so running it here keeps the
benchmark (and the legacy reference builders it carries) from rotting.
"""

import importlib.util
import pathlib

BENCH_PATH = (pathlib.Path(__file__).resolve().parents[1]
              / "benchmarks" / "bench_perfrecup_ingest.py")


def test_ingest_bench_smoke(capsys):
    spec = importlib.util.spec_from_file_location(
        "bench_perfrecup_ingest_smoke", BENCH_PATH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    assert module.main(["--smoke"]) == 0
    out = capsys.readouterr().out
    assert "parity: all nine views" in out
    assert "speedup" in out
