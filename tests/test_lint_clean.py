"""CI gate: the real tree must stay lint-clean.

This is the enforcement half of the static-analysis tooling: if a
change introduces a wall-clock call, unseeded RNG, an emission site
missing identifier fields, a stale loop guard, an unguarded
cross-context mutation, or a new O(n)-per-event scan, tier-1 pytest
fails here — the same contract ``perfrecup lint`` checks locally.
The gate covers *all* of ``src/repro``: every rule family, including
the whole-program concurrency/hotpath/provflow passes.
"""

import json
import os
import textwrap

import repro
from repro.cli import main

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))


class TestTreeIsClean:
    def test_lint_whole_package_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_lint_all_subpackages_explicitly(self, capsys):
        subdirs = sorted(
            entry for entry in os.listdir(PACKAGE_DIR)
            if os.path.isdir(os.path.join(PACKAGE_DIR, entry))
            and entry != "__pycache__")
        # The package keeps growing; the gate must not silently narrow.
        for expected in ("sim", "dasklike", "mofka", "darshan",
                         "workflows", "instrument", "telemetry",
                         "faults", "analysis", "core", "lake",
                         "proxystore"):
            assert expected in subdirs
        paths = [os.path.join(PACKAGE_DIR, sub) for sub in subdirs]
        assert main(["lint", *paths]) == 0

    def test_new_families_run_by_default(self, capsys):
        assert main(["lint", "--format", "json", PACKAGE_DIR]) == 0
        document = json.loads(capsys.readouterr().out)
        rules_run = set(document["rules_run"])
        for rule in ("conc-stale-loop-guard", "conc-cross-context-mutation",
                     "conc-monitor-mutation", "hot-linear-scan",
                     "hot-collection-copy", "flow-missing-identifier",
                     "flow-unresolved-emission"):
            assert rule in rules_run


class TestPlantedViolationsStillDetected:
    """Guards against the gate rotting into a tautology."""

    def _plant(self, tmp_path, code):
        planted = tmp_path / "planted.py"
        planted.write_text(textwrap.dedent(code).lstrip("\n"))
        return str(planted)

    def test_planted_wallclock_fails(self, tmp_path, capsys):
        planted = self._plant(tmp_path, """
            import time

            def stamp():
                return time.time()
        """)
        assert main(["lint", planted]) == 1
        assert "det-wallclock" in capsys.readouterr().out

    def test_planted_incomplete_emission_fails(self, tmp_path, capsys):
        planted = self._plant(tmp_path, """
            def emit(producer, env):
                producer.push({"type": "task_run", "key": "k1",
                               "start": env.now})
        """)
        assert main(["lint", planted]) == 1
        out = capsys.readouterr().out
        assert "prov-missing-identifier" in out

    def test_planted_bare_proxy_event_fails(self, tmp_path, capsys):
        """The data-plane event types are in the schema registry: a
        proxy emission missing the paper identifiers must trip the
        gate exactly like a task_run one."""
        planted = self._plant(tmp_path, """
            def emit(producer, env):
                producer.push({"type": "proxy_resolve", "key": "k1",
                               "timestamp": env.now})
        """)
        assert main(["lint", planted]) == 1
        assert "prov-missing-identifier" in capsys.readouterr().out

    def test_planted_stale_loop_guard_fails(self, tmp_path, capsys):
        planted = self._plant(tmp_path, """
            class Stealer:
                def _loop(self):
                    while self._running:
                        yield self.env.timeout(1.0)
                        self.balance()
        """)
        assert main(["lint", planted]) == 1
        assert "conc-stale-loop-guard" in capsys.readouterr().out

    def test_planted_cross_context_race_fails(self, tmp_path, capsys):
        planted = self._plant(tmp_path, """
            class Scheduler:
                def task_finished(self, key):
                    ts = self.tasks[key]
                    ts.state = "memory"

            class WorkStealing:
                def start(self):
                    self._running = True
                    self.env.process(self._loop())

                def _loop(self):
                    while self._running:
                        yield self.env.timeout(1.0)
                        if not self._running:
                            return
                        self.balance()

                def balance(self):
                    for key in self.pending:
                        self._steal(key)

                def _steal(self, key):
                    ts = self.scheduler.tasks[key]
                    ts.state = "stolen"
        """)
        assert main(["lint", planted]) == 1
        assert "conc-cross-context-mutation" in capsys.readouterr().out

    def test_planted_hot_scan_fails(self, tmp_path, capsys):
        planted = self._plant(tmp_path, """
            class Scheduler:
                def submit(self, spec):
                    self.env.process(self._dispatch(spec))

                def _dispatch(self, spec):
                    total = sum(self.occupancy.values())
                    yield self.env.timeout(total)
        """)
        assert main(["lint", planted]) == 1
        assert "hot-linear-scan" in capsys.readouterr().out

    def test_planted_flow_violation_fails(self, tmp_path, capsys):
        planted = self._plant(tmp_path, """
            def emit(producer, env, key):
                payload = {"type": "task_run", "key": key}
                payload["start"] = env.now
                producer.push(payload)
        """)
        assert main(["lint", planted]) == 1
        assert "flow-missing-identifier" in capsys.readouterr().out


class TestLintCliFlags:
    """The maintenance flags the gate and CI scripts rely on."""

    def test_jobs_output_identical(self, capsys):
        target = os.path.join(PACKAGE_DIR, "analysis")
        assert main(["lint", "--format", "json", target]) == 0
        serial = capsys.readouterr().out
        assert main(["lint", "--format", "json", "--jobs", "4",
                     target]) == 0
        assert capsys.readouterr().out == serial

    def test_prune_baseline_flow(self, tmp_path, capsys):
        planted = tmp_path / "planted.py"
        planted.write_text("import time\nt = time.time()\n")
        baseline = str(tmp_path / "baseline.json")
        assert main(["lint", str(planted),
                     "--write-baseline", baseline]) == 0
        capsys.readouterr()

        # Fix the code: the entry goes stale and a normal run warns.
        planted.write_text("t = 0.0\n")
        assert main(["lint", str(planted), "--baseline", baseline]) == 0
        captured = capsys.readouterr()
        assert "matches no finding" in captured.err
        assert "--prune-baseline" in captured.err

        assert main(["lint", str(planted), "--baseline", baseline,
                     "--prune-baseline"]) == 0
        assert "dropped 1" in capsys.readouterr().out
        document = json.loads(open(baseline).read())
        assert document["entries"] == []

        # Pruned baseline no longer warns.
        assert main(["lint", str(planted), "--baseline", baseline]) == 0
        assert "no finding" not in capsys.readouterr().err

    def test_prune_requires_baseline(self, tmp_path, capsys):
        planted = tmp_path / "planted.py"
        planted.write_text("x = 1\n")
        assert main(["lint", str(planted), "--prune-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err
