"""CI gate: the real tree must stay lint-clean.

This is the enforcement half of the determinism/provenance tooling: if
a change introduces a wall-clock call, unseeded RNG, unordered
iteration, or an emission site missing identifier fields, tier-1
pytest fails here — the same contract ``perfrecup lint`` checks
locally.
"""

import os
import textwrap

import repro
from repro.cli import main

PACKAGE_DIR = os.path.dirname(os.path.abspath(repro.__file__))


class TestTreeIsClean:
    def test_lint_whole_package_exits_zero(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "0 finding(s)" in out

    def test_lint_simulated_paths_explicitly(self, capsys):
        paths = [os.path.join(PACKAGE_DIR, sub) for sub in
                 ("sim", "dasklike", "mofka", "darshan", "workflows",
                  "instrument", "telemetry", "faults")]
        assert main(["lint", *paths]) == 0


class TestPlantedViolationsStillDetected:
    """Guards against the gate rotting into a tautology."""

    def test_planted_wallclock_fails(self, tmp_path, capsys):
        planted = tmp_path / "planted.py"
        planted.write_text(textwrap.dedent("""
            import time

            def stamp():
                return time.time()
        """))
        assert main(["lint", str(planted)]) == 1
        assert "det-wallclock" in capsys.readouterr().out

    def test_planted_incomplete_emission_fails(self, tmp_path, capsys):
        planted = tmp_path / "planted.py"
        planted.write_text(textwrap.dedent("""
            def emit(producer, env):
                producer.push({"type": "task_run", "key": "k1",
                               "start": env.now})
        """))
        assert main(["lint", str(planted)]) == 1
        out = capsys.readouterr().out
        assert "prov-missing-identifier" in out
