"""Tests for the batch-job layer."""

import pytest

from repro.jobs import BatchSystem, JobSpec
from repro.platform import Cluster, ClusterSpec
from repro.sim import Environment, RandomStreams


class TestJobSpec:
    def test_paper_default_shape(self):
        spec = JobSpec.paper_default()
        assert spec.worker_nodes == 2
        assert spec.workers_per_node == 4
        assert spec.threads_per_worker == 8
        assert spec.total_nodes == 3          # +1 scheduler node
        assert spec.total_workers == 8
        assert spec.total_threads == 64

    def test_script_rendering(self):
        script = JobSpec.paper_default("wf").render_script()
        assert script.startswith("#!/bin/bash")
        assert "#PBS -N wf" in script
        assert "select=3" in script
        assert "dask scheduler" in script
        assert "--nthreads 8" in script
        assert "module load PrgEnv-gnu" in script

    def test_describe_fields(self):
        meta = JobSpec.paper_default().describe()
        for field in ("worker_nodes", "workers_per_node",
                      "threads_per_worker", "walltime_limit", "queue",
                      "modules"):
            assert field in meta


def submit(env, batch, spec):
    return env.run(until=env.process(batch.submit(spec)))


class TestBatchSystem:
    def make(self, mean_queue_wait=0.0):
        env = Environment()
        streams = RandomStreams(3)
        cluster = Cluster(env, ClusterSpec(num_nodes=16), streams)
        return env, cluster, BatchSystem(env, cluster, streams,
                                         mean_queue_wait=mean_queue_wait)

    def test_submit_allocates_and_logs(self):
        env, cluster, batch = self.make()
        job = submit(env, batch, JobSpec.paper_default())
        assert len(job.nodes) == 3
        assert job.scheduler_node is job.nodes[0]
        assert len(job.worker_nodes) == 2
        assert job.log and "started" in job.log[0][1]
        assert job.job_id.endswith(".polaris-sim")

    def test_queue_wait_delays_start(self):
        env, cluster, batch = self.make(mean_queue_wait=100.0)
        job = submit(env, batch, JobSpec.paper_default())
        assert job.start_time > job.submit_time

    def test_complete_releases_nodes(self):
        env, cluster, batch = self.make()
        spec = JobSpec(worker_nodes=14, scheduler_nodes=1)
        job = submit(env, batch, spec)
        batch.complete(job)
        assert job.end_time is not None
        # The freed nodes are allocatable again.
        again = submit(env, batch, spec)
        assert len(again.nodes) == 15

    def test_job_ids_unique(self):
        env, cluster, batch = self.make()
        a = submit(env, batch, JobSpec(worker_nodes=1))
        b = submit(env, batch, JobSpec(worker_nodes=1))
        assert a.job_id != b.job_id

    def test_describe_captures_provenance(self):
        env, cluster, batch = self.make()
        job = submit(env, batch, JobSpec.paper_default())
        meta = job.describe()
        assert meta["job_id"] == job.job_id
        assert len(meta["nodes"]) == 3
        assert meta["script"].startswith("#!")
        assert isinstance(meta["switches"], list)
        assert meta["log"]
