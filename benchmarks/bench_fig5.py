"""Figure 5 — Time spent in interworker communication vs message size
for ResNet152, split by intra- vs inter-node.

Expected shape (§IV-D2): durations spread widely at fixed sizes; a
cluster of long-duration small messages near the beginning of the
workflow, split between intra- and inter-node endpoints.
"""

import numpy as np

from repro.core import (
    AnalysisSession,
    comm_scatter,
    comm_summary,
    fig5_svg,
    format_records,
    slow_small_messages,
    write_svg,
)

from conftest import OUT_DIR, emit


def test_fig5_communication_scatter(bench_env, benchmark):
    result = bench_env.one_run("ResNet152")
    comms = AnalysisSession.of(result.data).comm_view()
    scatter = benchmark.pedantic(comm_scatter, args=(comms,),
                                 rounds=1, iterations=1)

    summary = comm_summary(comms)
    slow = slow_small_messages(comms, size_threshold=2 * 2**20,
                               duration_factor=4.0)

    sample = scatter.head(20).to_records()
    for row in sample:
        row["duration"] = round(row["duration"], 6)
        row["start"] = round(row["start"], 3)
    slow_rows = slow.head(15).to_records()
    for row in slow_rows:
        row["duration"] = round(row["duration"], 5)
        row["start"] = round(row["start"], 3)

    text = (
        format_records(
            [{"locality": k, **v} for k, v in summary.items()
             if isinstance(v, dict)],
            title=f"Communication summary ({summary['n_total']} transfers)")
        + "\n\n"
        + format_records(sample, title=f"Scatter series (first 20 of "
                                       f"{len(scatter)})")
        + "\n\n"
        + format_records(
            slow_rows,
            columns=["nbytes", "duration", "same_node", "start"],
            title=f"Anomalously slow small messages ({len(slow)} found)")
    )
    emit("fig5_comm_scatter", text)
    write_svg(fig5_svg(scatter), f"{OUT_DIR}/fig5_comm_scatter.svg")

    # Shape assertions:
    assert summary["n_total"] > 0
    assert summary["intranode"]["count"] > 0
    assert summary["internode"]["count"] > 0
    # Same-size messages show wide duration spread (the figure's point):
    sizes = comms["nbytes"].astype(np.int64)
    modal = np.bincount(sizes % 2**31).argmax()
    same = comms.filter(sizes % 2**31 == modal)
    if len(same) >= 10:
        durations = same["duration"].astype(float)
        assert durations.max() > 2 * np.median(durations)
