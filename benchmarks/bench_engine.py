#!/usr/bin/env python
"""Simulation-kernel benchmark: event throughput and repetition scaling.

Two tiers, mirroring how the engine is actually exercised:

* **micro** — synthetic event storms hammering the kernel's hot paths,
  each cell measured on **both** timed-lane implementations: the timer
  wheel (default) and the pure binary heap (``wheel_width=0``), so the
  wheel-vs-heap ablation is a first-class column:

  - ``timeout_ring``: many processes sleeping on positive-delay
    timeouts spread over distinct deadlines (generic timed traffic);
  - ``clustered_herd``: the wheel's acceptance cell — a large herd
    beating on one shared period, so timestamps cluster into few
    quanta (the timeout/heartbeat shape real schedulers generate);
  - ``zero_delay``: producer/consumer pairs over a :class:`Store`
    whose puts/gets succeed immediately (the zero-delay fast lane:
    ``succeed()``/``Initialize`` traffic that never touches the
    timed lane);
  - ``mixed``: a 50/50 interleaving of timeouts and immediate events,
    closest to what a real workflow run generates.

  Throughput is *scheduled events per second* (the engine's ``_seq``
  counter over wall time), max over interleaved repetitions (wheel and
  heap alternate inside each repetition so CPU-frequency drift hits
  both equally), with the garbage collector paused in the timed
  region.

* **run_many** — end-to-end repetition fan-out across the paper
  workflows: serial vs. thread vs. process executors (asserting
  byte-identical event streams per ``run_index``), plus a process-pool
  speedup curve over worker counts.  ``meta.cpus`` records the cores
  actually available — process-pool speedup is bounded by it.

Run::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke
    PYTHONPATH=src python benchmarks/bench_engine.py --json BENCH_engine.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.sim import Environment, Store  # noqa: E402
from repro.sim.engine import Timeout  # noqa: E402

OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "out", "engine.txt")

#: Wall-time budget for ``--smoke`` (seconds): every micro cell —
#: including both sides of the wheel-vs-heap ablation — plus the tiny
#: run_many pass must finish inside it, or the run exits 1.
SMOKE_BUDGET_SECONDS = 90.0


# ---------------------------------------------------------------------------
# micro workloads
# ---------------------------------------------------------------------------

def _timeout_ring(n_procs: int, n_steps: int,
                  wheel_width=None) -> Environment:
    """Timed storm over distinct deadlines (one period per process)."""
    env = _env(wheel_width)

    def sleeper(delay):
        for _ in range(n_steps):
            yield env.timeout(delay)

    for i in range(n_procs):
        env.process(sleeper(0.5 + 0.01 * i))
    return env


def _clustered_herd(n_procs: int, n_steps: int,
                    wheel_width=None) -> Environment:
    """The wheel's home turf: a herd beating on one shared period.

    Every wake-up schedules the next beat at ``now + 0.25``, so all
    pending deadlines cluster into a handful of wheel quanta — the
    timeout-ring/heartbeat shape that makes a binary heap pay its
    O(log n) on every one of ``n_procs`` sift-downs.  Timeouts are
    constructed directly (not via ``env.timeout``) exactly as the
    engine-internal hot paths do.
    """
    env = _env(wheel_width)

    def beater():
        for _ in range(n_steps):
            yield Timeout(env, 0.25)

    for _ in range(n_procs):
        env.process(beater())
    return env


def _zero_delay(n_pairs: int, n_items: int,
                wheel_width=None) -> Environment:
    """Fast-lane storm: immediate Store put/get succeed() traffic."""
    env = _env(wheel_width)

    def producer(store):
        for i in range(n_items):
            yield store.put(i)

    def consumer(store):
        for _ in range(n_items):
            yield store.get()

    for _ in range(n_pairs):
        store = Store(env)
        env.process(producer(store))
        env.process(consumer(store))
    return env


def _mixed(n_procs: int, n_steps: int, wheel_width=None) -> Environment:
    """Alternating timeout / immediate-event traffic."""
    env = _env(wheel_width)

    def worker(delay):
        for i in range(n_steps):
            yield env.timeout(delay)
            done = env.event()
            done.succeed(i)
            yield done

    for i in range(n_procs):
        env.process(worker(0.25 + 0.01 * i))
    return env


def _env(wheel_width):
    return Environment() if wheel_width is None \
        else Environment(wheel_width=wheel_width)


#: name -> (builder, (n_procs, n_steps) sizer).  ``clustered_herd``
#: uses a wide/shallow shape (many processes, few beats each) because
#: the wheel's win scales with how many deadlines share a quantum.
MICRO_WORKLOADS = {
    "timeout_ring": (_timeout_ring, lambda scale: (50, scale)),
    "clustered_herd": (_clustered_herd,
                       lambda scale: (25 * scale, 8)),
    "zero_delay": (_zero_delay, lambda scale: (50, scale)),
    "mixed": (_mixed, lambda scale: (50, scale)),
}


def _timed_run(env: Environment) -> float:
    """Drain ``env`` with the collector paused; return elapsed seconds."""
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        env.run()
        return time.perf_counter() - start
    finally:
        gc.enable()


def run_micro(repeats: int, scale: int) -> dict:
    """Wheel-vs-heap matrix: max-of-``repeats`` events/s per cell.

    Repetitions interleave the two kernel variants so slow container
    drift (shared-CPU noise is ±10-20% here) degrades both columns of
    a cell equally instead of biasing the ratio.
    """
    results: dict[str, dict] = {}
    for name, (build, sizer) in MICRO_WORKLOADS.items():
        n_procs, n_steps = sizer(scale)
        best = {"wheel": 0.0, "heap": 0.0}
        events = {"wheel": 0, "heap": 0}
        pair = (("wheel", None), ("heap", 0))
        for rep in range(repeats):
            # Alternate which variant goes first so burst-scheduled
            # (cgroup-throttled) CPU time can't systematically favour
            # one side of the ablation.
            for variant, width in (pair if rep % 2 == 0
                                   else tuple(reversed(pair))):
                env = build(n_procs, n_steps, wheel_width=width)
                elapsed = _timed_run(env)
                events[variant] = env._seq
                best[variant] = max(best[variant], env._seq / elapsed)
        assert events["wheel"] == events["heap"], \
            f"{name}: wheel and heap processed different event counts"
        results[name] = {
            "events": events["wheel"],
            "wheel_events_per_s": round(best["wheel"]),
            "heap_events_per_s": round(best["heap"]),
            "wheel_vs_heap": round(best["wheel"] / best["heap"], 2),
        }
    return results


# ---------------------------------------------------------------------------
# end-to-end run_many scaling
# ---------------------------------------------------------------------------

def run_scaling(scale: float, n_runs: int, workers: int,
                workflows: list[str],
                worker_curve: list[int] | None = None) -> dict:
    from functools import partial

    from repro.workflows import (
        ImageProcessingWorkflow,
        ResNet152Workflow,
        XGBoostWorkflow,
        run_many,
    )

    factories = {
        "ImageProcessing": ImageProcessingWorkflow,
        "ResNet152": ResNet152Workflow,
        "XGBOOST": XGBoostWorkflow,
    }

    results: dict[str, dict] = {}
    for name in workflows:
        factory = partial(factories[name], scale=scale)
        timings: dict[str, float] = {}
        streams: dict[str, list] = {}
        for executor in ("serial", "thread", "process"):
            gc.collect()
            start = time.perf_counter()
            runs = run_many(factory, n_runs=n_runs, seed=1,
                            workers=workers, executor=executor)
            timings[executor] = time.perf_counter() - start
            streams[executor] = [r.data.events for r in runs]
        if not (streams["serial"] == streams["thread"]
                == streams["process"]):
            raise AssertionError(
                f"{name}: event streams differ across executors")
        row = {
            "n_runs": n_runs,
            "workers": workers,
            "serial_s": round(timings["serial"], 3),
            "thread_s": round(timings["thread"], 3),
            "process_s": round(timings["process"], 3),
            "speedup_thread": round(
                timings["serial"] / timings["thread"], 2),
            "speedup_process": round(
                timings["serial"] / timings["process"], 2),
        }
        if worker_curve:
            curve = []
            for n_workers in worker_curve:
                gc.collect()
                start = time.perf_counter()
                run_many(factory, n_runs=n_runs, seed=1,
                         workers=n_workers, executor="process")
                process_s = time.perf_counter() - start
                curve.append({
                    "workers": n_workers,
                    "process_s": round(process_s, 3),
                    "speedup": round(timings["serial"] / process_s, 2),
                })
            row["worker_curve"] = curve
        results[name] = row
    return results


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------

def render(document: dict) -> str:
    lines = [f"engine benchmark (python {document['meta']['python']}, "
             f"{document['meta']['cpus']} cpu(s))"]
    lines.append("\nmicro (events/second, max of "
                 f"{document['meta']['repeats']} interleaved reps, "
                 "gc off):")
    lines.append(f"  {'workload':<16} {'events':>9}  {'wheel ev/s':>12}  "
                 f"{'heap ev/s':>12}  {'wheel/heap':>10}")
    for name, row in document["micro"].items():
        lines.append(f"  {name:<16} {row['events']:>9}  "
                     f"{row['wheel_events_per_s']:>12,}  "
                     f"{row['heap_events_per_s']:>12,}  "
                     f"{row['wheel_vs_heap']:>9.2f}x")
    for name, row in document.get("run_many", {}).items():
        lines.append(
            f"\nrun_many {name}: n_runs={row['n_runs']} "
            f"workers={row['workers']}\n"
            f"  serial  {row['serial_s']:>7.3f} s\n"
            f"  thread  {row['thread_s']:>7.3f} s "
            f"({row['speedup_thread']:.2f}x)\n"
            f"  process {row['process_s']:>7.3f} s "
            f"({row['speedup_process']:.2f}x)\n"
            f"  event streams identical across executors: yes")
        for point in row.get("worker_curve", []):
            lines.append(f"  process workers={point['workers']}: "
                         f"{point['process_s']:.3f} s "
                         f"({point['speedup']:.2f}x)")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=9,
                        help="interleaved passes per micro cell "
                             "(default 9)")
    parser.add_argument("--micro-scale", type=int, default=2000,
                        help="steps per process in micro workloads")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workflow scale for the run_many tier")
    parser.add_argument("--runs", type=int, default=8,
                        help="repetitions in the run_many tier (default 8)")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool width in the run_many tier (default 4)")
    parser.add_argument("--worker-curve", default="1,2,4",
                        help="comma-separated process-pool widths for "
                             "the speedup curve (default 1,2,4; '' to "
                             "skip)")
    parser.add_argument("--workflows", default="ImageProcessing",
                        help="comma-separated subset of "
                             "ImageProcessing,ResNet152,XGBOOST "
                             "(default: ImageProcessing; 'all' for all)")
    parser.add_argument("--micro-only", action="store_true",
                        help="skip the end-to-end run_many tier")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI under a wall-time "
                             "budget: correctness + plumbing, no "
                             "artifact write")
    parser.add_argument("--json", default=None,
                        help="also write the result document to this path")
    args = parser.parse_args(argv)

    smoke_start = time.perf_counter()
    repeats = 1 if args.smoke else args.repeats
    micro_scale = 20 if args.smoke else args.micro_scale

    document = {
        "meta": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "repeats": repeats,
        },
        "micro": run_micro(repeats, micro_scale),
    }
    if not args.micro_only:
        names = (["ImageProcessing", "ResNet152", "XGBOOST"]
                 if args.workflows == "all"
                 else [w.strip() for w in args.workflows.split(",")])
        n_runs = 2 if args.smoke else args.runs
        workers = 2 if args.smoke else args.workers
        scale = min(args.scale, 0.03) if args.smoke else args.scale
        curve = [] if args.smoke else [
            int(w) for w in args.worker_curve.split(",") if w.strip()]
        document["run_many"] = run_scaling(scale, n_runs, workers, names,
                                           worker_curve=curve)

    text = render(document)
    print(text)

    if args.smoke:
        # Budget guard: every micro cell must have produced both sides
        # of the wheel-vs-heap ablation, and the whole pass must land
        # inside the wall-time budget — a silent 10x kernel regression
        # busts the budget instead of shipping unnoticed.
        elapsed = time.perf_counter() - smoke_start
        for name, row in document["micro"].items():
            if row["wheel_events_per_s"] <= 0 \
                    or row["heap_events_per_s"] <= 0:
                print(f"smoke FAILED: {name} ablation cell incomplete",
                      file=sys.stderr)
                return 1
        if elapsed > SMOKE_BUDGET_SECONDS:
            print(f"smoke pass took {elapsed:.1f} s, over the "
                  f"{SMOKE_BUDGET_SECONDS:.1f} s budget",
                  file=sys.stderr)
            return 1
        print(f"smoke OK: {elapsed:.1f} s, within budget "
              f"({SMOKE_BUDGET_SECONDS:.0f} s), wheel-vs-heap ablation "
              f"covered for {len(document['micro'])} cells")
    else:
        os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
        with open(OUT_PATH, "a", encoding="utf-8") as fh:
            fh.write(text + "\n\n")
        print(f"(appended to {OUT_PATH})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        print(f"(wrote {args.json})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
