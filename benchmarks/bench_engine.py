#!/usr/bin/env python
"""Simulation-kernel benchmark: event throughput and repetition scaling.

Two tiers, mirroring how the engine is actually exercised:

* **micro** — synthetic event storms hammering the kernel's two hot
  paths in isolation:

  - ``timeout_ring``: many processes sleeping on positive-delay
    timeouts (binary-heap traffic);
  - ``zero_delay``: producer/consumer pairs over a :class:`Store`
    whose puts/gets succeed immediately (the zero-delay fast lane:
    ``succeed()``/``Initialize`` traffic that never needs the heap);
  - ``mixed``: a 50/50 interleaving of both, closest to what a real
    workflow run generates.

  Throughput is reported as *scheduled events per second* (the
  engine's ``_seq`` counter over wall time).

* **run_many** — end-to-end repetition fan-out across the three paper
  workflows, serial vs. thread pool vs. process pool, asserting the
  event streams stay identical per ``run_index`` regardless of the
  executor (the determinism contract parallelism must not break).

Run::

    PYTHONPATH=src python benchmarks/bench_engine.py
    PYTHONPATH=src python benchmarks/bench_engine.py --smoke
    PYTHONPATH=src python benchmarks/bench_engine.py --json BENCH_engine.json
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.sim import Environment, Store  # noqa: E402

OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "out", "engine.txt")


# ---------------------------------------------------------------------------
# micro workloads
# ---------------------------------------------------------------------------

def _timeout_ring(n_procs: int, n_steps: int) -> Environment:
    """Heap-dominated storm: every event is a positive-delay timeout."""
    env = Environment()

    def sleeper(delay):
        for _ in range(n_steps):
            yield env.timeout(delay)

    for i in range(n_procs):
        env.process(sleeper(0.5 + 0.01 * i))
    return env

def _zero_delay(n_pairs: int, n_items: int) -> Environment:
    """Fast-lane storm: immediate Store put/get succeed() traffic."""
    env = Environment()

    def producer(store):
        for i in range(n_items):
            yield store.put(i)

    def consumer(store):
        for _ in range(n_items):
            yield store.get()

    for _ in range(n_pairs):
        store = Store(env)
        env.process(producer(store))
        env.process(consumer(store))
    return env

def _mixed(n_procs: int, n_steps: int) -> Environment:
    """Alternating timeout / immediate-event traffic."""
    env = Environment()

    def worker(delay):
        for i in range(n_steps):
            yield env.timeout(delay)
            done = env.event()
            done.succeed(i)
            yield done

    for i in range(n_procs):
        env.process(worker(0.25 + 0.01 * i))
    return env


MICRO_WORKLOADS = {
    "timeout_ring": _timeout_ring,
    "zero_delay": _zero_delay,
    "mixed": _mixed,
}


def run_micro(repeats: int, scale: int) -> dict:
    """Best-of-``repeats`` throughput for each micro workload."""
    results: dict[str, dict] = {}
    for name, build in MICRO_WORKLOADS.items():
        best = float("inf")
        events = 0
        for _ in range(repeats):
            env = build(50, scale)
            gc.collect()
            start = time.perf_counter()
            env.run()
            elapsed = time.perf_counter() - start
            events = env._seq
            best = min(best, elapsed)
        results[name] = {
            "events": events,
            "seconds": round(best, 4),
            "events_per_s": round(events / best),
        }
    return results


# ---------------------------------------------------------------------------
# end-to-end run_many scaling
# ---------------------------------------------------------------------------

def run_scaling(scale: float, n_runs: int, workers: int,
                workflows: list[str]) -> dict:
    from functools import partial

    from repro.workflows import (
        ImageProcessingWorkflow,
        ResNet152Workflow,
        XGBoostWorkflow,
        run_many,
    )

    factories = {
        "ImageProcessing": ImageProcessingWorkflow,
        "ResNet152": ResNet152Workflow,
        "XGBOOST": XGBoostWorkflow,
    }

    results: dict[str, dict] = {}
    for name in workflows:
        factory = partial(factories[name], scale=scale)
        timings: dict[str, float] = {}
        streams: dict[str, list] = {}
        for executor in ("serial", "thread", "process"):
            gc.collect()
            start = time.perf_counter()
            runs = run_many(factory, n_runs=n_runs, seed=1,
                            workers=workers, executor=executor)
            timings[executor] = time.perf_counter() - start
            streams[executor] = [r.data.events for r in runs]
        if not (streams["serial"] == streams["thread"]
                == streams["process"]):
            raise AssertionError(
                f"{name}: event streams differ across executors")
        results[name] = {
            "n_runs": n_runs,
            "workers": workers,
            "serial_s": round(timings["serial"], 3),
            "thread_s": round(timings["thread"], 3),
            "process_s": round(timings["process"], 3),
            "speedup_thread": round(
                timings["serial"] / timings["thread"], 2),
            "speedup_process": round(
                timings["serial"] / timings["process"], 2),
        }
    return results


# ---------------------------------------------------------------------------
# reporting
# ---------------------------------------------------------------------------

def render(document: dict) -> str:
    lines = [f"engine benchmark (python {document['meta']['python']}, "
             f"{document['meta']['cpus']} cpu(s))"]
    lines.append("\nmicro (events/second, best of "
                 f"{document['meta']['repeats']}):")
    for name, row in document["micro"].items():
        lines.append(f"  {name:<14} {row['events']:>9} events  "
                     f"{row['seconds']:>8.4f} s  "
                     f"{row['events_per_s']:>10,} ev/s")
    for name, row in document.get("run_many", {}).items():
        lines.append(
            f"\nrun_many {name}: n_runs={row['n_runs']} "
            f"workers={row['workers']}\n"
            f"  serial  {row['serial_s']:>7.3f} s\n"
            f"  thread  {row['thread_s']:>7.3f} s "
            f"({row['speedup_thread']:.2f}x)\n"
            f"  process {row['process_s']:>7.3f} s "
            f"({row['speedup_process']:.2f}x)\n"
            f"  event streams identical across executors: yes")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed passes per micro workload (default 3)")
    parser.add_argument("--micro-scale", type=int, default=2000,
                        help="steps per process in micro workloads")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="workflow scale for the run_many tier")
    parser.add_argument("--runs", type=int, default=8,
                        help="repetitions in the run_many tier (default 8)")
    parser.add_argument("--workers", type=int, default=4,
                        help="pool width in the run_many tier (default 4)")
    parser.add_argument("--workflows", default="ImageProcessing",
                        help="comma-separated subset of "
                             "ImageProcessing,ResNet152,XGBOOST "
                             "(default: ImageProcessing; 'all' for all)")
    parser.add_argument("--micro-only", action="store_true",
                        help="skip the end-to-end run_many tier")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI: correctness + plumbing, "
                             "no artifact write")
    parser.add_argument("--json", default=None,
                        help="also write the result document to this path")
    args = parser.parse_args(argv)

    repeats = 1 if args.smoke else args.repeats
    micro_scale = 200 if args.smoke else args.micro_scale

    document = {
        "meta": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "repeats": repeats,
        },
        "micro": run_micro(repeats, micro_scale),
    }
    if not args.micro_only:
        names = (["ImageProcessing", "ResNet152", "XGBOOST"]
                 if args.workflows == "all"
                 else [w.strip() for w in args.workflows.split(",")])
        n_runs = 2 if args.smoke else args.runs
        workers = 2 if args.smoke else args.workers
        scale = min(args.scale, 0.03) if args.smoke else args.scale
        document["run_many"] = run_scaling(scale, n_runs, workers, names)

    text = render(document)
    print(text)

    if not args.smoke:
        os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
        with open(OUT_PATH, "a", encoding="utf-8") as fh:
            fh.write(text + "\n\n")
        print(f"(appended to {OUT_PATH})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        print(f"(wrote {args.json})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
