#!/usr/bin/env python
"""Before/after benchmark of the PERFRECUP view-building hot path.

Workload: a compare-style analysis over ``--runs`` synthetic runs —
for every run, build all nine views, then re-request the task and
communication views the way ``perfrecup compare`` (phase breakdown +
variability + scheduling comparison) does.

Two implementations race on identical inputs:

* **legacy** — the pre-columnar path this PR replaced: every view call
  re-scans the full event list (``events_of_type`` was a linear filter)
  and assembles per-row dicts before ``Table.from_records``.  The
  builders below are verbatim copies of that code, kept here as the
  measurement baseline.
* **columnar** — the shipped path: ``AnalysisSession`` over the
  ``EventStore`` (partition the stream once, NumPy column math for
  derived columns, memoized views).

The two outputs are asserted cell-for-cell identical before any
timing is reported (the same parity the test suite checks on recorded
runs).  Results append to ``benchmarks/out/perfrecup_ingest.txt`` so
the speedup trajectory is recorded next to the other artifacts.

Run::

    PYTHONPATH=src python benchmarks/bench_perfrecup_ingest.py
    PYTHONPATH=src python benchmarks/bench_perfrecup_ingest.py --smoke
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.core import AnalysisSession, RunData, Table  # noqa: E402
from repro.core.views import VIEW_NAMES  # noqa: E402

OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "out", "perfrecup_ingest.txt")

WORKERS = [f"tcp://10.0.0.{n}:9000" for n in range(1, 9)]
HOSTS = [f"nid{n:05d}" for n in range(1, 9)]
PREFIXES = ["read_parquet", "normalize", "train", "getitem", "stats"]


class _SyntheticDarshan:
    """Just enough of a DarshanReport for the io view: DXT rows."""

    def __init__(self, rows: list[dict]):
        self._rows = rows
        self.logs: list = []

    def dxt_rows(self) -> list[dict]:
        return [dict(row) for row in self._rows]


def make_run(n_tasks: int, run_index: int, seed: int = 7) -> RunData:
    """One synthetic run with every event type the nine views read."""
    rng = np.random.default_rng(seed + run_index)
    events: list[dict] = []
    dxt: list[dict] = []
    logs: list[dict] = []
    clock = 0.0
    for i in range(n_tasks):
        prefix = PREFIXES[i % len(PREFIXES)]
        key = f"{prefix}-{run_index:02d}{i:06d}"
        group = f"{prefix}-{run_index:02d}"
        worker = WORKERS[i % len(WORKERS)]
        hostname = HOSTS[i % len(HOSTS)]
        deps = [f"{PREFIXES[(i - 1) % len(PREFIXES)]}"
                f"-{run_index:02d}{i - 1:06d}"] if i else []
        clock += float(rng.uniform(0.0005, 0.002))
        events.append({
            "type": "task_added", "key": key, "group": group,
            "prefix": prefix, "deps": deps, "graph_index": i,
            "timestamp": clock,
        })
        for start_state, finish_state in (("released", "waiting"),
                                          ("processing", "memory")):
            events.append({
                "type": "transition", "key": key, "group": group,
                "prefix": prefix, "start_state": start_state,
                "finish_state": finish_state, "timestamp": clock,
                "stimulus": f"stim-{i}", "worker": worker,
                "source": "scheduler",
            })
        start = clock + float(rng.uniform(0.001, 0.01))
        stop = start + float(rng.uniform(0.01, 0.4))
        events.append({
            "type": "task_run", "key": key, "group": group,
            "prefix": prefix, "worker": worker, "hostname": hostname,
            "thread_id": 1000 + (i % 4), "start": start, "stop": stop,
            "output_nbytes": int(rng.integers(1024, 2**24)),
            "graph_index": i,
            "compute_time": stop - start, "io_time": 0.0,
            "n_reads": int(rng.integers(0, 8)), "n_writes": 0,
        })
        if i % 2 == 0:
            events.append({
                "type": "communication", "key": key,
                "src_worker": WORKERS[(i + 1) % len(WORKERS)],
                "dst_worker": worker,
                "src_host": HOSTS[(i + 1) % len(HOSTS)],
                "dst_host": hostname,
                "nbytes": int(rng.integers(256, 2**20)),
                "start": stop, "stop": stop + float(rng.uniform(0.001, 0.05)),
                "same_node": bool(i % 4 == 0),
                "same_switch": bool(i % 2 == 0),
            })
        if i % 20 == 0:
            events.append({
                "type": "warning", "source": worker, "hostname": hostname,
                "kind": "gc" if i % 40 == 0 else "event_loop",
                "time": stop, "duration": float(rng.uniform(0.01, 0.3)),
                "message": f"pause on {hostname}",
            })
        if i % 10 == 0:
            events.append({
                "type": "spill", "worker": worker, "hostname": hostname,
                "key": key, "nbytes": int(rng.integers(2**10, 2**22)),
                "time": stop, "direction": "out" if i % 20 else "in",
            })
        if i % 25 == 0:
            events.append({
                "type": "steal", "key": key,
                "victim": WORKERS[i % len(WORKERS)],
                "thief": WORKERS[(i + 3) % len(WORKERS)],
                "time": clock, "victim_occupancy": float(rng.uniform(0, 9)),
                "thief_occupancy": float(rng.uniform(0, 2)),
            })
        if i % 4 == 0:
            dxt.append({
                "hostname": hostname, "rank": i % 16,
                "pthread_id": 1000 + (i % 4),
                "file": f"/lus/data{i % 32:03d}.parquet", "op": "read",
                "offset": (i % 64) * 2**20, "length": 2**20,
                "start": start, "end": start + float(rng.uniform(0.001, 0.02)),
            })
        if i % 5 == 0:
            logs.append({"source": worker, "time": clock, "level": "INFO",
                         "message": f"task {key} update"})
    return RunData(events=events, darshan=_SyntheticDarshan(dxt),
                   logs=logs, run_index=run_index)


# ---------------------------------------------------------------------------
# the pre-PR path, kept verbatim as the measurement baseline
# (builders, column conversion, and record scan all match the code this
# PR replaced — including the old ``_as_column`` per-element type scan)
# ---------------------------------------------------------------------------

def _legacy_as_column(values) -> np.ndarray:
    if isinstance(values, np.ndarray):
        arr = values
    else:
        values = list(values)
        if any(isinstance(v, (list, tuple, dict, set)) for v in values):
            arr = np.empty(len(values), dtype=object)
            for i, v in enumerate(values):
                arr[i] = v
        else:
            arr = np.asarray(values)
    if arr.dtype.kind in ("U", "S"):
        arr = arr.astype(object)
    return arr


def _legacy_from_records(records: list[dict], columns: list[str]) -> Table:
    if not records:
        return Table({name: [] for name in columns})
    cols = {
        name: _legacy_as_column([record.get(name) for record in records])
        for name in columns
    }
    # Arrays pass through Table.__init__ untouched, so the timing below
    # charges the legacy path for its own conversion kernel only.
    return Table(cols)


def _legacy_events_of_type(run: RunData, event_type: str) -> list[dict]:
    return [e for e in run.events if e.get("type") == event_type]


def _legacy_task_view(run: RunData) -> Table:
    rows = []
    for e in _legacy_events_of_type(run, "task_run"):
        rows.append({
            "key": e["key"], "group": e["group"], "prefix": e["prefix"],
            "worker": e["worker"], "hostname": e["hostname"],
            "thread_id": e["thread_id"], "start": e["start"],
            "stop": e["stop"], "duration": e["stop"] - e["start"],
            "output_nbytes": e["output_nbytes"],
            "graph_index": e["graph_index"],
            "compute_time": e["compute_time"], "io_time": e["io_time"],
            "n_reads": e["n_reads"], "n_writes": e["n_writes"],
        })
    return _legacy_from_records(rows, [
        "key", "group", "prefix", "worker", "hostname", "thread_id",
        "start", "stop", "duration", "output_nbytes", "graph_index",
        "compute_time", "io_time", "n_reads", "n_writes",
    ])


def _legacy_transition_view(run: RunData) -> Table:
    rows = []
    for e in _legacy_events_of_type(run, "transition"):
        rows.append({
            "key": e["key"], "group": e["group"], "prefix": e["prefix"],
            "start_state": e["start_state"],
            "finish_state": e["finish_state"],
            "timestamp": e["timestamp"], "stimulus": e["stimulus"],
            "worker": e["worker"], "source": e["source"],
        })
    return _legacy_from_records(rows, [
        "key", "group", "prefix", "start_state", "finish_state",
        "timestamp", "stimulus", "worker", "source",
    ])


def _legacy_io_view(run: RunData) -> Table:
    if run.darshan is None:
        return Table({c: [] for c in (
            "hostname", "rank", "pthread_id", "file", "op", "offset",
            "length", "start", "end", "duration",
        )})
    rows = run.darshan.dxt_rows()
    for row in rows:
        row["duration"] = row["end"] - row["start"]
    return _legacy_from_records(rows, [
        "hostname", "rank", "pthread_id", "file", "op", "offset",
        "length", "start", "end", "duration",
    ])


def _legacy_comm_view(run: RunData) -> Table:
    rows = []
    for e in _legacy_events_of_type(run, "communication"):
        rows.append({
            "key": e["key"], "src_worker": e["src_worker"],
            "dst_worker": e["dst_worker"], "src_host": e["src_host"],
            "dst_host": e["dst_host"], "nbytes": e["nbytes"],
            "start": e["start"], "stop": e["stop"],
            "duration": e["stop"] - e["start"],
            "same_node": e["same_node"], "same_switch": e["same_switch"],
        })
    return _legacy_from_records(rows, [
        "key", "src_worker", "dst_worker", "src_host", "dst_host",
        "nbytes", "start", "stop", "duration", "same_node", "same_switch",
    ])


def _legacy_warning_view(run: RunData) -> Table:
    rows = []
    for e in _legacy_events_of_type(run, "warning"):
        rows.append({
            "source": e["source"], "hostname": e["hostname"],
            "kind": e["kind"], "time": e["time"],
            "duration": e["duration"], "message": e["message"],
        })
    return _legacy_from_records(rows, [
        "source", "hostname", "kind", "time", "duration", "message",
    ])


def _legacy_spill_view(run: RunData) -> Table:
    rows = []
    for e in _legacy_events_of_type(run, "spill"):
        rows.append({
            "worker": e["worker"], "hostname": e["hostname"],
            "key": e["key"], "nbytes": e["nbytes"], "time": e["time"],
            "direction": e["direction"],
        })
    return _legacy_from_records(rows, [
        "worker", "hostname", "key", "nbytes", "time", "direction",
    ])


def _legacy_steal_view(run: RunData) -> Table:
    rows = []
    for e in _legacy_events_of_type(run, "steal"):
        rows.append({
            "key": e["key"], "victim": e["victim"], "thief": e["thief"],
            "time": e["time"],
            "victim_occupancy": e["victim_occupancy"],
            "thief_occupancy": e["thief_occupancy"],
        })
    return _legacy_from_records(rows, [
        "key", "victim", "thief", "time", "victim_occupancy",
        "thief_occupancy",
    ])


def _legacy_dependency_view(run: RunData) -> Table:
    rows = []
    for e in _legacy_events_of_type(run, "task_added"):
        rows.append({
            "key": e["key"], "group": e["group"], "prefix": e["prefix"],
            "deps": list(e["deps"]), "n_deps": len(e["deps"]),
            "graph_index": e["graph_index"],
            "submitted_at": e["timestamp"],
        })
    return _legacy_from_records(rows, [
        "key", "group", "prefix", "deps", "n_deps", "graph_index",
        "submitted_at",
    ])


def _legacy_log_view(run: RunData) -> Table:
    return _legacy_from_records(run.logs, [
        "source", "time", "level", "message",
    ])


LEGACY_BUILDERS = {
    "task": _legacy_task_view,
    "transition": _legacy_transition_view,
    "io": _legacy_io_view,
    "comm": _legacy_comm_view,
    "warning": _legacy_warning_view,
    "spill": _legacy_spill_view,
    "steal": _legacy_steal_view,
    "dependency": _legacy_dependency_view,
    "log": _legacy_log_view,
}


# ---------------------------------------------------------------------------
# workloads
# ---------------------------------------------------------------------------

def legacy_compare_workload(runs: list[RunData]) -> dict[str, int]:
    """Pre-PR behavior: every view request is a fresh full-list scan."""
    built = 0
    for run in runs:
        for name in VIEW_NAMES:
            LEGACY_BUILDERS[name](run)
            built += 1
        # compare re-requests these (phase breakdown + variability).
        _legacy_task_view(run)
        _legacy_comm_view(run)
        built += 2
    return {"view_requests": built}


def columnar_compare_workload(runs: list[RunData]) -> dict[str, int]:
    """Shipped path: EventStore partition + memoized AnalysisSession."""
    built = 0
    for run in runs:
        session = AnalysisSession.of(run)
        for name in VIEW_NAMES:
            session.view(name)
            built += 1
        session.task_view()   # cache hits
        session.comm_view()
        built += 2
    return {"view_requests": built}


def check_parity(run: RunData) -> None:
    """Cell-for-cell equality of every view between both paths."""
    session = AnalysisSession.of(run)
    for name in VIEW_NAMES:
        legacy = LEGACY_BUILDERS[name](run)
        fast = session.view(name)
        assert legacy.column_names == fast.column_names, name
        assert len(legacy) == len(fast), name
        for column in legacy.column_names:
            left, right = legacy[column], fast[column]
            same = all(
                lv == rv for lv, rv in zip(left.tolist(), right.tolist())
            )
            assert same, f"{name}.{column} differs between paths"


def run_bench(n_runs: int, n_tasks: int, repeats: int,
              smoke: bool) -> str:
    runs = [make_run(n_tasks, run_index) for run_index in range(n_runs)]
    check_parity(runs[0])

    # Fresh RunData per timed pass so neither path benefits from a
    # previous pass's caches.
    def fresh():
        return [RunData(events=r.events, darshan=r.darshan, logs=r.logs,
                        run_index=r.run_index) for r in runs]

    def timed(workload) -> float:
        # Collect before and pause GC during the pass: both paths
        # allocate heavily, and collector pauses otherwise dominate the
        # run-to-run spread.
        batch = fresh()
        gc.collect()
        gc.disable()
        try:
            t0 = time.perf_counter()
            workload(batch)
            return time.perf_counter() - t0
        finally:
            gc.enable()

    legacy_times, columnar_times = [], []
    for _ in range(repeats):
        legacy_times.append(timed(legacy_compare_workload))
        columnar_times.append(timed(columnar_compare_workload))

    legacy_best = min(legacy_times)
    columnar_best = min(columnar_times)
    speedup = legacy_best / columnar_best if columnar_best else float("inf")
    n_events = sum(len(r.events) for r in runs)

    lines = [
        "perfrecup ingest/view-building benchmark "
        "(compare-style workload)",
        f"  runs={n_runs} tasks/run={n_tasks} events={n_events} "
        f"repeats={repeats}{' smoke' if smoke else ''}",
        f"  view requests per pass: {n_runs * (len(VIEW_NAMES) + 2)}",
        f"  legacy (per-view full scan, per-row dicts): "
        f"{legacy_best * 1000:8.1f} ms",
        f"  columnar (EventStore + memoized session):   "
        f"{columnar_best * 1000:8.1f} ms",
        f"  speedup: {speedup:.1f}x",
        "  parity: all nine views cell-for-cell identical",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--runs", type=int, default=10,
                        help="synthetic runs in the compare (default 10)")
    parser.add_argument("--tasks", type=int, default=2000,
                        help="tasks per run (default 2000)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed passes; best-of wins (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny sizes for CI: parity + a sanity "
                             "speedup, no artifact write")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="fail unless speedup reaches this factor "
                             "(default: 3.0, or unchecked with --smoke)")
    args = parser.parse_args(argv)

    if args.smoke:
        n_runs, n_tasks, repeats = min(args.runs, 3), min(args.tasks,
                                                          300), 1
    else:
        n_runs, n_tasks, repeats = args.runs, args.tasks, args.repeats

    text = run_bench(n_runs, n_tasks, repeats, smoke=args.smoke)
    print(text)

    speedup = float(text.split("speedup: ")[1].split("x")[0])
    if not args.smoke:
        os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
        with open(OUT_PATH, "a", encoding="utf-8") as fh:
            fh.write(text + "\n\n")
        print(f"(appended to {OUT_PATH})")
    floor = args.min_speedup if args.min_speedup is not None \
        else (None if args.smoke else 3.0)
    if floor is not None and speedup < floor:
        print(f"FAIL: speedup {speedup:.1f}x below the {floor:.1f}x floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
