"""Figure 1 — the layered data-provenance chart.

Fig. 1 is a schematic, not a measurement; its reproducible artifact is
the *content* of the three provenance layers captured for a run:
hardware infrastructure, system software + job configuration, and the
application layer (WMS + profilers).  This bench regenerates that
document for a run of each workflow and verifies the field inventory
named in §III-E1.
"""

import json

from conftest import emit


def test_fig1_provenance_layers(bench_env, benchmark):
    result = bench_env.one_run("ImageProcessing")
    document = benchmark.pedantic(lambda: result.data.provenance,
                                  rounds=1, iterations=1)
    layers = document["layers"]

    summary_lines = []
    hw = layers["hardware_infrastructure"]
    summary_lines.append("hardware_infrastructure:")
    summary_lines.append(f"  machine: {hw['machine']['machine']} "
                         f"({hw['machine']['num_nodes']} nodes)")
    summary_lines.append(f"  allocated nodes: "
                         f"{[n['hostname'] for n in hw['allocated_nodes']]}")
    summary_lines.append(f"  switches: "
                         f"{sorted({n['switch'] for n in hw['allocated_nodes']})}")
    summary_lines.append(f"  pfs: {hw['machine']['pfs']['name']} "
                         f"({hw['machine']['pfs']['num_osts']} OSTs)")

    sw = layers["system_software_and_job"]
    summary_lines.append("system_software_and_job:")
    summary_lines.append(f"  os: {sw['os']['system']} {sw['os']['release']}")
    summary_lines.append(f"  modules: {sw['modules']}")
    summary_lines.append(f"  packages: {list(sw['packages'])}")
    summary_lines.append(f"  job id: {sw['job']['job_id']}")
    script_head = sw["job"]["script"].splitlines()[:6]
    summary_lines.append("  job script (head): " + " | ".join(script_head))

    app = layers["application"]
    summary_lines.append("application:")
    summary_lines.append(f"  scheduler: {app['wms']['scheduler']['address']}")
    summary_lines.append(f"  workers: {len(app['wms']['workers'])}")
    summary_lines.append(f"  config keys: {list(app['wms']['config'])}")
    summary_lines.append(f"  profilers: darshan="
                         f"{app['profilers']['darshan']}")
    summary_lines.append(f"  workflow: {app['workflow'].get('name', '?')}")

    emit("fig1_provenance_layers", "\n".join(summary_lines))

    # Field inventory of §III-E1:
    assert {"hardware_infrastructure", "system_software_and_job",
            "application"} <= set(layers)
    assert hw["allocated_nodes"], "node allocation must be captured"
    assert all("cpu_speed" in n for n in hw["allocated_nodes"])
    assert "script" in sw["job"] and sw["job"]["script"].startswith("#!")
    assert sw["modules"], "loaded modules must be captured"
    config = app["wms"]["config"]
    assert "distributed.worker.heartbeat" in config
    assert "distributed.comm.timeouts.connect" in config
    workers = app["wms"]["workers"]
    assert all(w["thread_ids"] for w in workers)
    # The document is JSON-serialisable end to end.
    json.dumps(document)
