#!/usr/bin/env python
"""Overhead benchmark for the fault-injection layer.

Workload: the same ImageProcessing repetition executed twice from one
seed — bare, then with an *idle* :class:`~repro.faults.FaultInjector`
attached (an empty :class:`~repro.faults.FaultSchedule`).

Two things are measured and reported:

* **perturbation** — with nothing scheduled, the injector must attach
  no simulation processes and leave the recorded event stream
  *identical* byte for byte.  The benchmark asserts this before
  reporting any timing, so a regression that makes the idle injector
  touch the run fails loudly.
* **wall-clock overhead** — idle-injector time relative to bare time.
  There is no hard floor by default: the interesting number is the
  trajectory appended to ``benchmarks/out/faults_overhead.txt``.

Run::

    PYTHONPATH=src python benchmarks/bench_faults_overhead.py
    PYTHONPATH=src python benchmarks/bench_faults_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.faults import FaultSchedule  # noqa: E402
from repro.workflows import ImageProcessingWorkflow, run_workflow  # noqa: E402

OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "out", "faults_overhead.txt")


def _time_run(scale: float, seed: int, faults=None):
    gc.collect()
    start = time.perf_counter()
    result = run_workflow(ImageProcessingWorkflow(scale=scale), seed=seed,
                          faults=faults)
    return result, time.perf_counter() - start


def run_bench(scale: float, seed: int, repeats: int) -> str:
    bare_best = idle_best = float("inf")
    bare = idle = None
    for _ in range(repeats):
        bare, bare_wall = _time_run(scale, seed)
        idle, idle_wall = _time_run(scale, seed, faults=FaultSchedule([]))
        bare_best = min(bare_best, bare_wall)
        idle_best = min(idle_best, idle_wall)

    if idle.data.events != bare.data.events:
        raise AssertionError(
            "idle fault injector perturbed the run: event streams differ")
    if idle.fault_records:
        raise AssertionError(
            "idle fault injector produced fault records")

    overhead = (idle_best / bare_best - 1.0) * 100.0
    lines = [
        f"fault-injector overhead @ ImageProcessing scale={scale} "
        f"seed={seed} (best of {repeats})",
        f"  events recorded : {len(bare.data.events)} "
        "(identical with idle injector attached)",
        f"  bare            : {bare_best:.3f} s",
        f"  idle injector   : {idle_best:.3f} s",
        f"  overhead: {overhead:+.1f}%",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1,
                        help="workflow scale factor (default 0.1)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed passes; best-of wins (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scale for CI: parity check only, "
                             "no artifact write")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail if overhead exceeds this percentage "
                             "(default: unchecked)")
    args = parser.parse_args(argv)

    scale = min(args.scale, 0.04) if args.smoke else args.scale
    repeats = 1 if args.smoke else args.repeats

    text = run_bench(scale, args.seed, repeats)
    print(text)

    if not args.smoke:
        os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
        with open(OUT_PATH, "a", encoding="utf-8") as fh:
            fh.write(text + "\n\n")
        print(f"(appended to {OUT_PATH})")

    if args.max_overhead is not None:
        overhead = float(text.split("overhead: ")[1].split("%")[0])
        if overhead > args.max_overhead:
            print(f"FAIL: overhead {overhead:+.1f}% above the "
                  f"{args.max_overhead:.1f}% ceiling", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
