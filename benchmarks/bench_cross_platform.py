"""Extension E2 — cross-platform comparison.

§III claims the approach generalises beyond one machine ("our approach
can be used for other workflow management systems and tools").  This
bench runs the identical ImageProcessing workflow on two simulated
platforms — the Polaris-like default and a commodity 10 GbE / NFS-class
cluster — and shows that (a) the characterization stack produces the
same record schema on both, and (b) the *platform* differences surface
exactly where they should: slower I/O and transfers, higher
variability, unchanged task structure.
"""

import numpy as np

from repro.core import AnalysisSession, format_records, phase_breakdown
from repro.platform import COMMODITY_CLUSTER, POLARIS_LIKE
from repro.workflows import ImageProcessingWorkflow, run_workflow

from conftest import emit


def run_on(spec, scale: float, run_index: int = 0):
    return run_workflow(ImageProcessingWorkflow(scale=scale), seed=37,
                        run_index=run_index, cluster_spec=spec)


def test_cross_platform_comparison(bench_env, benchmark):
    scale = min(bench_env.scale, 0.2)

    polaris = run_on(POLARIS_LIKE, scale)
    commodity = benchmark.pedantic(run_on, args=(COMMODITY_CLUSTER, scale),
                                   rounds=1, iterations=1)

    rows = []
    for label, result in (("polaris-like", polaris),
                          ("commodity", commodity)):
        breakdown = phase_breakdown(result.data)
        comms = AnalysisSession.of(result.data).comm_view()
        io = AnalysisSession.of(result.data).io_view()
        rows.append({
            "platform": label,
            "wall_s": round(result.wall_time, 2),
            "io_time_s": round(breakdown.io, 2),
            "comm_time_s": round(breakdown.communication, 3),
            "n_tasks": len(AnalysisSession.of(result.data).task_view()),
            "n_io_ops": len(io),
            "n_comms": len(comms),
            "mean_read_ms": round(1e3 * float(np.mean(
                io.filter(np.array([o == "read" for o in io["op"]]))
                ["duration"].astype(float))), 2),
        })
    text = format_records(rows, title="Cross-platform comparison "
                                      f"(ImageProcessing, scale={scale})")
    emit("cross_platform", text)

    by = {r["platform"]: r for r in rows}
    # Identical workload structure on both machines.
    assert by["polaris-like"]["n_tasks"] == by["commodity"]["n_tasks"]
    assert by["polaris-like"]["n_io_ops"] == by["commodity"]["n_io_ops"]
    # The commodity filesystem and network are visibly slower.
    assert by["commodity"]["io_time_s"] > 2 * by["polaris-like"]["io_time_s"]
    assert by["commodity"]["mean_read_ms"] > \
        by["polaris-like"]["mean_read_ms"]
    assert by["commodity"]["wall_s"] > by["polaris-like"]["wall_s"]