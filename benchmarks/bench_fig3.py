"""Figure 3 — Relative time per workflow in I/O, communication, and
computation, plus total wall time, with cross-run error bars.

Expected shape (§IV-C): the ImageProcessing and ResNet152 wall times
are short, so coordination overhead makes their *total* bars
disproportionately long relative to the phase sums; XGBOOST amortises
coordination and shows the largest absolute times and the most
variability (hence its 50 repetitions in the paper).
"""

import numpy as np

from repro.core import (
    fig3_svg,
    format_bar,
    format_records,
    phase_breakdown,
    phase_variability,
    write_svg,
)

from conftest import OUT_DIR, emit

WORKFLOWS = ("ImageProcessing", "ResNet152", "XGBOOST")


def test_fig3_phase_breakdown(bench_env, benchmark):
    all_breakdowns = {
        name: [phase_breakdown(r.data) for r in bench_env.runs_of(name)]
        for name in WORKFLOWS
    }
    stats = benchmark.pedantic(
        lambda: {name: phase_variability(b)
                 for name, b in all_breakdowns.items()},
        rounds=1, iterations=1,
    )

    lines = []
    rows = []
    for name in WORKFLOWS:
        s = stats[name]
        lines.append(f"\n{name} (normalized to mean wall time, "
                     f"n={s['total'].n} runs):")
        for phase in ("io", "communication", "computation", "total"):
            lines.append(format_bar(
                phase, s["normalized"][phase], 1.0,
                err=s["normalized_err"][phase]))
            rows.append({
                "workflow": name, "phase": phase,
                "mean_s": round(s[phase].mean, 3),
                "std_s": round(s[phase].std, 3),
                "min_s": round(s[phase].min, 3),
                "max_s": round(s[phase].max, 3),
                "cv": round(s[phase].cv, 4),
            })
    text = "\n".join(lines) + "\n\n" + format_records(
        rows, title="Raw phase statistics across runs")
    emit("fig3_phase_breakdown", text)
    write_svg(fig3_svg(stats), f"{OUT_DIR}/fig3_phase_breakdown.svg")

    # Shape assertions from §IV-C:
    # 1. The phase sums never exceed their workflow's total by much more
    #    than thread-level overlap allows, and total is positive.
    for name in WORKFLOWS:
        assert stats[name]["total"].mean > 0
    # 2. Short workflows: coordination-inclusive total well above the
    #    largest single phase contribution per *wall-clock* second is a
    #    given; check instead that XGBOOST's wall time dwarfs the others.
    assert stats["XGBOOST"]["total"].mean > \
        5 * stats["ImageProcessing"]["total"].mean
    assert stats["XGBOOST"]["total"].mean > \
        5 * stats["ResNet152"]["total"].mean
    # 3. XGBOOST computation dominates its own I/O.
    assert stats["XGBOOST"]["computation"].mean > \
        stats["XGBOOST"]["io"].mean
