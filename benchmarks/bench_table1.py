"""Table I — Workflow Characteristics.

Regenerates, for each of the three workflows: number of task graphs,
distinct tasks, distinct files, the I/O-operation range over runs, and
the communication range over runs.  Paper values are printed alongside
for direct comparison (EXPERIMENTS.md records the deltas).
"""

from repro.core import AnalysisSession, format_records

from conftest import emit

PAPER = {
    "ImageProcessing": dict(graphs=3, tasks=5440, files=151,
                            io="5274-5287", comms="3141-3247"),
    "ResNet152": dict(graphs=1, tasks=8645, files=3929,
                      io="2057-2302 (truncated)", comms="3751-3976"),
    "XGBOOST": dict(graphs=74, tasks=10348, files=61,
                    io="867-1670", comms="1464-2027"),
}


def characterize(results):
    """Table-I row from a list of RunResults (ranges over runs)."""
    graphs, tasks, files = set(), set(), set()
    io_counts, comm_counts = [], []
    for result in results:
        tv = AnalysisSession.of(result.data).task_view()
        graphs.add(len(set(tv.unique("graph_index"))))
        tasks.add(len(tv))
        files.add(len(result.data.darshan.distinct_files()))
        io_counts.append(len(AnalysisSession.of(result.data).io_view()))
        comm_counts.append(len(AnalysisSession.of(result.data).comm_view()))
    def span(values):
        lo, hi = min(values), max(values)
        return str(lo) if lo == hi else f"{lo}-{hi}"
    truncated = any(r.data.darshan.any_truncated for r in results)
    return {
        "task_graphs": max(graphs),
        "distinct_tasks": max(tasks),
        "distinct_files": max(files),
        "io_ops": span(io_counts) + (" (truncated)" if truncated else ""),
        "comms": span(comm_counts),
    }


def test_table1_workflow_characteristics(bench_env, benchmark):
    rows = []
    for name in ("ImageProcessing", "ResNet152", "XGBOOST"):
        results = bench_env.runs_of(name)
        measured = benchmark.pedantic(
            characterize, args=(results,), rounds=1, iterations=1,
        ) if name == "XGBOOST" else characterize(results)
        paper = PAPER[name]
        rows.append({"workflow": name, "quantity": "task graphs",
                     "measured": measured["task_graphs"],
                     "paper": paper["graphs"]})
        rows.append({"workflow": name, "quantity": "distinct tasks",
                     "measured": measured["distinct_tasks"],
                     "paper": paper["tasks"]})
        rows.append({"workflow": name, "quantity": "distinct files",
                     "measured": measured["distinct_files"],
                     "paper": paper["files"]})
        rows.append({"workflow": name, "quantity": "I/O operations",
                     "measured": measured["io_ops"],
                     "paper": paper["io"]})
        rows.append({"workflow": name, "quantity": "communications",
                     "measured": measured["comms"],
                     "paper": paper["comms"]})

    text = format_records(
        rows, columns=["workflow", "quantity", "measured", "paper"],
        title=f"Table I: workflow characteristics "
              f"(scale={bench_env.scale}, runs={bench_env.runs}; paper "
              f"columns are full-scale)",
    )
    emit("table1_workflow_characteristics", text)
    # Structural invariants that must hold at any scale:
    by = {(r["workflow"], r["quantity"]): r["measured"] for r in rows}
    assert by[("ImageProcessing", "task graphs")] == 3
    assert by[("ResNet152", "task graphs")] == 1
    assert by[("XGBOOST", "task graphs")] > 3
    assert by[("XGBOOST", "distinct files")] < \
        by[("ImageProcessing", "distinct files")] < \
        by[("ResNet152", "distinct files")]
