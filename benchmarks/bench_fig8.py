"""Figure 8 — Example of a task provenance summary.

Reconstructs the full lineage of one ``getitem`` task from the XGBOOST
workflow (the paper's example key is
``('getitem__get_categories-24266c..', 63)``): submission graph index,
dependencies, every state transition with location and timestamp, the
execution record (worker, pthread ID, output size), data movements,
and the fused high-fidelity I/O records.
"""

import numpy as np

from repro.core import AnalysisSession, render_provenance, task_provenance

from conftest import emit


def test_fig8_task_provenance(bench_env, benchmark):
    result = bench_env.one_run("XGBOOST")
    tasks = AnalysisSession.of(result.data).task_view()

    # The paper's example is a getitem task from the second task graph.
    getitems = tasks.filter(np.array(
        [p == "getitem" for p in tasks["prefix"]]))
    key = getitems.sort_by("key")["key"][0]

    document = benchmark.pedantic(task_provenance,
                                  args=(result.data, key),
                                  rounds=1, iterations=1)
    text = render_provenance(document, max_items=8)

    # Also show an I/O-performing task so the io_records section is
    # exercised (getitem itself does no POSIX I/O, like the paper's
    # example whose I/O lives upstream).
    fused = tasks.filter(np.array(
        [p == "read_parquet-fused-assign" for p in tasks["prefix"]]))
    fused_key = fused.sort_by("key")["key"][0]
    fused_doc = task_provenance(result.data, fused_key)
    text += "\n\n" + render_provenance(fused_doc, max_items=8)

    emit("fig8_task_provenance", text)

    # Completeness assertions (the Fig.-8 field inventory):
    assert document["task_graph_index"] == 1  # second submitted graph
    assert document["dependencies"], "getitem must list its dependency"
    states = [(s["from"], s["to"]) for s in document["states"]]
    assert ("released", "waiting") in states
    assert ("waiting", "processing") in states
    assert any(to == "memory" for _, to in states)
    execution = document["execution"]
    assert execution["worker"] is not None
    assert execution["thread_id"] is not None
    assert execution["output_nbytes"] > 0
    # The fused read task carries joined PFS I/O records with offsets.
    assert fused_doc["io_records"]
    record = fused_doc["io_records"][0]
    assert {"pfs", "file", "op", "offset", "length",
            "start", "end"} <= set(record)
