#!/usr/bin/env python
"""Static-analysis benchmark: lint wall time and the JSON build artifact.

Two jobs in one script:

* **Timing** — how long one full ``perfrecup lint`` pass over
  ``src/repro`` takes, per rule family and for the whole default rule
  set, at ``--jobs 1`` versus a thread-pool read.  The lint gate runs
  inside tier-1 pytest, so its wall time is a direct tax on every CI
  round: this benchmark is the budget that keeps the whole-program
  passes (call graph + dataflow) from quietly turning the gate into
  the slowest test in the suite.

* **Artifact** — the full ``--format json`` lint report written to
  ``benchmarks/out/lint_report.json``.  That document is the build
  artifact CI archives: the hotpath findings in it are the work-list
  for the scheduler scale-out PR, and the suppressed-finding inventory
  is the audit trail for every ``# repro: allow[...]`` in the tree.

Run::

    PYTHONPATH=src python benchmarks/bench_lint.py
    PYTHONPATH=src python benchmarks/bench_lint.py --smoke
    PYTHONPATH=src python benchmarks/bench_lint.py --json BENCH_lint.json

``--smoke`` runs one timed pass and enforces the wall-time budget
(exit 1 when busted) without writing artifacts; tier-1 pytest invokes
it through ``tests/test_bench_lint_smoke.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.analysis import LintEngine, rules_for  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
SRC_ROOT = os.path.normpath(os.path.join(HERE, os.pardir, "src", "repro"))
OUT_TEXT = os.path.join(HERE, "out", "lint.txt")
OUT_REPORT = os.path.join(HERE, "out", "lint_report.json")

FAMILIES = ("determinism", "provenance", "concurrency", "hotpath",
            "provflow")

#: Wall-time budget for one full default-rule pass, seconds.  A clean
#: pass takes ~3 s today; the budget leaves headroom for slower CI
#: machines while still catching a superlinear regression in the call
#: graph or dataflow passes.
SMOKE_BUDGET_SECONDS = 20.0


def timed_run(selectors, jobs: int):
    engine = LintEngine(rules=rules_for(selectors), root=SRC_ROOT)
    start = time.perf_counter()
    report = engine.run([SRC_ROOT], jobs=jobs)
    elapsed = time.perf_counter() - start
    return report, elapsed


def collect(jobs: int) -> dict:
    document = {
        "meta": {
            "python": platform.python_version(),
            "cpus": os.cpu_count(),
            "target": SRC_ROOT,
            "jobs": jobs,
        },
        "families": {},
    }
    for family in FAMILIES:
        report, elapsed = timed_run([family], jobs=1)
        document["families"][family] = {
            "seconds": round(elapsed, 3),
            "rules": len(report.rules_run),
            "active": len(report.active),
            "suppressed": len(report.suppressed),
        }
    full_serial, serial_s = timed_run(None, jobs=1)
    _full_jobs, jobs_s = timed_run(None, jobs=jobs)
    document["full"] = {
        "serial_seconds": round(serial_s, 3),
        "jobs_seconds": round(jobs_s, 3),
        "files": full_serial.files_checked,
        "active": len(full_serial.active),
        "suppressed": len(full_serial.suppressed),
        "exit_code": full_serial.exit_code,
    }
    document["report"] = json.loads(full_serial.render_json())
    return document


def render(document: dict) -> str:
    full = document["full"]
    lines = [
        "lint benchmark",
        f"  target: {document['meta']['target']}",
        f"  files: {full['files']}  active: {full['active']}  "
        f"suppressed: {full['suppressed']}",
        f"  full pass: {full['serial_seconds']:.3f}s serial, "
        f"{full['jobs_seconds']:.3f}s with --jobs "
        f"{document['meta']['jobs']}",
        "  per family:",
    ]
    for family, row in document["families"].items():
        lines.append(
            f"    {family:<12} {row['seconds']:6.3f}s  "
            f"{row['rules']} rule(s), {row['active']} active, "
            f"{row['suppressed']} suppressed")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int,
                        default=max(2, (os.cpu_count() or 2) // 2),
                        help="thread count for the threaded-read pass")
    parser.add_argument("--budget", type=float,
                        default=SMOKE_BUDGET_SECONDS,
                        help="--smoke wall-time budget in seconds")
    parser.add_argument("--smoke", action="store_true",
                        help="single timed pass under the budget; "
                             "no artifact writes")
    parser.add_argument("--json", default=None,
                        help="also write the benchmark document here")
    args = parser.parse_args(argv)

    if args.smoke:
        report, elapsed = timed_run(None, jobs=args.jobs)
        print(f"lint benchmark (smoke): {report.files_checked} files, "
              f"{len(report.active)} active finding(s) in {elapsed:.3f}s "
              f"(budget {args.budget:.1f}s)")
        if report.exit_code != 0:
            print("FAIL: the tree must lint clean", file=sys.stderr)
            return 1
        if elapsed > args.budget:
            print(f"FAIL: lint took {elapsed:.3f}s, over the "
                  f"{args.budget:.1f}s budget", file=sys.stderr)
            return 1
        print("within budget")
        return 0

    document = collect(args.jobs)
    text = render(document)
    print(text)

    os.makedirs(os.path.dirname(OUT_REPORT), exist_ok=True)
    with open(OUT_REPORT, "w", encoding="utf-8") as fh:
        json.dump(document["report"], fh, indent=2)
        fh.write("\n")
    print(f"(wrote {OUT_REPORT})")
    with open(OUT_TEXT, "a", encoding="utf-8") as fh:
        fh.write(text + "\n\n")
    print(f"(appended to {OUT_TEXT})")
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        print(f"(wrote {args.json})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
