"""Ablation A2 — Darshan DXT buffer limit (footnote 9).

"The I/O operation count for ResNet152 is incomplete due to default
Darshan instrumentation buffer limits.  We will increase this limit and
explore the impact in future work."  This ablation performs that
future-work sweep: the same ResNet152 run under increasing per-process
DXT segment budgets, reporting observed vs actual operation counts and
the number of dropped segments.
"""

from repro.core import AnalysisSession, format_records
from repro.workflows import ResNet152Workflow, run_workflow

from conftest import emit


def run_with_buffer(limit: int, scale: float, adaptive: bool = False):
    workflow = ResNet152Workflow(scale=scale)
    return run_workflow(workflow, seed=4, dxt_buffer_limit=limit,
                        adaptive_dxt=adaptive)


def test_ablation_dxt_buffer_limit(bench_env, benchmark):
    scale = min(bench_env.scale, 0.15)
    # Per-process budgets from starved to ample.
    limits = [4, 16, 64, 10_000]

    results = {}
    for limit in limits[:-1]:
        results[limit] = run_with_buffer(limit, scale)
    results[limits[-1]] = benchmark.pedantic(
        run_with_buffer, args=(limits[-1], scale), rounds=1, iterations=1)

    rows = []
    for limit in limits:
        report = results[limit].data.darshan
        observed = len(AnalysisSession.of(results[limit].data).io_view())
        rows.append({
            "dxt_buffer_per_process": limit,
            "observed_io_ops": observed,
            "actual_posix_ops": report.total_io_ops,
            "dropped_segments": report.dropped_segments,
            "truncated": report.any_truncated,
        })
    # Future-work variant: adaptive capture at the starved budget keeps
    # sampling late operations instead of going blind.
    adaptive_result = run_with_buffer(limits[0], scale, adaptive=True)
    adaptive_report = adaptive_result.data.darshan
    adaptive_segments = [
        s for log in adaptive_report.logs for s in log.dxt_segments
    ]
    plain_segments = [
        s for log in results[limits[0]].data.darshan.logs
        for s in log.dxt_segments
    ]
    rows.append({
        "dxt_buffer_per_process": f"{limits[0]} (adaptive)",
        "observed_io_ops": len(adaptive_segments),
        "actual_posix_ops": adaptive_report.total_io_ops,
        "dropped_segments": adaptive_report.dropped_segments,
        "truncated": adaptive_report.any_truncated,
    })

    text = format_records(rows, title="DXT buffer-limit ablation "
                                      f"(ResNet152, scale={scale})")
    text += (
        "\n\nlatest operation visible under the starved budget: "
        f"plain={max(s.start for s in plain_segments):.2f}s, "
        f"adaptive={max(s.start for s in adaptive_segments):.2f}s"
    )
    emit("ablation_dxt_buffer", text)

    # Adaptive capture must see later into the run than plain DXT.
    assert max(s.start for s in adaptive_segments) > \
        max(s.start for s in plain_segments)

    # POSIX counters are buffer-independent; DXT visibility grows
    # monotonically with the budget until it covers everything.
    sweep = rows[:len(limits)]
    actuals = {r["actual_posix_ops"] for r in rows}
    assert len(actuals) == 1
    observed = [r["observed_io_ops"] for r in sweep]
    assert observed == sorted(observed)
    assert sweep[0]["truncated"] and not sweep[-1]["truncated"]
    assert sweep[-1]["observed_io_ops"] == sweep[-1]["actual_posix_ops"]
    for row in sweep:
        assert row["observed_io_ops"] + row["dropped_segments"] == \
            row["actual_posix_ops"]
