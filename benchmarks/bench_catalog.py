#!/usr/bin/env python
"""Data-lake catalog benchmark: ingest cost, query speedup, cache, daemon.

Workload: register ``--runs`` synthetic fast-profile runs (spread over
several shard dates) into a fresh on-disk catalog, then answer the
Fig.-3 cross-run variability question four ways:

* **naive**  — the pre-lake path: a fresh ``variability_report`` over
  freshly constructed ``RunData`` objects, re-parsing every run's
  event stream (O(runs x events) per question);
* **cold**   — a *new* ``Catalog`` object's first query: manifests and
  column blocks read from disk, no event stream opened;
* **warm**   — repeat queries on the same catalog object (manifests
  and blocks now cached in memory);
* **daemon** — the same query over HTTP against ``perfrecup serve``,
  asserted byte-identical to the in-process payload under 8
  concurrent clients.

The catalog answer is asserted numerically identical to the naive
report before any timing is reported, the cold query is required to
beat the naive loop, and the warm query to beat the cold one.  A
session-cache section replays a reuse-heavy view workload and reports
the hit rate while asserting occupancy never exceeds the configured
capacity.  Results go to ``benchmarks/out/catalog.txt``.

Run::

    PYTHONPATH=src python benchmarks/bench_catalog.py            # 1000 runs
    PYTHONPATH=src python benchmarks/bench_catalog.py --smoke    # CI tier
"""

from __future__ import annotations

import argparse
import concurrent.futures
import math
import os
import shutil
import sys
import tempfile
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.core import variability_report  # noqa: E402
from repro.lake import Catalog, http_query, serve, synthetic_run  # noqa: E402

OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "out", "catalog.txt")

WORKFLOW = "synthetic"
DATES = tuple(f"2026-07-{day:02d}" for day in range(1, 9))


def make_runs(n_runs: int, n_tasks: int):
    """The benchmark population: seeded, so regeneration is exact."""
    return [
        synthetic_run(workflow=WORKFLOW, n_tasks=n_tasks, run_index=i,
                      config={"profile": "fast", "bucket": i % 4})
        for i in range(n_runs)
    ]


def check_parity(naive: dict, document: dict) -> None:
    """The catalog answer must equal the naive report numerically."""
    for phase, got in document["phases"].items():
        stat = naive["phases"][phase]
        for field, want in stat.as_dict().items():
            if isinstance(want, str):
                continue
            if not math.isclose(want, got[field],
                                rel_tol=1e-09, abs_tol=1e-12):
                raise AssertionError(
                    f"phase {phase}.{field}: naive={want!r} "
                    f"catalog={got[field]!r}")
    naive_prefixes = set(naive["by_prefix"]["prefix"])
    lake_prefixes = {row["prefix"] for row in document["by_prefix"]}
    if naive_prefixes != lake_prefixes:
        raise AssertionError(
            f"by_prefix mismatch: {naive_prefixes} != {lake_prefixes}")


def bench_cache(root: str, runs_per_date: int, lines: list[str]) -> None:
    """Reuse-heavy view workload against a small session cache."""
    cap = 8
    catalog = Catalog.open(root, max_sessions=cap)
    ids = [entry.run_id for entry in catalog.query()][:20]
    hot, cold_tail = ids[:cap - 2], ids[cap - 2:]
    peak = 0
    for step in range(12 * len(hot)):
        run_id = (cold_tail[step // len(hot) % len(cold_tail)]
                  if step % len(hot) == len(hot) - 1
                  else hot[step % len(hot)])
        catalog.view_document(run_id, "task")
        peak = max(peak, catalog.sessions.stats()["sessions"])
    stats = catalog.sessions.stats()
    assert peak <= cap, f"cache overran capacity: {peak} > {cap}"
    assert stats["hit_rate"] > 0.5, (
        f"reuse-heavy workload should mostly hit: {stats}")
    lines.append(
        f"session cache: {stats['hits']} hits / {stats['misses']} misses "
        f"(hit_rate={stats['hit_rate']:.2f}), peak sessions "
        f"{peak} <= cap {cap}, evictions={stats['evictions']}")


def bench_daemon(root: str, lines: list[str]) -> None:
    """8 concurrent HTTP clients, byte-identical to in-process."""
    catalog = Catalog.open(root, max_sessions=8)
    view_id = catalog.query()[0].run_id
    targets = [
        f"/runs?workflow={WORKFLOW}",
        f"/reports/variability?workflow={WORKFLOW}",
        f"/runs/{view_id}",
        f"/runs/{view_id}/views/task",
    ]
    expected = {target: catalog.query_json(target) for target in targets}
    server = serve(catalog, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        requests = [targets[i % len(targets)] for i in range(32)]
        with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
            payloads = list(pool.map(
                lambda target: (target, http_query(server.address, target)),
                requests))
        for target, payload in payloads:
            assert payload == expected[target], f"daemon differs: {target}"
    finally:
        server.shutdown()
        server.server_close()
        thread.join(timeout=5.0)
    lines.append(
        f"daemon: 8 concurrent clients, {len(requests)} requests over "
        f"{len(targets)} routes — all byte-identical to in-process")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs", type=int, default=1000,
                        help="catalog population (default 1000)")
    parser.add_argument("--tasks", type=int, default=40,
                        help="tasks per synthetic run")
    parser.add_argument("--smoke", action="store_true",
                        help="small population for CI (48 runs x 24 tasks)")
    args = parser.parse_args(argv)
    n_runs = 48 if args.smoke else args.runs
    n_tasks = 24 if args.smoke else args.tasks

    lines = [f"bench_catalog: {n_runs} runs x {n_tasks} tasks"
             f"{' (smoke)' if args.smoke else ''}"]
    root = tempfile.mkdtemp(prefix="bench_catalog_")
    try:
        runs = make_runs(n_runs, n_tasks)

        t0 = time.perf_counter()
        catalog = Catalog.open(root)
        for index, run in enumerate(runs):
            catalog.register(run, date=DATES[index % len(DATES)])
        ingest_s = time.perf_counter() - t0
        lines.append(
            f"ingest: {n_runs} runs in {ingest_s:.3f} s "
            f"({n_runs / ingest_s:.0f} runs/s), "
            f"{len(catalog.shard_keys())} shards")

        # Naive baseline re-parses every event stream per question.
        fresh = make_runs(n_runs, n_tasks)
        t0 = time.perf_counter()
        naive = variability_report(fresh)
        naive_s = time.perf_counter() - t0

        cold_catalog = Catalog.open(root)
        t0 = time.perf_counter()
        document = cold_catalog.variability_document(workflow=WORKFLOW)
        cold_s = time.perf_counter() - t0

        warm_s = math.inf
        for _ in range(5):
            t0 = time.perf_counter()
            cold_catalog.variability_document(workflow=WORKFLOW)
            warm_s = min(warm_s, time.perf_counter() - t0)

        check_parity(naive, document)
        lines.append("parity: catalog variability matches naive report")
        assert cold_s < naive_s, (
            f"catalog cold ({cold_s:.3f} s) must beat the naive loop "
            f"({naive_s:.3f} s)")
        assert warm_s <= cold_s, (
            f"warm query ({warm_s:.4f} s) must beat cold ({cold_s:.4f} s)")
        lines.append(f"naive loop:   {naive_s:.3f} s")
        lines.append(f"catalog cold: {cold_s:.3f} s  "
                     f"speedup vs naive {naive_s / cold_s:.1f}x")
        lines.append(f"catalog warm: {warm_s * 1000:.2f} ms  "
                     f"speedup vs cold {cold_s / max(warm_s, 1e-9):.1f}x")

        pruned = Catalog.open(root)
        pruned.query(date=DATES[0])
        lines.append(
            f"pruning: date={DATES[0]} opened "
            f"{pruned.manifests_opened} of {len(pruned.shard_keys())} "
            f"manifests")

        bench_cache(root, n_runs // len(DATES), lines)
        bench_daemon(root, lines)
    finally:
        shutil.rmtree(root, ignore_errors=True)

    text = "\n".join(lines)
    # The CI smoke tier keeps its own artifact so it never clobbers a
    # recorded full-scale run.
    out_path = (OUT_PATH.replace(".txt", "_smoke.txt")
                if args.smoke else OUT_PATH)
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(text)
    print(f"(saved to {out_path})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
