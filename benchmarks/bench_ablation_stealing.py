"""Ablation A1 — work stealing on/off (§V, lessons learned).

"Work stealing is a runtime decision that may negatively impact overall
performance because of expensive data movements or unforeseen effects
in future task dispatching."  This ablation runs the same workflow with
the balancer enabled and disabled and reports wall time, transfer
volume, and steal counts — quantifying the trade the paper describes.
"""

import numpy as np

from repro.core import AnalysisSession, format_records
from repro.dasklike import DaskConfig
from repro.workflows import ImageProcessingWorkflow, run_workflow

from conftest import emit


def run_with(stealing: bool, scale: float, seed: int):
    config = DaskConfig(work_stealing=stealing)
    workflow = ImageProcessingWorkflow(scale=scale)
    return run_workflow(workflow, seed=seed, config=config)


def test_ablation_work_stealing(bench_env, benchmark):
    scale = min(bench_env.scale, 0.25)

    on = benchmark.pedantic(run_with, args=(True, scale, 11),
                            rounds=1, iterations=1)
    off = run_with(False, scale, 11)

    rows = []
    for label, result in (("stealing ON", on), ("stealing OFF", off)):
        comms = AnalysisSession.of(result.data).comm_view()
        steals = AnalysisSession.of(result.data).steal_view()
        rows.append({
            "config": label,
            "wall_s": round(result.wall_time, 2),
            "n_comms": len(comms),
            "bytes_moved_mib": round(
                float(np.sum(comms["nbytes"])) / 2**20, 1)
            if len(comms) else 0.0,
            "n_steals": len(steals),
            "n_tasks": len(AnalysisSession.of(result.data).task_view()),
        })
    text = format_records(rows, title="Work-stealing ablation "
                                      f"(ImageProcessing, scale={scale})")
    emit("ablation_stealing", text)

    by = {r["config"]: r for r in rows}
    assert by["stealing ON"]["n_steals"] >= 0
    assert by["stealing OFF"]["n_steals"] == 0
    # Both configurations complete the same work.
    assert by["stealing ON"]["n_tasks"] == by["stealing OFF"]["n_tasks"]
