"""Figure 7 — Distribution of warnings in XGBOOST over time.

Expected shape (§IV-D3): unresponsive-event-loop warnings concentrate
in the opening phase of the run (the paper counts 297 in the first
500 s), which "correlates perfectly with the long-running
read_parquet-fused-assign tasks".
"""

import numpy as np

from repro.core import (
    AnalysisSession,
    correlate_warnings_with_tasks,
    fig7_svg,
    format_records,
    warning_histogram,
    write_svg,
)

from conftest import OUT_DIR, emit


def test_fig7_warning_distribution(bench_env, benchmark):
    result = bench_env.one_run("XGBOOST")
    warnings = AnalysisSession.of(result.data).warning_view()
    bucket = max(5.0, result.wall_time / 20)
    hist = benchmark.pedantic(warning_histogram, args=(warnings,),
                              kwargs={"bucket": bucket},
                              rounds=1, iterations=1)

    correlation = correlate_warnings_with_tasks(
        warnings, AnalysisSession.of(result.data).task_view(), "read_parquet-fused-assign",
        kind="unresponsive_event_loop",
    )
    corr_gc = correlate_warnings_with_tasks(
        warnings, AnalysisSession.of(result.data).task_view(), "read_parquet-fused-assign",
        kind="gc_collect",
    )

    early_window = result.wall_time / 2
    times = warnings["time"].astype(float)
    n_early = int((times < early_window).sum())

    text = (
        format_records(hist.to_records(),
                       title=f"Warnings per {bucket:.0f}s bucket "
                             f"(wall={result.wall_time:.0f}s)")
        + "\n\n"
        + format_records(
            [{"kind": c["kind"], "in_rate_per_s": round(c["in_rate"], 4),
              "out_rate_per_s": round(c["out_rate"], 4),
              "ratio": round(c["ratio"], 2), "n_in": c["n_in"],
              "n_out": c["n_out"]}
             for c in (correlation, corr_gc)],
            title="Warning rate inside vs outside the "
                  "read_parquet-fused-assign span")
        + f"\n\nwarnings in first half of run: {n_early} / {len(warnings)}"
    )
    emit("fig7_warning_distribution", text)
    write_svg(fig7_svg(hist),
              f"{OUT_DIR}/fig7_warning_distribution.svg")

    # Shape assertions:
    kinds = set(warnings.unique("kind"))
    assert "unresponsive_event_loop" in kinds
    assert "gc_collect" in kinds
    # Early concentration.
    assert n_early > len(warnings) - n_early
    # Elevated rate while the fused reads hold their data (the paper's
    # "correlates perfectly" observation).
    assert correlation["ratio"] > 1.0
