"""Ablation A3 — Mofka producer batching (§VI, future work).

"Although anticipated to be negligible, future work will include a
thorough performance characterization of the overhead of Darshan and
Mofka within Dask workflows."  This ablation sweeps the producer batch
size and reports the instrumentation-side costs: events pushed, RPCs to
the broker, bytes ingested, mean batch occupancy and flush latency —
and the workflow wall time, to confirm the non-blocking design keeps
the overhead off the critical path.
"""

import numpy as np

from repro.core import format_records
from repro.workflows import ImageProcessingWorkflow, run_workflow

from conftest import emit


def run_with_batch(batch_size: int, scale: float):
    workflow = ImageProcessingWorkflow(scale=scale)
    return run_workflow(workflow, seed=6,
                        producer_batch_size=batch_size,
                        producer_linger=0.05)


def test_ablation_mofka_batching(bench_env, benchmark):
    scale = min(bench_env.scale, 0.2)
    batch_sizes = [1, 16, 64, 512]

    rows = []
    for batch_size in batch_sizes:
        if batch_size == 64:
            result = benchmark.pedantic(run_with_batch,
                                        args=(batch_size, scale),
                                        rounds=1, iterations=1)
        else:
            result = run_with_batch(batch_size, scale)
        # Broker-side counters captured in the provenance document.
        stats = result.data.provenance["layers"]["application"][
            "profilers"]["mofka"]["stats"]
        rows.append({
            "batch_size": batch_size,
            "events": stats["events"],
            "produce_rpcs": stats["produce_rpcs"],
            "events_per_rpc": round(
                stats["events"] / max(1, stats["produce_rpcs"]), 1),
            "bytes_ingested_kib": round(stats["bytes_ingested"] / 1024, 1),
            "wall_s": round(result.wall_time, 2),
        })

    text = format_records(rows, title="Mofka batching ablation "
                                      f"(ImageProcessing, scale={scale})")
    emit("ablation_mofka_batching", text)

    # Event count is batching-invariant up to end-of-run drain timing
    # (a longer final linger can admit one or two extra GC warnings);
    # bigger batches mean fewer broker RPCs; and because producers are
    # non-blocking, workflow wall time is insensitive to batch size.
    event_counts = [r["events"] for r in rows]
    assert max(event_counts) - min(event_counts) <= \
        0.01 * max(event_counts)
    rpcs = [r["produce_rpcs"] for r in rows]
    assert rpcs == sorted(rpcs, reverse=True)
    assert rpcs[0] > rpcs[-1]
    walls = [r["wall_s"] for r in rows]
    assert max(walls) < 1.3 * min(walls)
