"""Ablation A5 — worker memory limit and spill-to-disk behaviour.

The paper's Fig.-6 finding (partitions far above the recommended
128 MB) implies memory pressure; real Dask reacts by spilling stored
results to node-local scratch, trading wall time for survival.  This
ablation runs the XGBoost workflow under shrinking worker memory
limits with spilling enabled and reports spill traffic and wall time.
"""

import numpy as np

from repro.core import AnalysisSession, format_records
from repro.dasklike import DaskConfig
from repro.workflows import XGBoostWorkflow, run_workflow

from conftest import emit


def run_with_limit(limit_fraction: float, scale: float):
    workflow = XGBoostWorkflow(scale=scale)
    base = workflow.recommended_config()
    config = DaskConfig(
        memory_limit=int(base.memory_limit * limit_fraction),
        memory_spill_fraction=0.7,
        memory_spill_low=0.45,
        gc_pressure_rate=base.gc_pressure_rate,
    )
    return run_workflow(workflow, seed=23, config=config)


def test_ablation_memory_spill(bench_env, benchmark):
    scale = min(bench_env.scale, 0.15)
    fractions = [2.0, 1.0, 0.5]

    results = {}
    for fraction in fractions[:-1]:
        results[fraction] = run_with_limit(fraction, scale)
    results[fractions[-1]] = benchmark.pedantic(
        run_with_limit, args=(fractions[-1], scale), rounds=1,
        iterations=1)

    rows = []
    for fraction in fractions:
        result = results[fraction]
        spills = AnalysisSession.of(result.data).spill_view()
        out = spills.filter(
            np.array([d == "spill" for d in spills["direction"]])) \
            if len(spills) else spills
        rows.append({
            "memory_limit_x": fraction,
            "n_spills": len(out),
            "spilled_mib": round(
                float(np.sum(out["nbytes"])) / 2**20, 1)
            if len(out) else 0.0,
            "wall_s": round(result.wall_time, 2),
            "n_tasks": len(AnalysisSession.of(result.data).task_view()),
        })
    text = format_records(rows, title="Memory-limit/spill ablation "
                                      f"(XGBOOST, scale={scale})")
    emit("ablation_spill", text)

    assert len({r["n_tasks"] for r in rows}) == 1
    # Tighter memory means at least as much spill traffic.
    spilled = [r["spilled_mib"] for r in rows]
    assert spilled == sorted(spilled)
