#!/usr/bin/env python
"""Scheduler scale-out benchmark: transition throughput vs cluster size.

The paper characterizes workflows on 8 workers; the ROADMAP's north
star is 10k workers / 1M tasks, where the scheduler itself becomes the
bottleneck (the knee in Böhm & Beránek's *Runtime vs Scheduler*
analysis, arXiv 2010.11105).  This benchmark measures that knee for the
simulated WMS and proves the O(1)-per-transition refactor
(``dasklike.scheduler_state.OccupancyIndex``, reverse indexes, batched
slab dispatch) actually moved it:

* **Sweep** — chain-heavy graphs over a workers x tasks grid, timing
  the drive loop only (graph build and cluster deployment excluded).
  Reported per cell: wall seconds, tasks/s, recorded transitions/s.
* **Legacy comparison** — the same cell driven with the pre-refactor
  algorithms (whole-pool ``decide_worker`` sweep, sort-based stealing
  ``balance``, per-task slab dispatch), restored verbatim via instance
  monkeypatching.  The refactor must win by ``MIN_SPEEDUP`` at the
  1k-worker gate cell.
* **Ablations** — stealing aggressiveness (interval/off), locality
  weight, and linear-chain fusion depth, at a fixed mid-size cell.

The harness never calls ``DaskCluster.start()``: per-worker heartbeat/
GC/tick processes would add 10k perpetual event sources that have
nothing to do with placement cost.  Graphs are submitted straight to
the scheduler (leaves are pinned as wanted keys) and the run waits on
the leaves' wanted events; stealing, when enabled, is driven by its
normal interval loop.

Run::

    PYTHONPATH=src python benchmarks/bench_scheduler_scale.py
    PYTHONPATH=src python benchmarks/bench_scheduler_scale.py --smoke
    PYTHONPATH=src python benchmarks/bench_scheduler_scale.py --full
    PYTHONPATH=src python benchmarks/bench_scheduler_scale.py --json out.json

``--smoke`` runs one tiny cell plus a reduced legacy comparison under a
wall-time budget (exit 1 when busted) — tier-1 pytest wires it in via
``tests/test_bench_scheduler_scale_smoke.py``.  ``--full`` extends the
sweep to the 10k-worker / 1M-task north-star cell (several minutes).
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import os
import platform
import sys
import time
import types

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.dasklike import DaskCluster, DaskConfig, TaskGraph, TaskSpec  # noqa: E402
from repro.dasklike.taskgraph import fuse_linear_chains  # noqa: E402
from repro.dasklike.states import key_str  # noqa: E402
from repro.jobs import BatchSystem, JobSpec  # noqa: E402
from repro.platform import Cluster, ClusterSpec  # noqa: E402
from repro.sim import Environment, RandomStreams  # noqa: E402

HERE = os.path.dirname(os.path.abspath(__file__))
OUT_REPORT = os.path.join(HERE, "out", "scheduler_scale.json")

#: Required advantage of the refactored scheduler over the legacy
#: algorithms at the gate cell, in task throughput.
MIN_SPEEDUP = 10.0

#: Wall-time budget for ``--smoke``, seconds.  The smoke pass drives
#: ~2.5k tasks total; a clean run takes a few seconds.
SMOKE_BUDGET_SECONDS = 60.0

#: (workers, roots, chain depth) — tasks = roots * depth.  Roots are
#: >= 2x workers so every cell exercises the root co-assignment slab
#: path; depth keeps ~all remaining tasks on the dependency path of
#: ``decide_worker`` (the hot one).
SWEEP_CELLS = [
    (100, 250, 40),      # 10k tasks
    (300, 750, 40),      # 30k tasks
    (1000, 2500, 40),    # 100k tasks — the gate cell
]
FULL_CELLS = [
    (10000, 25000, 40),  # 1M tasks — the ROADMAP north star
]

#: The legacy algorithms pay O(workers) per transition, so the
#: comparison runs shorter chains at the same worker count (throughput
#: is per transition) to keep the benchmark's own wall time sane.
LEGACY_DEPTH = 12


# ----------------------------------------------------------------------
# pre-refactor algorithms, restored verbatim for the baseline
# ----------------------------------------------------------------------
def legacy_decide_worker(self, ts):
    """Whole-pool sweep ``decide_worker`` as of the pre-refactor tree."""
    candidates = {}
    if ts.spec.deps:
        for dep in ts.spec.deps:
            for address, holder in self.tasks[key_str(dep)].who_has.items():
                if address in self.workers:
                    candidates[address] = holder
        if candidates:
            mean_occ = (self._occupancy_total
                        / max(1, len(self.occupancy)))
            threshold = self.config.idle_fraction * mean_occ
            for address, worker in self.workers.items():
                if self.occupancy[address] < threshold \
                        or self.occupancy[address] == 0.0:
                    candidates[address] = worker
    if not candidates:
        candidates = dict(self.workers)

    best = None
    best_score = float("inf")
    for address, worker in candidates.items():
        transfer_bytes = 0
        for dep in ts.spec.deps:
            dep_ts = self.tasks[key_str(dep)]
            if address not in dep_ts.who_has:
                transfer_bytes += dep_ts.nbytes
        comm_cost = (
            self.config.locality_weight
            * transfer_bytes / self.config.bandwidth_estimate
        )
        score = self.occupancy[address] + comm_cost
        if score < best_score:
            best_score = score
            best = worker
    assert best is not None
    return best


def legacy_assign_slab(self, slab, worker, stimulus):
    """Per-task dispatch: one control-plane event per root task."""
    for ts in slab:
        self._assign(ts, stimulus=stimulus, worker=worker)


def legacy_balance(self):
    """Sort-the-pool stealing round as of the pre-refactor tree."""
    sched = self.scheduler
    workers = [w for w in sched.workers.values() if not w.failed]
    if len(workers) < 2:
        return 0
    by_occ = sorted(workers, key=lambda w: sched.occupancy[w.address])
    thief = by_occ[0]
    moved = 0
    for victim in reversed(by_occ[1:]):
        if not victim.ready:
            continue
        victim_occ = sched.occupancy[victim.address]
        thief_occ = sched.occupancy[thief.address]
        if victim_occ <= sched.config.steal_ratio * max(thief_occ, 0.05):
            break
        name = next(reversed(victim.ready))
        if self._steal(name, victim, thief):
            moved += 1
        break
    return moved


def apply_legacy(dask):
    sched = dask.scheduler
    sched.decide_worker = types.MethodType(legacy_decide_worker, sched)
    sched._assign_slab = types.MethodType(legacy_assign_slab, sched)
    dask.stealing.balance = types.MethodType(legacy_balance, dask.stealing)


@contextlib.contextmanager
def uncached_keys():
    """Restore the pre-refactor cost of key rendering.

    Before this PR, ``TaskSpec.name``/``group``/``prefix`` were plain
    properties and dependency names were re-rendered with ``key_str``
    at every use — a constant-factor tax the scheduler paid on every
    transition.  The legacy baseline must pay it too, or the comparison
    understates the pre-PR per-transition cost.
    """
    from repro.dasklike import taskgraph as tg
    attrs = ("name", "group", "prefix", "dep_names")
    saved = {attr: getattr(tg.TaskSpec, attr) for attr in attrs}
    tg.TaskSpec.name = property(lambda self: tg.key_str(self.key))
    tg.TaskSpec.group = property(lambda self: tg.key_group(self.key))
    tg.TaskSpec.prefix = property(lambda self: tg.key_split(self.key))
    tg.TaskSpec.dep_names = property(
        lambda self: tuple(tg.key_str(dep) for dep in self.deps))
    try:
        yield
    finally:
        for attr, value in saved.items():
            setattr(tg.TaskSpec, attr, value)


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
#: Scheduler entry points whose wall time counts as scheduler overhead.
#: They cover graph intake, every transition-driving callback, and the
#: stealing round — the work a real scheduler burns CPU on — while the
#: worker-side simulation (compute, transfers, queueing) is the
#: *simulated workload* and identical across scheduler variants.
SCHED_ENTRY_POINTS = ("update_graph", "task_finished", "task_erred",
                      "task_timed_out", "add_replica",
                      "handle_worker_failure")


def instrument_scheduler(dask):
    """Wrap scheduler entry points with a wall-clock accumulator."""
    clock = {"seconds": 0.0}

    def wrap(obj, attr):
        inner = getattr(obj, attr)

        def timed(*args, **kwargs):
            start = time.perf_counter()
            try:
                return inner(*args, **kwargs)
            finally:
                clock["seconds"] += time.perf_counter() - start

        setattr(obj, attr, timed)

    for attr in SCHED_ENTRY_POINTS:
        wrap(dask.scheduler, attr)
    wrap(dask.stealing, "balance")
    return clock


def build_rig(n_workers, config, seed=7):
    """Scheduler + n_workers registered workers, background loops off."""
    for per_node in (8, 5, 4, 2, 1):
        if n_workers % per_node == 0:
            break
    worker_nodes = n_workers // per_node
    env = Environment()
    streams = RandomStreams(seed)
    cluster = Cluster(
        env,
        ClusterSpec(num_nodes=worker_nodes + 2, nodes_per_switch=16),
        streams,
    )
    batch = BatchSystem(env, cluster, streams)
    spec = JobSpec(worker_nodes=worker_nodes, workers_per_node=per_node,
                   threads_per_worker=2)
    job = env.run(until=env.process(batch.submit(spec)))
    dask = DaskCluster(env, cluster, job, config=config, streams=streams)
    return env, dask


def chain_graph(token, n_roots, depth):
    """n_roots independent chains of the given depth (tiny payloads)."""
    specs = []
    for root in range(n_roots):
        prev = None
        for level in range(depth):
            key = (f"chain-{token}", root * depth + level)
            specs.append(TaskSpec(
                key=key,
                deps=() if prev is None else (prev,),
                compute_time=0.001,
                output_nbytes=1024,
            ))
            prev = key
    return TaskGraph(specs)


def run_cell(n_workers, n_roots, depth, config=None, legacy=False,
             fused=False, seed=7):
    """Drive one workers x tasks cell; returns the measurement record."""
    config = config or DaskConfig(gc_base_rate=0.0, gc_pressure_rate=0.0)
    if legacy:
        with uncached_keys():
            return _run_cell_inner(n_workers, n_roots, depth, config,
                                   True, fused, seed)
    return _run_cell_inner(n_workers, n_roots, depth, config,
                           False, fused, seed)


def _run_cell_inner(n_workers, n_roots, depth, config, legacy, fused, seed):
    env, dask = build_rig(n_workers, config, seed=seed)
    if legacy:
        apply_legacy(dask)
    clock = instrument_scheduler(dask)
    if config.work_stealing:
        dask.stealing.start()
    graph = chain_graph(f"{n_workers:05d}{depth:03d}", n_roots, depth)
    n_submitted = len(graph)
    if fused:
        graph = fuse_linear_chains(graph)
    sched = dask.scheduler

    def waiter():
        index = sched.update_graph(graph)
        for name in graph.leaves():
            yield sched.wanted_event(name)
        return index

    # Collector pauses over the (large, growing) record lists would
    # land inside the instrumented entry points and swamp the
    # per-transition signal; nothing in the drive loop creates cycles
    # that need collecting mid-run.
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        env.run(until=env.process(waiter()))
        elapsed = time.perf_counter() - start
    finally:
        gc.enable()
    dask.stealing.stop()

    n_tasks = len(graph)
    transitions = len(sched.transitions)
    sched_seconds = max(clock["seconds"], 1e-9)
    return {
        "workers": n_workers,
        "tasks": n_tasks,
        "tasks_submitted": n_submitted,
        "depth": depth,
        "legacy": legacy,
        "fused": fused,
        "wall_seconds": round(elapsed, 4),
        "sched_seconds": round(sched_seconds, 4),
        "sim_seconds": round(env.now, 3),
        "transitions": transitions,
        "tasks_per_second": round(n_tasks / elapsed, 1),
        "transitions_per_second": round(transitions / elapsed, 1),
        # The knee metric: transitions retired per second of scheduler
        # work (graph intake, placement, completion handling, stealing
        # rounds) — worker-side simulation excluded.
        "sched_transitions_per_second": round(
            transitions / sched_seconds, 1),
        "sched_us_per_transition": round(
            1e6 * sched_seconds / max(transitions, 1), 2),
    }


# ----------------------------------------------------------------------
# benchmark sections
# ----------------------------------------------------------------------
def run_sweep(cells, log=print):
    rows = []
    for n_workers, n_roots, depth in cells:
        row = run_cell(n_workers, n_roots, depth)
        log(f"  sweep  {row['workers']:>6} workers  {row['tasks']:>8} tasks"
            f"  {row['wall_seconds']:>8.2f} s wall"
            f"  {row['sched_us_per_transition']:>7.1f} us/transition"
            f"  {row['sched_transitions_per_second']:>9.0f} trans/sched-s")
        rows.append(row)
    return rows


def run_gate(n_workers, n_roots, depth, legacy_depth=None, log=print):
    """Refactored vs legacy transition throughput at one cell.

    Throughput is transitions per second of *scheduler* time: the
    worker-side simulation dominates wall clock equally in both
    variants, and the refactor's target is the scheduler's own
    per-transition cost (the quantity Böhm & Beránek's knee is made
    of).  The legacy variant runs shallower chains — its O(workers)
    per-transition cost makes full-depth runs pointless — which is fair
    because the metric is per transition.
    """
    current = run_cell(n_workers, n_roots, depth)
    baseline = run_cell(n_workers, n_roots,
                        legacy_depth or LEGACY_DEPTH, legacy=True)
    speedup = (current["sched_transitions_per_second"]
               / max(baseline["sched_transitions_per_second"], 1e-9))
    log(f"  gate   {n_workers} workers: "
        f"{current['sched_us_per_transition']:.1f} us/transition "
        f"refactored vs {baseline['sched_us_per_transition']:.1f} legacy "
        f"-> {speedup:.1f}x (wall: {current['tasks_per_second']:.0f} vs "
        f"{baseline['tasks_per_second']:.0f} tasks/s)")
    return {"current": current, "baseline": baseline,
            "speedup": round(speedup, 2)}


def run_ablations(log=print):
    """Stealing aggressiveness, locality weight, fusion depth."""
    n_workers, n_roots, depth = 100, 250, 40
    out = {"stealing": [], "locality": [], "fusion": []}

    for label, kwargs in (
        ("off", {"work_stealing": False}),
        ("gentle-0.5s", {"work_stealing_interval": 0.5}),
        ("default-0.1s", {}),
        ("aggressive-0.02s", {"work_stealing_interval": 0.02}),
    ):
        config = DaskConfig(gc_base_rate=0.0, gc_pressure_rate=0.0,
                            **kwargs)
        row = run_cell(n_workers, n_roots, depth, config=config)
        row["variant"] = label
        out["stealing"].append(row)
        log(f"  steal  {label:<18} {row['tasks_per_second']:>10.0f} tasks/s"
            f"  ({row['sim_seconds']:.1f} sim-s)")

    for weight in (0.0, 1.0, 4.0):
        config = DaskConfig(gc_base_rate=0.0, gc_pressure_rate=0.0,
                            locality_weight=weight)
        row = run_cell(n_workers, n_roots, depth, config=config)
        row["variant"] = f"locality_weight={weight}"
        out["locality"].append(row)
        log(f"  local  weight={weight:<4} {row['tasks_per_second']:>10.0f}"
            f" tasks/s  ({row['sim_seconds']:.1f} sim-s)")

    for fused in (False, True):
        row = run_cell(n_workers, n_roots, depth, fused=fused)
        row["variant"] = "fused-chains" if fused else "unfused"
        # Per *submitted* task: fusion collapses each chain, so the
        # scheduler sees fewer (longer) tasks for the same workload.
        row["submitted_per_second"] = round(
            row["tasks_submitted"] / row["wall_seconds"], 1)
        out["fusion"].append(row)
        log(f"  fuse   {row['variant']:<13} {row['tasks']:>7} sched tasks"
            f"  {row['submitted_per_second']:>10.0f} submitted tasks/s")
    return out


def run_smoke(budget=SMOKE_BUDGET_SECONDS, log=print):
    """One tiny cell + reduced legacy comparison under a budget.

    At 64 workers the legacy O(workers) term is noise-level, so the
    speedup here is informational only; the ``MIN_SPEEDUP`` gate runs
    at 1k workers in the default mode.  Smoke asserts structure (both
    scheduler variants drive the cell to completion) and wall time.
    """
    log("scheduler scale benchmark (smoke)")
    start = time.perf_counter()
    row = run_cell(64, 160, 10)
    gate = run_gate(64, 160, 4, legacy_depth=4, log=log)
    elapsed = time.perf_counter() - start
    correct = (row["tasks"] == 1600 and row["transitions"] > 0
               and gate["current"]["tasks"] == 640
               and gate["baseline"]["tasks"] == 640
               and gate["baseline"]["transitions"] > 0)
    if not correct:
        print(f"smoke FAILED: cell={row['tasks_per_second']:.0f} tasks/s, "
              f"mini-gate={gate['speedup']:.2f}x", file=sys.stderr)
        return False
    if elapsed > budget:
        print(f"smoke pass took {elapsed:.1f} s, over the {budget:.1f} s "
              f"budget", file=sys.stderr)
        return False
    log(f"  smoke  {elapsed:.1f} s, within budget ({budget:.0f} s)"
        f"  cell={row['tasks_per_second']:.0f} tasks/s"
        f"  mini-gate={gate['speedup']:.1f}x")
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="budget-guarded quick pass (CI)")
    parser.add_argument("--full", action="store_true",
                        help="extend the sweep to 10k workers / 1M tasks")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="also write the report to PATH")
    parser.add_argument("--budget", type=float,
                        default=SMOKE_BUDGET_SECONDS,
                        help="smoke wall-time budget, seconds")
    args = parser.parse_args(argv)

    if args.smoke:
        return 0 if run_smoke(budget=args.budget) else 1

    document = {
        "meta": {
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "min_speedup_gate": MIN_SPEEDUP,
            "legacy_depth": LEGACY_DEPTH,
        },
    }
    cells = SWEEP_CELLS + (FULL_CELLS if args.full else [])
    print("sweep (refactored scheduler):")
    document["sweep"] = run_sweep(cells)
    print("legacy gate:")
    document["gate"] = run_gate(*SWEEP_CELLS[-1])
    print("ablations (100 workers, 10k tasks):")
    document["ablations"] = run_ablations()

    os.makedirs(os.path.join(HERE, "out"), exist_ok=True)
    with open(OUT_REPORT, "w") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"report -> {OUT_REPORT}")
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"report -> {args.json}")

    speedup = document["gate"]["speedup"]
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: gate speedup {speedup:.1f}x < {MIN_SPEEDUP:.0f}x")
        return 1
    print(f"gate speedup {speedup:.1f}x >= {MIN_SPEEDUP:.0f}x")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
