#!/usr/bin/env python
"""Overhead benchmark for the telemetry layer (metrics + spans).

Workload: the same ImageProcessing repetition executed twice from one
seed — bare, then with a full :class:`~repro.telemetry.Telemetry`
bundle attached (periodic samplers on the engine monitor hook,
scheduler/worker plugins building spans, Mofka flush observers).

Two things are measured and reported:

* **perturbation** — the recorded event streams must be *identical*
  byte for byte; the samplers piggyback on the monitor hook and never
  schedule simulation events, so observing a run cannot change it.
  The benchmark asserts this before reporting any timing.
* **wall-clock overhead** — telemetry-on time relative to bare time,
  plus the volume it bought (metric rows, spans).  There is no hard
  floor by default: the interesting number is the trajectory appended
  to ``benchmarks/out/telemetry_overhead.txt``.

Run::

    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py
    PYTHONPATH=src python benchmarks/bench_telemetry_overhead.py --smoke
"""

from __future__ import annotations

import argparse
import gc
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.telemetry import Telemetry  # noqa: E402
from repro.workflows import ImageProcessingWorkflow, run_workflow  # noqa: E402

OUT_PATH = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "out", "telemetry_overhead.txt")


def _time_run(scale: float, seed: int, telemetry=None):
    gc.collect()
    start = time.perf_counter()
    result = run_workflow(ImageProcessingWorkflow(scale=scale), seed=seed,
                          telemetry=telemetry)
    return result, time.perf_counter() - start


def run_bench(scale: float, seed: int, repeats: int) -> str:
    bare_best = traced_best = float("inf")
    bare = traced = telemetry = None
    for _ in range(repeats):
        bare, bare_wall = _time_run(scale, seed)
        telemetry = Telemetry(interval=0.5, run_name="image_processing",
                              seed=seed)
        traced, traced_wall = _time_run(scale, seed, telemetry=telemetry)
        bare_best = min(bare_best, bare_wall)
        traced_best = min(traced_best, traced_wall)

    if traced.data.events != bare.data.events:
        raise AssertionError(
            "telemetry perturbed the run: event streams differ")

    records = telemetry.metrics_records()
    overhead = (traced_best / bare_best - 1.0) * 100.0
    lines = [
        f"telemetry overhead @ ImageProcessing scale={scale} seed={seed} "
        f"(best of {repeats})",
        f"  events recorded : {len(bare.data.events)} "
        "(identical with telemetry on)",
        f"  bare            : {bare_best:.3f} s",
        f"  telemetry on    : {traced_best:.3f} s",
        f"  overhead: {overhead:+.1f}%",
        f"  metric rows     : {len(records)} "
        f"({len({r['metric'] for r in records})} metrics)",
        f"  spans           : {len(telemetry.tracer.spans)}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1,
                        help="workflow scale factor (default 0.1)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed passes; best-of wins (default 3)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scale for CI: parity + volume checks, "
                             "no artifact write")
    parser.add_argument("--max-overhead", type=float, default=None,
                        help="fail if overhead exceeds this percentage "
                             "(default: unchecked)")
    args = parser.parse_args(argv)

    scale = min(args.scale, 0.04) if args.smoke else args.scale
    repeats = 1 if args.smoke else args.repeats

    text = run_bench(scale, args.seed, repeats)
    print(text)

    if not args.smoke:
        os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
        with open(OUT_PATH, "a", encoding="utf-8") as fh:
            fh.write(text + "\n\n")
        print(f"(appended to {OUT_PATH})")

    if args.max_overhead is not None:
        overhead = float(text.split("overhead: ")[1].split("%")[0])
        if overhead > args.max_overhead:
            print(f"FAIL: overhead {overhead:+.1f}% above the "
                  f"{args.max_overhead:.1f}% ceiling", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
