#!/usr/bin/env python
"""End-to-end benchmark for the pass-by-reference data plane.

Workload: ResNet152 batch inference — one 230 MB model checkpoint
broadcast to every predict task — executed from one seed with the data
plane off (classic peer fetches) and then on, once per backend
(``local`` / ``pfs`` / ``mofka``).

Two platforms frame the result:

* **commodity** (10 GbE, NFS-class shared FS, 16 worker nodes): the
  broadcast is transfer-bound, so the backend choice decides the
  makespan.  The Mofka blob channel sidesteps the owner-NIC
  serialization and wins end to end; NFS staging loses to its own
  slow OSTs — an honest negative result the paper's characterization
  methodology is supposed to surface.
* **polaris** (Slingshot-class NIC): transfers are nearly free, so
  proxying is expected to be ~neutral.  This is the control that keeps
  the headline from overclaiming.

Before any timing is reported the benchmark asserts the zero-footprint
contract: with ``proxy_enabled=False`` the recorded event stream is
*identical* to a run that never heard of the data plane.

Results land in ``BENCH_proxystore.json`` (simulated makespans,
speedups, and the per-backend saved-transfer-time attribution from
``data_plane_report``).

Run::

    PYTHONPATH=src python benchmarks/bench_proxystore.py
    PYTHONPATH=src python benchmarks/bench_proxystore.py --smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    os.pardir, "src"))

from repro.core import AnalysisSession  # noqa: E402
from repro.dasklike import DaskConfig  # noqa: E402
from repro.jobs import JobSpec  # noqa: E402
from repro.platform import COMMODITY_CLUSTER, POLARIS_LIKE  # noqa: E402
from repro.workflows import ResNet152Workflow, run_workflow  # noqa: E402

BACKENDS = ("local", "pfs", "mofka")

JSON_PATH = os.path.normpath(
    os.path.join(os.path.dirname(os.path.abspath(__file__)),
                 os.pardir, "BENCH_proxystore.json"))

#: name -> (cluster spec, job layout).
PLATFORMS = {
    "commodity": (COMMODITY_CLUSTER,
                  JobSpec(worker_nodes=16, workers_per_node=2,
                          threads_per_worker=4)),
    "polaris": (POLARIS_LIKE,
                JobSpec(worker_nodes=4, workers_per_node=4,
                        threads_per_worker=8)),
}


def _run(scale, seed, cluster_spec, job_spec, config=None):
    return run_workflow(ResNet152Workflow(scale=scale), seed=seed,
                        cluster_spec=cluster_spec, job_spec=job_spec,
                        config=config)


def check_parity(scale: float, seed: int, cluster_spec, job_spec,
                 baseline) -> None:
    """proxy_enabled=False must be byte-identical to no-data-plane."""
    disabled = _run(scale, seed, cluster_spec, job_spec,
                    config=DaskConfig(proxy_enabled=False))
    if disabled.data.events != baseline.data.events:
        raise AssertionError(
            "disabled data plane perturbed the run: event streams differ")


def bench_platform(name: str, scale: float, seed: int) -> dict:
    cluster_spec, job_spec = PLATFORMS[name]
    baseline = _run(scale, seed, cluster_spec, job_spec)
    check_parity(scale, seed, cluster_spec, job_spec, baseline)

    cell = {
        "cluster": cluster_spec.name,
        "job": {"worker_nodes": job_spec.worker_nodes,
                "workers_per_node": job_spec.workers_per_node,
                "threads_per_worker": job_spec.threads_per_worker},
        "baseline_makespan_s": round(baseline.data.wall_time, 4),
        "parity_with_proxy_disabled": True,
        "backends": {},
    }
    for backend in BACKENDS:
        result = _run(scale, seed, cluster_spec, job_spec,
                      config=DaskConfig(proxy_enabled=True,
                                        proxy_backend=backend))
        report = AnalysisSession.of(result.data).data_plane_report()
        makespan = result.data.wall_time
        mine = report["by_backend"][backend]
        cell["backends"][backend] = {
            "makespan_s": round(makespan, 4),
            "speedup": round(baseline.data.wall_time / makespan, 3),
            "n_puts": mine["n_puts"],
            "n_resolves": mine["n_resolves"],
            "gb_resolved": round(mine["bytes_resolved"] / 2**30, 3),
            "resolve_s": round(mine["resolve_s"], 4),
            "baseline_estimate_s": round(mine["baseline_s"], 4),
            "saved_transfer_s": round(mine["saved_s"], 4),
        }
    return cell


def format_text(document: dict) -> str:
    lines = [f"proxystore data plane @ ResNet152 "
             f"scale={document['meta']['scale']} "
             f"seed={document['meta']['seed']}"]
    for platform, cell in document["platforms"].items():
        lines.append(f"  {platform} ({cell['cluster']}, "
                     f"{cell['job']['worker_nodes']}x"
                     f"{cell['job']['workers_per_node']} workers): "
                     f"baseline {cell['baseline_makespan_s']:.3f} s "
                     "(identical with proxying disabled)")
        for backend, row in cell["backends"].items():
            lines.append(
                f"    {backend:<6} makespan {row['makespan_s']:.3f} s  "
                f"speedup {row['speedup']:.2f}x  "
                f"resolved {row['gb_resolved']:.2f} GB in "
                f"{row['resolve_s']:.3f} s  "
                f"saved {row['saved_transfer_s']:.1f} s vs estimate")
    best = max(
        (row["speedup"]
         for cell in document["platforms"].values()
         for row in cell["backends"].values()))
    lines.append(f"  best end-to-end speedup: {best:.2f}x")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.15,
                        help="workflow scale factor (default 0.15)")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--platforms", nargs="*",
                        choices=sorted(PLATFORMS), default=None,
                        help="platforms to run (default: all)")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny scale for CI: commodity platform "
                             "only, parity check, no artifact write")
    parser.add_argument("--json", default=JSON_PATH,
                        help="result document path "
                             "(default BENCH_proxystore.json)")
    args = parser.parse_args(argv)

    scale = min(args.scale, 0.02) if args.smoke else args.scale
    platforms = (["commodity"] if args.smoke
                 else (args.platforms or sorted(PLATFORMS)))

    document = {
        "meta": {
            "workflow": "resnet152",
            "model_bytes": ResNet152Workflow.MODEL_BYTES,
            "scale": scale,
            "seed": args.seed,
            "backends": list(BACKENDS),
            "makespans": "simulated seconds (end-to-end workflow time)",
        },
        "platforms": {name: bench_platform(name, scale, args.seed)
                      for name in platforms},
    }

    print(format_text(document))

    if not args.smoke:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(document, fh, indent=2)
            fh.write("\n")
        print(f"(written to {args.json})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
