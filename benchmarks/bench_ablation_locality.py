"""Ablation A4 — placement objective locality weight (§V).

The lessons-learned section attributes variability to placement:
"initial task placement can lead to different communication patterns
... further impacting performance".  This ablation sweeps the weight of
the data-transfer term in the scheduler's placement objective and
reports the resulting communication counts and volumes — quantifying
the locality/balance trade the objective encodes.
"""

import numpy as np

from repro.core import AnalysisSession, format_records
from repro.dasklike import DaskConfig
from repro.workflows import ImageProcessingWorkflow, run_workflow

from conftest import emit


def run_with_weight(weight: float, scale: float):
    config = DaskConfig(locality_weight=weight)
    return run_workflow(ImageProcessingWorkflow(scale=scale), seed=17,
                        config=config)


def test_ablation_locality_weight(bench_env, benchmark):
    scale = min(bench_env.scale, 0.2)
    weights = [0.0, 1.0, 20.0]

    results = {}
    for weight in weights[:-1]:
        results[weight] = run_with_weight(weight, scale)
    results[weights[-1]] = benchmark.pedantic(
        run_with_weight, args=(weights[-1], scale), rounds=1, iterations=1)

    rows = []
    for weight in weights:
        result = results[weight]
        comms = AnalysisSession.of(result.data).comm_view()
        rows.append({
            "locality_weight": weight,
            "n_comms": len(comms),
            "bytes_moved_mib": round(
                float(np.sum(comms["nbytes"])) / 2**20, 1)
            if len(comms) else 0.0,
            "wall_s": round(result.wall_time, 2),
            "n_tasks": len(AnalysisSession.of(result.data).task_view()),
        })
    text = format_records(rows, title="Locality-weight ablation "
                                      f"(ImageProcessing, scale={scale})")
    emit("ablation_locality", text)

    by = {r["locality_weight"]: r for r in rows}
    # Same work completed regardless of the objective.
    assert len({r["n_tasks"] for r in rows}) == 1
    # Ignoring locality entirely must not move *less* data than a
    # strongly locality-biased objective.
    assert by[0.0]["bytes_moved_mib"] >= by[20.0]["bytes_moved_mib"]
