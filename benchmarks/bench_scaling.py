"""Extension E1 — scaling study (§VI: "we will run larger-scale studies").

Runs the ImageProcessing workflow on growing allocations (1, 2, 4
worker nodes at 4 workers × 8 threads each) and reports wall time,
communication, and coordination share — the first cut of the larger-
scale study the paper defers.  Expected shape: more workers shorten the
compute/I-O phases but inflate communication and leave the coordination
floor untouched, so efficiency decays for this short workflow.
"""

from repro.core import AnalysisSession, format_records, phase_breakdown
from repro.jobs import JobSpec
from repro.workflows import ImageProcessingWorkflow, run_workflow

from conftest import emit


def run_with_nodes(worker_nodes: int, scale: float):
    spec = JobSpec(worker_nodes=worker_nodes, workers_per_node=4,
                   threads_per_worker=8)
    return run_workflow(ImageProcessingWorkflow(scale=scale), seed=31,
                        job_spec=spec)


def test_scaling_worker_nodes(bench_env, benchmark):
    scale = min(bench_env.scale, 0.25)
    node_counts = [1, 2, 4]

    results = {}
    for nodes in node_counts[:-1]:
        results[nodes] = run_with_nodes(nodes, scale)
    results[node_counts[-1]] = benchmark.pedantic(
        run_with_nodes, args=(node_counts[-1], scale),
        rounds=1, iterations=1)

    rows = []
    base_wall = None
    for nodes in node_counts:
        result = results[nodes]
        breakdown = phase_breakdown(result.data)
        if base_wall is None:
            base_wall = result.wall_time
        rows.append({
            "worker_nodes": nodes,
            "threads": nodes * 4 * 8,
            "wall_s": round(result.wall_time, 2),
            "speedup": round(base_wall / result.wall_time, 2),
            "efficiency": round(
                base_wall / result.wall_time / nodes, 2),
            "n_comms": len(AnalysisSession.of(result.data).comm_view()),
            "io_s": round(breakdown.io, 2),
            "compute_s": round(breakdown.computation, 2),
        })
    text = format_records(rows, title="Scaling study "
                                      f"(ImageProcessing, scale={scale})")
    emit("scaling_worker_nodes", text)

    # Same work at every size.
    tasks = {len(AnalysisSession.of(results[n].data).task_view()) for n in node_counts}
    assert len(tasks) == 1
    # More nodes never slow the workflow down dramatically...
    assert results[4].wall_time < 1.5 * results[1].wall_time
    # ...but parallel efficiency decays (the coordination floor).
    assert rows[-1]["efficiency"] < rows[0]["efficiency"]
