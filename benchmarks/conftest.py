"""Shared infrastructure for the benchmark harness.

Every bench regenerates one table or figure of the paper's evaluation.
The simulated runs are expensive relative to the analyses, so they are
produced once per session (memoized per workflow) and shared; the
``benchmark`` fixture then times the PERFRECUP analysis that produces
the artifact, and each bench prints (and writes under
``benchmarks/out/``) the same rows/series the paper reports.

Scaling knobs (environment):

* ``REPRO_FULL=1``  — paper scale (151 images / 3929 files / 20 GiB,
  10/10/50 repetitions).  Expect tens of minutes.
* ``REPRO_SCALE=x`` — dataset/task scale factor (default 0.08).
* ``REPRO_RUNS=n``  — repetitions per workflow (default 3).
* ``REPRO_WORKERS=n`` — fan repetitions out over ``n`` workers
  (default: serial).
* ``REPRO_EXECUTOR=serial|thread|process|auto`` — repetition backend
  when ``REPRO_WORKERS`` is set (default auto; only the process pool
  reduces wall time for this pure-Python workload).
"""

import functools
import os

import pytest

from repro.workflows import (
    ImageProcessingWorkflow,
    ResNet152Workflow,
    XGBoostWorkflow,
    run_many,
)

OUT_DIR = os.path.join(os.path.dirname(__file__), "out")

FACTORIES = {
    "ImageProcessing": ImageProcessingWorkflow,
    "ResNet152": ResNet152Workflow,
    "XGBOOST": XGBoostWorkflow,
}


class BenchEnv:
    def __init__(self):
        self.full = os.environ.get("REPRO_FULL") == "1"
        self.scale = float(os.environ.get(
            "REPRO_SCALE", "1.0" if self.full else "0.08"))
        default_runs = "10" if self.full else "3"
        self.runs = int(os.environ.get("REPRO_RUNS", default_runs))
        self.seed = int(os.environ.get("REPRO_SEED", "1"))
        workers = os.environ.get("REPRO_WORKERS")
        self.workers = int(workers) if workers else None
        self.executor = os.environ.get("REPRO_EXECUTOR", "auto")
        self._cache = {}

    def runs_of(self, workflow_name: str, n_runs: int | None = None):
        """Memoized multi-run execution of one workflow."""
        factory_cls = FACTORIES[workflow_name]
        if n_runs is None:
            n_runs = self.runs
            if self.full and workflow_name == "XGBOOST":
                n_runs = int(os.environ.get("REPRO_RUNS_XGB", "50"))
        key = (workflow_name, n_runs)
        if key not in self._cache:
            self._cache[key] = run_many(
                functools.partial(factory_cls, scale=self.scale),
                n_runs=n_runs, seed=self.seed,
                workers=self.workers, executor=self.executor,
            )
        return self._cache[key]

    def one_run(self, workflow_name: str):
        return self.runs_of(workflow_name)[0]


@pytest.fixture(scope="session")
def bench_env():
    return BenchEnv()


def emit(name: str, text: str) -> None:
    """Print a bench artifact and persist it under benchmarks/out/."""
    os.makedirs(OUT_DIR, exist_ok=True)
    path = os.path.join(OUT_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(text + "\n")
    print(f"\n{'=' * 72}\n{name}  (saved to {path})\n{'=' * 72}")
    print(text)
