"""Figure 6 — Parallel-coordinate chart of tasks in XGBOOST.

Five coordinates per task: elapsed time, category, thread, output size
(MB), duration (s).  Expected shape (§IV-D3): the longest tasks (the
red lines) belong to ``read_parquet-fused-assign``, and their output
sizes are significantly larger than the 128 MB recommended by the Dask
developers.
"""

import numpy as np

from repro.core import (
    AnalysisSession,
    fig6_svg,
    format_records,
    longest_categories,
    oversized_tasks,
    parallel_coordinates,
    RECOMMENDED_CHUNK_BYTES,
    write_svg,
)

from conftest import OUT_DIR, emit


def test_fig6_parallel_coordinates(bench_env, benchmark):
    result = bench_env.one_run("XGBOOST")
    tasks = AnalysisSession.of(result.data).task_view()
    coords = benchmark.pedantic(parallel_coordinates, args=(tasks,),
                                rounds=1, iterations=1)

    top = longest_categories(tasks, top=8)
    big = oversized_tasks(tasks)

    longest = coords.sort_by("duration", descending=True).head(12)
    sample = longest.to_records()
    for row in sample:
        row["elapsed"] = round(row["elapsed"], 2)
        row["size_mb"] = round(row["size_mb"], 1)
        row["duration"] = round(row["duration"], 3)

    text = (
        format_records(top.to_records(),
                       title="Categories by max duration")
        + "\n\n"
        + format_records(sample,
                         columns=["elapsed", "category", "thread_rank",
                                  "size_mb", "duration"],
                         title="Longest tasks (the red lines)")
        + f"\n\noversized tasks (> {RECOMMENDED_CHUNK_BYTES // 2**20} MB): "
        + f"{len(big)} — categories {sorted(set(big['category'])) if len(big) else []}"
    )
    emit("fig6_parallel_coordinates", text)
    write_svg(fig6_svg(coords),
              f"{OUT_DIR}/fig6_parallel_coordinates.svg")

    # Shape assertions from the paper's reading of the chart:
    assert top["category"][0] == "read_parquet-fused-assign"
    assert len(big) > 0
    assert big["category"][0] == "read_parquet-fused-assign"
    fused = coords.filter(np.array(
        [c == "read_parquet-fused-assign" for c in coords["category"]]))
    assert float(np.mean(fused["size_mb"])) > 128
