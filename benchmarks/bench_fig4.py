"""Figure 4 — Per-thread I/O of the ImageProcessing workflow over time.

Regenerates the timeline series (thread lane, start, duration, op,
relative size) and the burst structure the paper reads off the chart:
three read phases, each followed by a write phase; phase-2/3 writes of
a few kilobytes vs the large phase-1 writes; reads issued as 4 MB
operations, 10-25 per image.
"""

import numpy as np

from repro.core import (
    AnalysisSession,
    detect_phases,
    fig4_svg,
    format_records,
    io_timeline,
    write_svg,
)

from conftest import OUT_DIR, emit


def test_fig4_per_thread_io_timeline(bench_env, benchmark):
    result = bench_env.one_run("ImageProcessing")
    io = AnalysisSession.of(result.data).io_view()
    timeline = benchmark.pedantic(io_timeline, args=(io,),
                                  rounds=1, iterations=1)

    phases = detect_phases(io, gap=max(2.0, result.wall_time / 10),
                           min_ops=5)
    phase_rows = [{
        "phase": i, "op": p.op, "start_s": round(p.start, 2),
        "end_s": round(p.end, 2), "ops": p.n_ops,
        "mib": round(p.bytes / 2**20, 1),
    } for i, p in enumerate(phases)]

    sample = timeline.head(20).to_records()
    for row in sample:
        row["start"] = round(row["start"], 4)
        row["duration"] = round(row["duration"], 5)
        row["rel_size"] = round(row["rel_size"], 3)
    text = (
        format_records(phase_rows, title="I/O burst phases")
        + "\n\n"
        + format_records(sample, title=f"Timeline series (first 20 of "
                                       f"{len(timeline)} segments)")
    )
    emit("fig4_per_thread_io", text)
    write_svg(fig4_svg(timeline), f"{OUT_DIR}/fig4_per_thread_io.svg")

    # Shape assertions: at full scale the three graph submissions show
    # as three read bursts; tiny scaled-down runs may merge the final
    # (kilobyte-sized) burst into the preceding one, so require the
    # full structure only at scale >= 0.5.
    ops = [p.op for p in phases]
    wanted_reads = 3 if bench_env.scale >= 0.5 else 2
    assert ops.count("read") >= wanted_reads, \
        f"expected {wanted_reads} read bursts, got {ops}"
    assert "write" in ops
    # Reads are 4 MiB-capped operations.
    reads = io.filter(np.array([o == "read" for o in io["op"]]))
    assert int(np.max(reads["length"])) <= 4 * 2**20
    # Multiple threads participate (the y-axis of the figure).
    assert len(set(timeline["pthread_id"])) > 8
    # 10-25 reads of the original images per imread task: check the
    # per-file read op counts of the original dataset.
    per_file = {}
    for i in range(len(reads)):
        path = reads["file"][i]
        if "/bcss/" in path:
            per_file[path] = per_file.get(path, 0) + 1
    counts = list(per_file.values())
    assert min(counts) >= 10 and max(counts) <= 25
