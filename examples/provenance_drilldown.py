#!/usr/bin/env python
"""Provenance drill-down: from a slow run to a single task's lineage.

Scenario: an XGBoost training run was slower than expected.  This
example walks the investigation the paper's framework enables:

1. find the slowest task categories (parallel-coordinates view);
2. check whether runtime warnings cluster around them;
3. pull the complete provenance of the worst offender — its
   dependencies, every state transition, where it ran, on which
   pthread, and the exact POSIX operations it issued;
4. verify the FAIR join-key coverage that made step 3 possible.

Run:  python examples/provenance_drilldown.py
"""

from repro.core import (
    AnalysisSession,
    correlate_warnings_with_tasks,
    format_records,
    fuse_io_with_tasks,
    identifier_coverage,
    longest_categories,
    per_task_io,
    render_provenance,
    task_provenance,
)
from repro.workflows import XGBoostWorkflow, run_workflow


def main() -> None:
    result = run_workflow(XGBoostWorkflow(scale=0.08), seed=13)
    session = AnalysisSession.of(result)
    tasks = session.task_view()

    print("1) slowest task categories")
    top = longest_categories(tasks, top=5)
    print(format_records(top.to_records()))
    suspect = top["category"][0]

    print(f"\n2) warning correlation with {suspect!r}")
    correlation = correlate_warnings_with_tasks(
        session.warning_view(), tasks, suspect)
    print(f"   unresponsive-loop rate inside its span: "
          f"{correlation['in_rate']:.3f}/s, outside: "
          f"{correlation['out_rate']:.3f}/s "
          f"(ratio {correlation['ratio']:.1f}x)")

    print(f"\n3) lineage of the single slowest {suspect!r} task")
    slow = tasks.filter(lambda row: row["prefix"] == suspect) \
                .sort_by("duration", descending=True)
    key = slow["key"][0]
    print(render_provenance(task_provenance(session, key)))

    print(f"\n   per-task I/O summary for {key}:")
    fused = fuse_io_with_tasks(tasks, session.io_view())
    io_summary = per_task_io(fused).filter(
        lambda row: row["key"] == key)
    print(format_records(io_summary.to_records()))

    print("\n4) identifier coverage of the views used above")
    for name, view in (("task", tasks), ("io", session.io_view()),
                       ("warning", session.warning_view())):
        print(f"   {name}: {identifier_coverage(view, name)}")


if __name__ == "__main__":
    main()
