#!/usr/bin/env python
"""Cross-run variability study (the paper's central experiment).

Runs the XGBoost workflow several times in identical configuration —
only the platform noise, allocation, and dynamic scheduling differ —
then quantifies what varied:

* per-phase durations with error bars (Fig. 3);
* which task categories contribute the most variance;
* how differently the scheduler placed and ordered the shared tasks
  (the "were tasks scheduled in the same order?" analysis of §IV-D).

Run:  python examples/variability_study.py [n_runs] [scale]
"""

import sys

from repro.core import (
    compare_runs,
    format_bar,
    format_records,
    variability_report,
)
from repro.workflows import XGBoostWorkflow, run_many


def main() -> None:
    n_runs = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.08

    print(f"running XGBOOST x{n_runs} at scale {scale} ...")
    results = run_many(lambda: XGBoostWorkflow(scale=scale),
                       n_runs=n_runs, seed=7)

    # One call loads sessions, builds breakdowns and task views (cached
    # per run), and aggregates the cross-run statistics.
    report = variability_report([r.data for r in results], workers=2)
    stats = report["phases"]

    print("\nNormalized phase durations (mean fraction of wall time, "
          "±std across runs):")
    for phase in ("io", "communication", "computation", "total"):
        print(format_bar(phase, stats["normalized"][phase], 1.0,
                         err=stats["normalized_err"][phase]))

    print("\nRaw phase statistics:")
    print(format_records(
        [stats[p].as_dict() for p in
         ("io", "communication", "computation", "total")]))

    print("\nTask categories by cross-run variability (top 8):")
    print(format_records(report["by_prefix"].head(8).to_records()))

    views = [session.task_view() for session in report["sessions"]]

    print("\nScheduling differences between runs "
          "(1.0 = same placement / identical order):")
    print(format_records(compare_runs(views).to_records()))


if __name__ == "__main__":
    main()
