#!/usr/bin/env python
"""In-situ monitoring: watch a workflow while it runs.

Implements the paper's future-work direction (§VI): Darshan records are
pushed to Mofka *at runtime* ("a fully online system"), and an in-situ
consumer follows both streams while the workflow executes — no waiting
for logs at shutdown.  Because Mofka streams are persistent, the
monitor "can proceed at its own pace" without slowing the producers.

The monitor prints a progress line per snapshot: tasks completed, I/O
volume so far, warnings, and its own consumer lag.

Run:  python examples/online_monitoring.py
"""

from repro.core import format_records
from repro.dasklike.utils import format_bytes
from repro.instrument import (
    DXT_TOPIC,
    InstrumentedRun,
    OnlineMonitor,
    PROVENANCE_TOPIC,
)
from repro.jobs import BatchSystem, JobSpec
from repro.platform import Cluster, ClusterSpec
from repro.sim import Environment, RandomStreams
from repro.workflows import ImageProcessingWorkflow


def main() -> None:
    env = Environment()
    streams = RandomStreams(33)
    cluster = Cluster(env, ClusterSpec(), streams)
    batch = BatchSystem(env, cluster, streams)
    job = env.run(until=env.process(batch.submit(
        JobSpec.paper_default("online-demo"))))

    # online_darshan=True installs the Darshan->Mofka bridge.
    run = InstrumentedRun(env, cluster, job, streams=streams,
                          online_darshan=True)
    run.start()

    workflow = ImageProcessingWorkflow(scale=0.15)
    workflow.prepare(cluster, streams)
    client = run.client()

    def report(snapshot):
        print(f"  t={snapshot.time:7.2f}s  tasks={snapshot.tasks_completed:5d}"
              f"  io={format_bytes(snapshot.io_bytes):>12}"
              f"  warnings={sum(snapshot.warnings.values()):3d}"
              f"  lag={snapshot.lag:4d}")

    monitor = OnlineMonitor(env, run.mofka, (PROVENANCE_TOPIC, DXT_TOPIC),
                            interval=0.5, on_snapshot=report)
    monitor.start()

    print("running ImageProcessing with live monitoring:")

    def driver():
        yield env.process(client.connect())
        yield env.process(workflow.driver(env, client, cluster))
        yield env.process(run.drain())

    env.run(until=env.process(driver()))
    monitor.stop()

    def final():
        yield env.process(monitor.poll())

    env.run(until=env.process(final()))
    snap = monitor.snapshots[-1]
    print("\nfinal per-category mean durations (from the live stream):")
    rows = [{"prefix": p, "n": n, "mean_s": round(mean, 4)}
            for p, (n, mean) in sorted(snap.prefix_durations.items())]
    print(format_records(rows))


if __name__ == "__main__":
    main()
