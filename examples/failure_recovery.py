#!/usr/bin/env python
"""Failure injection: kill a worker mid-run and watch recovery.

Beyond the paper's healthy-allocation evaluation, the framework's
provenance makes failure forensics possible: the scheduler detects the
dead worker through missed heartbeats (SSG-style), recomputes the keys
that lived only there, reassigns in-flight tasks — and every recovery
step lands in the transition stream, so PERFRECUP can show exactly
what the failure cost.

Run:  python examples/failure_recovery.py
"""

from repro.core import AnalysisSession, format_records
from repro.dasklike import TaskGraph, TaskSpec
from repro.instrument import InstrumentedRun
from repro.jobs import BatchSystem, JobSpec
from repro.platform import Cluster, ClusterSpec
from repro.sim import Environment, RandomStreams


def build_graph(width=24, token="dead0001"):
    tasks = [
        TaskSpec(key=(f"stage1-{token}", i), compute_time=0.4,
                 output_nbytes=4 * 2**20)
        for i in range(width)
    ] + [
        TaskSpec(key=(f"stage2-{token}", i),
                 deps=((f"stage1-{token}", i),),
                 compute_time=0.4, output_nbytes=2**20)
        for i in range(width)
    ] + [
        TaskSpec(key=f"final-{token}",
                 deps=tuple((f"stage2-{token}", i) for i in range(width)),
                 compute_time=0.1, output_nbytes=64),
    ]
    return TaskGraph(tasks)


def main() -> None:
    env = Environment()
    streams = RandomStreams(55)
    cluster = Cluster(env, ClusterSpec(), streams)
    batch = BatchSystem(env, cluster, streams)
    job = env.run(until=env.process(batch.submit(
        JobSpec.paper_default("failure-demo"))))
    run = InstrumentedRun(env, cluster, job, streams=streams)
    run.start()
    run.dask.scheduler.start_liveness_monitor(misses=3)
    client = run.client()
    victim = run.dask.workers[2]

    def killer():
        yield env.timeout(1.2)
        print(f"  !! killing worker {victim.address} at "
              f"t={env.now:.2f}s (holds {len(victim.data)} results)")
        victim.fail()

    results = []

    def driver():
        yield env.process(client.connect())
        result = yield env.process(client.compute(build_graph(),
                                                  optimize=False))
        results.append(result)
        run.dask.scheduler.stop_liveness_monitor()
        yield env.process(run.drain())

    env.process(killer())
    env.run(until=env.process(driver()))

    (index, values), = results
    print(f"\nworkflow completed anyway: final={values['final-dead0001']}")

    session = AnalysisSession.of(run, client=client)
    transitions = session.transition_view()
    recovery = transitions.filter(
        lambda row: row["stimulus"] in ("worker-failed", "recompute"))
    print(f"\nrecovery transitions recorded: {len(recovery)}")
    print(format_records(
        recovery.head(12).select(
            ["key", "start_state", "finish_state", "stimulus",
             "timestamp"]).to_records(),
        title="First recovery transitions"))

    tasks = session.task_view()
    reruns = {}
    for key in tasks["key"]:
        reruns[key] = reruns.get(key, 0) + 1
    recomputed = {k: n for k, n in reruns.items() if n > 1}
    print(f"\ntasks executed more than once (recomputed): "
          f"{len(recomputed)}")
    print(f"surviving workers: {len(run.dask.scheduler.workers)} of "
          f"{len(run.dask.workers)}")


if __name__ == "__main__":
    main()
