#!/usr/bin/env python
"""Postprocessing path: persist runs to disk, reload, analyze.

The paper's framework deliberately decouples collection from analysis:
Mofka streams are persistent, Darshan logs are files, and PERFRECUP
fuses them *after* the run (§III-E3).  This example exercises that
path end to end:

1. run the ResNet152 workflow twice, persisting full run directories
   (provenance.json, job.json, logs.jsonl, mofka/, darshan/);
2. reload each directory through ``AnalysisSession`` — no live
   objects involved;
3. compare the two runs: phase breakdown, Darshan summaries (including
   the DXT truncation flag), and scheduling agreement;
4. demonstrate an in-situ style Mofka replay: pull the persisted event
   stream and count event types.

Run:  python examples/postprocess_run_directory.py [out_dir]
"""

import os
import sys
import tempfile
from collections import Counter

from repro.core import format_records, placement_agreement, sessions_for
from repro.instrument import PROVENANCE_TOPIC
from repro.mofka import MofkaService
from repro.workflows import ResNet152Workflow, run_many


def main() -> None:
    out_dir = sys.argv[1] if len(sys.argv) > 1 else tempfile.mkdtemp(
        prefix="repro-runs-")
    print(f"persisting runs under {out_dir}")

    results = run_many(lambda: ResNet152Workflow(scale=0.05),
                       n_runs=2, seed=21, persist_dir=out_dir)
    run_dirs = [r.run_dir for r in results]

    # Reload purely from disk (sessions load the run directories and
    # cache every view/derived analysis they build).
    sessions = sessions_for(run_dirs, workers=2)

    rows = []
    for i, session in enumerate(sessions):
        data = session.run
        breakdown = session.phase_breakdown()
        darshan = data.darshan.summary()
        rows.append({
            "run": i,
            "wall_s": round(data.wall_time, 2),
            "io_s": round(breakdown.io, 3),
            "comm_s": round(breakdown.communication, 3),
            "io_ops": darshan["total_io_ops"],
            "dxt_truncated": darshan["dxt_truncated"],
            "files": darshan["distinct_files"],
        })
    print(format_records(rows, title="Reloaded runs"))

    views = [session.task_view() for session in sessions]
    agreement = placement_agreement(views[0], views[1])
    print(f"\nplacement agreement between the two runs: {agreement:.2%}")

    # Replay the persisted Mofka stream of run 0.
    topics = MofkaService.load_topics(os.path.join(run_dirs[0], "mofka"))
    counts = Counter(e.metadata["type"]
                     for e in topics[PROVENANCE_TOPIC].events())
    print("\nevent types in the persisted provenance stream:")
    for event_type, count in counts.most_common():
        print(f"  {event_type:>14}: {count}")


if __name__ == "__main__":
    main()
