#!/usr/bin/env python
"""Quickstart: run one instrumented workflow and look at its data.

This is the 5-minute tour of the reproduction:

1. run the ImageProcessing workflow (scaled down) with the full
   instrumentation stack — Dask-Mofka plugins, Darshan/DXT with
   pthread IDs, layered provenance capture;
2. load the observations into PERFRECUP views;
3. print the phase breakdown, the busiest task categories, and one
   task's full lineage.

Run:  python examples/quickstart.py
"""

from repro.core import (
    AnalysisSession,
    format_records,
    longest_categories,
    render_provenance,
    task_provenance,
)
from repro.workflows import ImageProcessingWorkflow, run_workflow


def main() -> None:
    # One run, ~1/10 of the paper's dataset so it finishes in seconds.
    result = run_workflow(ImageProcessingWorkflow(scale=0.1), seed=42)
    # The memoized analysis facade: every view and derived analysis is
    # built once and cached for the life of the session.
    session = AnalysisSession.of(result)

    print(f"workflow wall time: {result.wall_time:.1f} simulated seconds\n")

    # Fig.-3-style phase decomposition of this single run.
    breakdown = session.phase_breakdown()
    print(format_records([breakdown.as_dict()], title="Phase breakdown"))
    print()

    # Which task categories dominate?
    tasks = session.task_view()
    print(format_records(
        longest_categories(tasks, top=5).to_records(),
        title="Longest task categories"))
    print()

    # Full provenance of the single longest task (Fig.-8 style).
    longest = tasks.sort_by("duration", descending=True)["key"][0]
    print(render_provenance(task_provenance(session, longest)))


if __name__ == "__main__":
    main()
