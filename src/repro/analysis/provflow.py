"""Provenance-flow lint: identifier tracking through dataflow.

The schema family (:mod:`repro.analysis.schema`) checks emission sites
whose payload is a dict literal at the call; anything built up across
statements, returned from a helper, or merged via ``**kwargs`` falls
through as ``prov-untyped-emission`` and relies on a human suppressing
the funnel.  This family picks up exactly those sites and runs the
intraprocedural dict-key dataflow (:mod:`repro.analysis.dataflow`) plus
project-level helper-return resolution over them, so the FAIR
identifier contract of :mod:`repro.core.fair` is enforced as *flow*,
not syntax — the Souza et al. data-observability requirement that
identifier propagation into provenance events be verifiable.

``flow-missing-identifier``
    The resolved payload provably lacks a required identifier for its
    event type (same contract as ``prov-missing-identifier``, one
    dataflow step deeper).
``flow-unknown-event-type``
    The resolved payload's ``type`` is a constant with no
    :data:`~repro.analysis.schema.EVENT_REQUIREMENTS` entry.
``flow-unresolved-emission``
    Dataflow could not resolve the payload either (dynamic keys, an
    opaque helper, a parameter): suppress at generic funnels, next to
    the matching ``prov-untyped-emission`` suppression.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from . import dataflow
from .engine import ProjectRule, register
from .findings import Finding
from .schema import (
    EVENT_REQUIREMENTS,
    _emission_sites,
    required_columns,
    satisfied_identifiers,
)

__all__ = ["resolve_emission"]

#: Recursion budget for helper-return resolution (helper calling a
#: helper); beyond this the site reports as unresolved.
_MAX_HELPER_DEPTH = 2


class _HelperReturnResolver:
    """Resolve ``payload = make_event(...)`` through the project index.

    A helper's contribution is the *intersection* of the key sets of
    its dict-shaped returns (a key present on every path is provably
    supplied); one unresolvable return poisons the helper.
    """

    def __init__(self, project):
        self.project = project
        self._cache: dict[str, Optional[dataflow.DictState]] = {}
        self._depth = 0

    def __call__(self, call: ast.Call) -> Optional[dataflow.DictState]:
        name = self._callee_name(call)
        if not name:
            return None
        candidates = self.project.by_name.get(name, ())
        if not candidates or self._depth >= _MAX_HELPER_DEPTH:
            return None
        states = []
        self._depth += 1
        try:
            for info in candidates:
                state = self._return_state(info)
                if state is None:
                    return None
                states.append(state)
        finally:
            self._depth -= 1
        merged = states[0].copy()
        for state in states[1:]:
            merged.keys &= state.keys
            if state.type_value != merged.type_value:
                merged.type_value = None
        return merged

    @staticmethod
    def _callee_name(call: ast.Call) -> str:
        func = call.func
        if isinstance(func, ast.Attribute):
            return func.attr
        if isinstance(func, ast.Name):
            return func.id
        return ""

    def _return_state(self, info) -> Optional[dataflow.DictState]:
        cached = self._cache.get(info.qualname, False)
        if cached is not False:
            return cached
        flow = dataflow.DictKeyFlow(info.node, resolve_call=self)
        states = []
        for node in dataflow.own_nodes(info.node):
            if not isinstance(node, ast.Return) or node.value is None:
                continue
            if isinstance(node.value, ast.Name):
                state = flow.state_at(node.value.id, node)
            else:
                state = flow.eval_at(node.value, node)
            if state is None:
                states = None
                break
            states.append(state)
        if not states:
            result = None
        else:
            result = states[0].copy()
            for state in states[1:]:
                result.keys &= state.keys
                if state.type_value != result.type_value:
                    result.type_value = None
        self._cache[info.qualname] = result
        return result


def resolve_emission(call: ast.Call, enclosing: Optional[ast.AST],
                     resolver) -> Optional[dataflow.DictState]:
    """Dict state reaching one ``push``/``_push`` payload, or None."""
    attr = call.func.attr  # caller guarantees Attribute func
    payload = call.args[0] if attr == "push" else call.args[1]
    if enclosing is None:
        return None
    flow = dataflow.DictKeyFlow(enclosing, resolve_call=resolver)
    if isinstance(payload, ast.Name):
        return flow.state_at(payload.id, call)
    # Dict-with-unpack and helper-call payloads evaluate inline against
    # the environment built up before the emission statement.
    return flow.eval_at(payload, call)


def _untyped_sites(module):
    """Emission calls the schema family could not resolve."""
    seen = set()
    for node, kind, _message in _emission_sites(module):
        # AST-node identity keys never leave this single lint run.
        # repro: allow[det-id-key]
        if kind == "prov-untyped-emission" and id(node) not in seen:
            seen.add(id(node))  # repro: allow[det-id-key]
            yield node


class _FlowRule(ProjectRule):
    """Shared driver: each concrete rule keeps its own diagnostics."""

    family = "provflow"

    def check_project(self, project) -> Iterable[Finding]:
        resolver = _HelperReturnResolver(project)
        for module in project.modules:
            dataflow.attach_parents(module.tree)
            for call in _untyped_sites(module):
                for kind, message in self._diagnose(call, resolver):
                    if kind == self.name:
                        yield self.finding(module, call, message)

    def _diagnose(self, call: ast.Call, resolver):
        attr = call.func.attr
        enclosing = dataflow.enclosing_function(call)
        state = resolve_emission(call, enclosing, resolver)
        if state is None:
            yield ("flow-unresolved-emission",
                   f"{attr}() payload could not be resolved by dataflow "
                   f"(dynamic keys or an opaque helper); verify the "
                   f"identifier contract manually and suppress at the "
                   f"funnel")
            return
        if attr == "_push":
            type_arg = call.args[0]
            event_type = type_arg.value \
                if isinstance(type_arg, ast.Constant) else None
        else:
            event_type = state.type_value
        if event_type is None:
            if "type" in state.keys:
                yield ("flow-unresolved-emission",
                       f"{attr}() payload resolves, but its 'type' value "
                       f"is dynamic; the schema cannot be selected "
                       f"statically — suppress at generic funnels")
            else:
                yield ("flow-missing-identifier",
                       f"{attr}() payload resolves to keys without a "
                       f"'type'; consumers cannot route the event")
            return
        if event_type not in EVENT_REQUIREMENTS:
            yield ("flow-unknown-event-type",
                   f"event type {event_type!r} (resolved through "
                   f"dataflow) has no EVENT_REQUIREMENTS entry")
            return
        _present, missing = satisfied_identifiers(event_type, state.keys)
        for ident in sorted(missing):
            acceptable = ", ".join(
                sorted(required_columns(event_type)[ident]))
            yield ("flow-missing-identifier",
                   f"{event_type!r} emission payload, resolved through "
                   f"dataflow, lacks the {ident!r} identifier (need one "
                   f"of: {acceptable}); downstream joins will produce "
                   f"nulls")


@register
class FlowMissingIdentifierRule(_FlowRule):
    name = "flow-missing-identifier"
    description = ("dataflow-resolved emission payload lacks a required "
                   "identifier")


@register
class FlowUnknownEventTypeRule(_FlowRule):
    name = "flow-unknown-event-type"
    description = ("dataflow-resolved event type absent from "
                   "EVENT_REQUIREMENTS")


@register
class FlowUnresolvedEmissionRule(_FlowRule):
    name = "flow-unresolved-emission"
    description = ("emission payload unresolvable even through dataflow; "
                   "suppress at generic funnels")
