"""Project-wide symbol table and conservative call graph.

A :class:`Project` holds every parsed module of one lint run and
answers the cross-module questions the whole-program pass families
ask: which functions exist and where, who (conservatively) calls whom,
which generator functions are spawned as engine processes
(``env.process(self._dispatch(...))`` sites), which of those are
interval *loop drivers* versus per-event transition code, and what is
reachable from a set of roots.

Call resolution is name-based and deliberately over-approximate: a
call ``x.task_finished(...)`` links to every function named
``task_finished`` in the project (narrowed to the defining class when
the receiver is ``self``).  Over-approximation is the right polarity
for the hotpath pass (a scan *possibly* on the event path is worth a
look) and the concurrency pass exempts guarded sites, so precision is
recovered where it matters.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Optional

from . import dataflow
from .engine import ModuleSource

__all__ = ["FunctionInfo", "Project"]


class FunctionInfo:
    """One function or method in the project."""

    __slots__ = ("qualname", "module", "node", "class_name", "name",
                 "is_generator")

    def __init__(self, qualname: str, module: ModuleSource,
                 node: ast.AST, class_name: Optional[str]):
        self.qualname = qualname
        self.module = module
        self.node = node
        self.class_name = class_name
        self.name = node.name
        self.is_generator = dataflow.is_generator(node)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FunctionInfo({self.qualname})"


def _module_label(path: str) -> str:
    base = os.path.basename(path)
    return base[:-3] if base.endswith(".py") else base


class Project:
    """Symbol table + call graph over one set of parsed modules."""

    def __init__(self, modules: Iterable[ModuleSource]):
        self.modules = list(modules)
        #: qualname -> FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        #: bare function name -> [FunctionInfo, ...] in discovery order
        self.by_name: dict[str, list[FunctionInfo]] = {}
        #: qualname -> sorted callee qualnames
        self.calls: dict[str, list[str]] = {}
        self._spawned: Optional[list[FunctionInfo]] = None
        self._index()
        self._link_calls()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _index(self) -> None:
        for module in self.modules:
            dataflow.attach_parents(module.tree)
            label = _module_label(module.path)
            for node in ast.walk(module.tree):
                if not isinstance(node, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                cls = dataflow.enclosing_class(node)
                class_name = cls.name if cls is not None else None
                qual = f"{label}:{class_name}.{node.name}" \
                    if class_name else f"{label}:{node.name}"
                # Re-definitions (overloads across modules collide only
                # on the qualname, which embeds the module label).
                if qual in self.functions:
                    qual = f"{qual}@{node.lineno}"
                info = FunctionInfo(qual, module, node, class_name)
                self.functions[qual] = info
                self.by_name.setdefault(node.name, []).append(info)

    def _link_calls(self) -> None:
        for qual, info in self.functions.items():
            callees: set[str] = set()
            for node in dataflow.own_nodes(info.node):
                if not isinstance(node, ast.Call):
                    continue
                name, self_call = self._callee_name(node)
                candidates = self.by_name.get(name, ())
                if self_call:
                    candidates = [
                        t for t in candidates
                        if t.class_name is None
                        or info.class_name is None
                        or t.class_name == info.class_name]
                else:
                    candidates = self._narrow_by_receiver(node, candidates)
                for target in candidates:
                    callees.add(target.qualname)
            self.calls[qual] = sorted(callees)

    @staticmethod
    def _narrow_by_receiver(call: ast.Call, candidates) -> list:
        """Prefer candidates whose class matches the receiver's name.

        ``self.scheduler.heartbeat(...)`` should link to
        ``Scheduler.heartbeat`` only, not to every ``heartbeat`` in the
        project: when the receiver name is a prefix of some candidate's
        class name (``sched``/``scheduler`` → ``Scheduler``, ``env`` →
        ``Environment``), keep just those; with no match fall back to
        all candidates (stay conservative).
        """
        func = call.func
        if not isinstance(func, ast.Attribute):
            return list(candidates)
        receiver = func.value
        if isinstance(receiver, ast.Attribute):
            hint = receiver.attr
        elif isinstance(receiver, ast.Name) and receiver.id != "self":
            hint = receiver.id
        else:
            return list(candidates)
        hint = hint.lstrip("_").lower()
        if len(hint) < 3:
            return list(candidates)
        matched = [t for t in candidates
                   if t.class_name is not None
                   and t.class_name.lower().startswith(hint)]
        return matched or list(candidates)

    @staticmethod
    def _callee_name(call: ast.Call) -> tuple[str, bool]:
        """(bare callee name, receiver-is-self) for one call site."""
        func = call.func
        if isinstance(func, ast.Attribute):
            is_self = isinstance(func.value, ast.Name) and \
                func.value.id == "self"
            return func.attr, is_self
        if isinstance(func, ast.Name):
            return func.id, False
        return "", False

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def module_for(self, path: str) -> Optional[ModuleSource]:
        for module in self.modules:
            if module.path == path:
                return module
        return None

    def reachable_from(self, roots: Iterable[str]) -> set[str]:
        """Transitive closure of qualnames over the call graph."""
        seen: set[str] = set()
        frontier = [q for q in roots if q in self.functions]
        while frontier:
            qual = frontier.pop()
            if qual in seen:
                continue
            seen.add(qual)
            frontier.extend(self.calls.get(qual, ()))
        return seen

    # -- engine process structure --------------------------------------
    def spawned_generators(self) -> list[FunctionInfo]:
        """Generator functions handed to ``env.process(...)`` somewhere.

        Spawn sites look like ``env.process(self._dispatch(ev), ...)``
        or ``self.env.process(worker_loop(...))``: the first argument
        is a call to (or name of) the generator function being started.
        """
        if self._spawned is not None:
            return self._spawned
        spawned: dict[str, FunctionInfo] = {}
        for info in self.functions.values():
            for node in dataflow.own_nodes(info.node):
                if not (isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr == "process"
                        and node.args):
                    continue
                target_name = self._spawn_target(node.args[0])
                for target in self.by_name.get(target_name, ()):
                    if target.is_generator:
                        spawned[target.qualname] = target
        self._spawned = [spawned[q] for q in sorted(spawned)]
        return self._spawned

    @staticmethod
    def _spawn_target(arg: ast.AST) -> str:
        if isinstance(arg, ast.Call):
            name, _ = Project._callee_name(arg)
            return name
        if isinstance(arg, ast.Name):
            return arg.id
        if isinstance(arg, ast.Attribute):
            return arg.attr
        return ""

    def loop_drivers(self) -> list[FunctionInfo]:
        """Spawned generators structured as interval loops.

        A loop driver is a generator whose own scope contains a
        ``while`` loop that yields: the stealing/liveness/heartbeat/GC
        pattern.  These run once per interval, not once per event, so
        the hotpath pass excludes them from the per-event roots while
        the concurrency pass treats them as long-lived contexts racing
        against event handlers.
        """
        return [info for info in self.spawned_generators()
                if any(dataflow.function_yields(loop)
                       for loop in dataflow.while_loops_of(info.node))]

    def event_roots(self) -> list[FunctionInfo]:
        """Spawned generators on the per-event path (not loop drivers)."""
        drivers = {info.qualname for info in self.loop_drivers()}
        return [info for info in self.spawned_generators()
                if info.qualname not in drivers]

    def hot_functions(self) -> set[str]:
        """Qualnames reachable from the per-event process roots."""
        return self.reachable_from(
            info.qualname for info in self.event_roots())

    def loop_reachable(self) -> set[str]:
        """Qualnames reachable from the interval loop drivers."""
        return self.reachable_from(
            info.qualname for info in self.loop_drivers())
