"""Correctness tooling: static analysis and runtime sanitizing.

The static side is a whole-program analysis engine: per-module AST
rules plus project rules that run over a cross-module symbol table,
call graph (:mod:`repro.analysis.callgraph`) and intraprocedural
dataflow core (:mod:`repro.analysis.dataflow`).  Five pass families
guard the properties the whole analysis chain depends on:

* **Determinism** (:mod:`repro.analysis.determinism`) — AST rules
  flagging nondeterminism hazards (wall clocks, unseeded RNGs,
  unordered iteration, ``id()`` keys, float accumulation) in simulated
  code paths.
* **Provenance schema** (:mod:`repro.analysis.schema`) — verifies
  every Mofka emission site supplies the shared identifiers declared
  in :mod:`repro.core.fair`, so records stay joinable.
* **Concurrency** (:mod:`repro.analysis.concurrency`) — logical races
  in the cooperative kernel: stale loop guards across yields,
  cross-context state mutation without revalidation, monitor hooks
  that perturb the event stream.
* **Hot path** (:mod:`repro.analysis.hotpath`) — linear scans and
  copies of unbounded collections inside per-event-transition code,
  found via the project call graph.
* **Provenance flow** (:mod:`repro.analysis.provflow`) — the schema
  contract enforced one dataflow step deeper: identifiers tracked
  through assignments, helper returns and ``**kwargs`` merges to each
  emission site.

Plus the **event-ordering sanitizer** (:mod:`repro.analysis.sanitizer`),
a runtime race detector for the discrete-event kernel.

CLI front ends: ``perfrecup lint`` and ``perfrecup sanitize``; see
``docs/static_analysis.md``.
"""

from .engine import (
    LintEngine,
    ModuleSource,
    ProjectRule,
    Rule,
    fingerprint,
    load_baseline,
    prune_baseline,
    register,
    registered_rules,
    rules_for,
    write_baseline,
)
from .findings import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    Finding,
    LintReport,
)
from .sanitizer import EventOrderSanitizer
from .schema import EVENT_REQUIREMENTS

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "EVENT_REQUIREMENTS",
    "EventOrderSanitizer",
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleSource",
    "ProjectRule",
    "Rule",
    "fingerprint",
    "load_baseline",
    "prune_baseline",
    "register",
    "registered_rules",
    "rules_for",
    "write_baseline",
]
