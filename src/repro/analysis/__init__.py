"""Correctness tooling: static analysis and runtime sanitizing.

Three pass families guard the properties the whole analysis chain
depends on:

* **Determinism lint** (:mod:`repro.analysis.determinism`) — AST rules
  flagging nondeterminism hazards (wall clocks, unseeded RNGs,
  unordered iteration, ``id()`` keys, float accumulation) in simulated
  code paths.
* **Provenance-schema lint** (:mod:`repro.analysis.schema`) — verifies
  every Mofka emission site supplies the shared identifiers declared
  in :mod:`repro.core.fair`, so records stay joinable.
* **Event-ordering sanitizer** (:mod:`repro.analysis.sanitizer`) — a
  runtime race detector for the discrete-event kernel.

CLI front ends: ``perfrecup lint`` and ``perfrecup sanitize``; see
``docs/static_analysis.md``.
"""

from .engine import (
    LintEngine,
    ModuleSource,
    Rule,
    fingerprint,
    load_baseline,
    register,
    registered_rules,
    rules_for,
    write_baseline,
)
from .findings import (
    EXIT_CLEAN,
    EXIT_ERROR,
    EXIT_FINDINGS,
    Finding,
    LintReport,
)
from .sanitizer import EventOrderSanitizer
from .schema import EVENT_REQUIREMENTS

__all__ = [
    "EXIT_CLEAN",
    "EXIT_ERROR",
    "EXIT_FINDINGS",
    "EVENT_REQUIREMENTS",
    "EventOrderSanitizer",
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleSource",
    "Rule",
    "fingerprint",
    "load_baseline",
    "register",
    "registered_rules",
    "rules_for",
    "write_baseline",
]
