"""Concurrency lint: cross-context races inside the cooperative kernel.

The discrete-event kernel is single-threaded, but *logical* races are
real: a generator parks at a ``yield`` and arbitrary other callbacks
run before it resumes, so every invariant it checked before the yield
may be gone after it.  Every one of PR 5's failure-window bugs — and
PR 3's cascading-failure convergence bug — was this pattern in
``dasklike/``: an interval loop (stealing, liveness, heartbeat) acting
on component state that event handlers mutated mid-yield.  These rules
catch the pattern statically:

``conc-stale-loop-guard``
    A guarded interval loop (``while self._running: yield ...``) whose
    body keeps working after the yield without re-reading any guard
    attribute.  ``stop()`` flips the guard mid-yield and the body still
    runs one full round against a component that asked it to stop.
``conc-cross-context-mutation``
    Component state mutated both from an interval-loop context and
    from an event-handler context, where the loop-side mutation is not
    preceded by an early-exit revalidation guard.  This is the PR 5
    bug class: the stealing loop and the completion path both touch
    ``occupancy``/task state, and only a guard (or routing through the
    event queue) makes the pair safe.
``conc-monitor-mutation``
    A monitor hook (``on_schedule``/``on_step``/``before_callback``)
    that creates engine events or writes to the observed event: PR 3's
    zero-perturbation contract says monitors observe, never perturb —
    an instrumented run must pop the identical event sequence.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from . import dataflow
from .engine import ModuleSource, ProjectRule, Rule, register
from .findings import Finding

__all__ = ["EVENT_CREATING_CALLS", "MONITOR_HOOKS", "loop_guard_attrs"]

#: Methods that schedule or resolve engine events.  A monitor hook
#: calling any of these perturbs the event stream it is observing.
EVENT_CREATING_CALLS = frozenset({
    "process", "timeout", "event", "schedule", "_schedule",
    "succeed", "fail", "interrupt",
})

MONITOR_HOOKS = frozenset({"on_schedule", "on_step", "before_callback"})

#: Call-graph depth from a loop driver that still counts as "the loop
#: acting": the driver body, its direct helpers, and their helpers
#: (``_loop -> balance -> _steal``).  Beyond that the shared machinery
#: (transitions, logging) is the same code event handlers run, and
#: classifying it as loop-side would drown the signal.
LOOP_CONTEXT_DEPTH = 2


def loop_guard_attrs(loop: ast.While) -> set[str]:
    """``self.<attr>`` names the loop condition reads."""
    return dataflow.self_attrs_in(loop.test)


def _top_level_yields(loop: ast.While) -> list[tuple[int, ast.stmt]]:
    """(index, stmt) for loop-body statements that are bare yields."""
    out = []
    for index, stmt in enumerate(loop.body):
        value = None
        if isinstance(stmt, ast.Expr):
            value = stmt.value
        elif isinstance(stmt, ast.Assign):
            value = stmt.value
        if isinstance(value, (ast.Yield, ast.YieldFrom)):
            out.append((index, stmt))
    return out


@register
class StaleLoopGuardRule(Rule):
    name = "conc-stale-loop-guard"
    family = "concurrency"
    description = ("interval loop keeps working after a yield without "
                   "re-reading its guard attribute")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        dataflow.attach_parents(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not dataflow.is_generator(node):
                continue
            for loop in dataflow.while_loops_of(node):
                yield from self._check_loop(module, loop)

    def _check_loop(self, module: ModuleSource,
                    loop: ast.While) -> Iterable[Finding]:
        guards = loop_guard_attrs(loop)
        if not guards:
            return  # `while True` walkers and local-variable loops
        yields = _top_level_yields(loop)
        if not yields:
            return  # yields only on conditional paths: not the pattern
        index, stmt = yields[0]
        trailing = loop.body[index + 1:]
        if not trailing:
            return  # the yield is the whole body; the test re-runs next
        read_after = set()
        for later in trailing:
            read_after |= dataflow.self_attrs_in(later)
        if guards & read_after:
            return
        guard_list = ", ".join(f"self.{g}" for g in sorted(guards))
        yield self.finding(
            module, stmt,
            f"loop guarded by {guard_list} does work after this yield "
            f"without re-reading the guard; a stop() during the yield "
            f"still runs one full round — re-check the guard (or return) "
            f"right after resuming")


@register
class MonitorMutationRule(Rule):
    name = "conc-monitor-mutation"
    family = "concurrency"
    description = ("monitor hook creates events or mutates the observed "
                   "event (must be observe-only)")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        dataflow.attach_parents(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            hooks = [stmt for stmt in node.body
                     if isinstance(stmt, (ast.FunctionDef,
                                          ast.AsyncFunctionDef))
                     and stmt.name in MONITOR_HOOKS]
            if len(hooks) < 2:
                continue  # not a monitor implementation
            for hook in hooks:
                yield from self._check_hook(module, hook)

    def _check_hook(self, module: ModuleSource,
                    hook: ast.AST) -> Iterable[Finding]:
        params = {arg.arg for arg in hook.args.args if arg.arg != "self"}
        for node in dataflow.own_nodes(hook):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Attribute) and \
                    node.func.attr in EVENT_CREATING_CALLS and \
                    node.func.attr not in MONITOR_HOOKS:
                yield self.finding(
                    module, node,
                    f"monitor hook {hook.name}() calls "
                    f".{node.func.attr}(): creating or resolving engine "
                    f"events from a monitor perturbs the event stream "
                    f"(zero-perturbation contract)")
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) \
                    else [node.target]
                for target in targets:
                    base = target
                    if isinstance(base, ast.Subscript):
                        base = base.value
                    if isinstance(base, ast.Attribute) and \
                            isinstance(base.value, ast.Name) and \
                            base.value.id in params:
                        yield self.finding(
                            module, node,
                            f"monitor hook {hook.name}() writes to "
                            f"observed argument "
                            f"{base.value.id}.{base.attr}; hooks must "
                            f"not mutate simulation state")


# ---------------------------------------------------------------------------
# cross-context mutation (whole-program)
# ---------------------------------------------------------------------------

def _early_exit_guards(func: ast.AST) -> list[int]:
    """Line numbers of early-exit ``if`` statements in ``func``.

    An early-exit guard is an ``if`` whose body bails out (return /
    continue / break / raise) — the PR 5 fix shape: re-validate the
    world, leave if it moved on, only then mutate.
    """
    linenos = []
    for node in dataflow.own_nodes(func):
        if isinstance(node, ast.If) and any(
                isinstance(stmt, (ast.Return, ast.Continue, ast.Break,
                                  ast.Raise))
                for stmt in node.body):
            linenos.append(node.lineno)
    return linenos


@register
class CrossContextMutationRule(ProjectRule):
    name = "conc-cross-context-mutation"
    family = "concurrency"
    description = ("state mutated from both an interval-loop context and "
                   "an event-handler context without a revalidation guard")

    def check_project(self, project) -> Iterable[Finding]:
        drivers = {info.qualname for info in project.loop_drivers()}
        loop_ctx = self._bounded_closure(project, drivers,
                                         LOOP_CONTEXT_DEPTH)
        # Only classes that actually hand generators to the engine are
        # "components" whose state lives across callbacks; a Gauge or a
        # Resource mutated from many places is ordinary call-stack
        # serialization, not a cross-context race.
        component_classes = {info.class_name
                             for info in project.spawned_generators()
                             if info.class_name is not None}

        # attr -> [(FunctionInfo, Mutation), ...]
        sites: dict[str, list] = {}
        for qual in sorted(project.functions):
            info = project.functions[qual]
            if info.name in ("__init__", "__post_init__", "__new__"):
                continue
            for mutation in dataflow.attribute_mutations(info.node):
                sites.setdefault(mutation.attr, []).append((info, mutation))

        for attr in sorted(sites):
            entries = sites[attr]
            loop_entries = [(i, m) for i, m in entries
                            if i.qualname in loop_ctx]
            event_entries = [(i, m) for i, m in entries
                             if i.qualname not in loop_ctx]
            if not loop_entries or not event_entries:
                continue
            for info, mutation in loop_entries:
                owner = info.class_name if mutation.self_owned else None
                if owner is not None and owner not in component_classes:
                    continue
                # The race needs *different* code mutating the *same*
                # object's state on the two sides: a shared funnel is
                # serialization, and `Client.logs` vs `Scheduler.logs`
                # are different state that merely share an attr name.
                rivals = sorted({
                    i.qualname for i, m in event_entries
                    if i.qualname != info.qualname
                    and (owner is None
                         or not m.self_owned
                         or i.class_name == owner)})
                if not rivals:
                    continue
                if self._guard_exempt(project, info, mutation, loop_ctx):
                    continue
                yield self.finding(
                    info.module, mutation.node,
                    f"'{attr}' is mutated here on the interval-loop path "
                    f"({info.qualname}) and independently by event-side "
                    f"code ({', '.join(rivals[:3])}); the loop resumed "
                    f"from a yield may act on state that moved on — add "
                    f"an early-exit revalidation guard before mutating, "
                    f"or route the mutation through the event queue")

    # ------------------------------------------------------------------
    @staticmethod
    def _bounded_closure(project, roots: set[str], depth: int) -> set[str]:
        frontier = set(roots)
        seen = set(roots)
        for _ in range(depth):
            nxt = set()
            for qual in sorted(frontier):
                nxt.update(project.calls.get(qual, ()))
            frontier = nxt - seen
            seen |= frontier
        return seen

    def _guard_exempt(self, project, info, mutation,
                      loop_ctx: set[str]) -> bool:
        """A mutation is safe when revalidation precedes it.

        Either the mutating function itself early-exits before the
        mutation, or (for helpers the loop calls) every loop-side
        caller revalidates before the call — the shape PR 5 left
        ``handle_worker_failure`` → ``remove_worker`` in.
        """
        mut_line = getattr(mutation.node, "lineno", 0)
        if any(g < mut_line for g in _early_exit_guards(info.node)):
            return True
        callers = self._loop_side_callers(project, info, loop_ctx)
        if not callers:
            return False
        for caller in callers:
            if not self._calls_after_guard(caller, info.name):
                return False
        return True

    @staticmethod
    def _loop_side_callers(project, info, loop_ctx: set[str]) -> list:
        out = []
        for qual in sorted(loop_ctx):
            caller = project.functions.get(qual)
            if caller is None or caller.qualname == info.qualname:
                continue
            if info.qualname in project.calls.get(qual, ()):
                out.append(caller)
        return out

    @staticmethod
    def _calls_after_guard(caller, callee_name: str) -> bool:
        guards = _early_exit_guards(caller.node)
        if not guards:
            return False
        first_guard = min(guards)
        for node in dataflow.own_nodes(caller.node):
            if isinstance(node, ast.Call):
                func = node.func
                name = func.attr if isinstance(func, ast.Attribute) \
                    else getattr(func, "id", "")
                if name == callee_name and node.lineno < first_guard:
                    return False
        return True
