"""Determinism lint: nondeterminism hazards in simulated code paths.

The whole reproduction hinges on bit-reproducible simulation: the
variability figures compare *runs*, so any noise source that is not a
seeded :class:`~repro.sim.random.RandomStreams` stream corrupts the
measurement.  These rules statically flag the classic offenders:

``det-wallclock``
    Real clocks (``time.time``, ``datetime.now``, ...) leaking into
    simulated code; engine timestamps (``env.now``) are the only valid
    notion of time.
``det-unseeded-random``
    The process-global ``random`` / ``numpy.random`` generators, or
    ``default_rng()`` / ``Random()`` constructed without a seed.
``det-set-iteration``
    Iterating a ``set``/``frozenset`` in an order-sensitive context.
    With ``PYTHONHASHSEED`` randomisation, string-set iteration order
    differs *between* processes, so anything ordering-sensitive fed
    from a set breaks cross-run comparison.  Order-insensitive
    consumers (``sorted``, ``len``, ``min``, ``max``, ``any``, ``all``,
    set-to-set operations) are exempt.
``det-id-key``
    ``id()`` used outside ``__repr__``-style debug helpers: CPython
    object addresses differ between runs, so ``id()``-keyed maps and
    sets order (and hash-place) differently per process.
``det-float-accumulation``
    ``sum()`` over an unordered collection: float addition is not
    associative, so the total depends on iteration order.

All rules honour ``# repro: allow[rule]`` suppressions (see
:mod:`repro.analysis.engine`).
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from .engine import ModuleSource, Rule, register
from .findings import Finding

__all__ = ["module_aliases"]

WALLCLOCK_TIME_FNS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns", "process_time", "process_time_ns", "clock",
})
WALLCLOCK_DATETIME_FNS = frozenset({"now", "utcnow", "today"})

GLOBAL_RANDOM_FNS = frozenset({
    "random", "randrange", "randint", "choice", "choices", "shuffle",
    "sample", "uniform", "triangular", "normalvariate", "gauss",
    "lognormvariate", "expovariate", "vonmisesvariate", "gammavariate",
    "betavariate", "paretovariate", "weibullvariate", "getrandbits",
    "randbytes", "seed",
})
NUMPY_GLOBAL_RANDOM_FNS = frozenset({
    "rand", "randn", "random", "random_sample", "ranf", "sample",
    "choice", "shuffle", "permutation", "randint", "random_integers",
    "seed", "uniform", "normal", "standard_normal", "exponential",
    "poisson", "beta", "gamma", "binomial", "bytes", "lognormal",
})

#: Builtin consumers whose result does not depend on iteration order.
ORDER_INSENSITIVE_CONSUMERS = frozenset({
    "sorted", "len", "min", "max", "any", "all", "set", "frozenset",
    "sum",  # handled (for floats) by det-float-accumulation instead
})

#: Debug-only dunder methods where ``id()`` is conventional and harmless.
ID_EXEMPT_METHODS = frozenset({"__repr__", "__str__", "__hash__", "__del__"})


# ---------------------------------------------------------------------------
# shared module model
# ---------------------------------------------------------------------------

def module_aliases(tree: ast.Module) -> dict[str, dict[str, str]]:
    """Map local names to the well-known modules/objects they alias.

    Returns ``{"modules": {local: canonical}, "names": {local:
    "module.attr"}}`` covering ``time``, ``datetime``, ``random`` and
    ``numpy`` in their common import spellings.
    """
    modules: dict[str, str] = {}
    names: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name in ("time", "datetime", "random", "numpy",
                                  "numpy.random"):
                    modules[alias.asname or alias.name.split(".")[0]] = \
                        alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                names[alias.asname or alias.name] = \
                    f"{node.module}.{alias.name}"
    return {"modules": modules, "names": names}


def _attach_parents(tree: ast.Module) -> None:
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]


def _parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, "_repro_parent", None)


def _enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    cursor = _parent(node)
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cursor
        cursor = _parent(cursor)
    return None


def _dotted(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute chains; '' for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


# ---------------------------------------------------------------------------
# set-typed expression tracking
# ---------------------------------------------------------------------------

_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet",
                              "AbstractSet", "MutableSet"})


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Subscript):
        annotation = annotation.value
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in _SET_ANNOTATIONS
    return isinstance(annotation, ast.Name) and \
        annotation.id in _SET_ANNOTATIONS


class _SetBindings:
    """Names (and ``self.<attr>``s) statically known to hold sets."""

    def __init__(self, tree: ast.Module):
        #: id(scope node) -> set of plain names bound to sets there.
        self.by_scope: dict[int, set[str]] = {}
        #: attribute names annotated as sets anywhere in the module.
        self.self_attrs: set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and self._is_set_literalish(
                    node.value):
                for target in node.targets:
                    self._bind(target, node)
            elif isinstance(node, ast.AnnAssign):
                if _annotation_is_set(node.annotation) or (
                        node.value is not None
                        and self._is_set_literalish(node.value)):
                    self._bind(node.target, node)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = list(node.args.args) + list(node.args.kwonlyargs) \
                    + list(node.args.posonlyargs)
                for arg in args:
                    if _annotation_is_set(arg.annotation):
                        # AST-node identity keys never leave this
                        # single-process lint pass.
                        # repro: allow[det-id-key]
                        self.by_scope.setdefault(id(node), set()).add(arg.arg)

    @staticmethod
    def _is_set_literalish(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("set", "frozenset"))

    def _bind(self, target: ast.AST, node: ast.AST) -> None:
        if isinstance(target, ast.Name):
            scope = _enclosing_function(node)
            # repro: allow[det-id-key]
            self.by_scope.setdefault(id(scope), set()).add(target.id)
        elif isinstance(target, ast.Attribute) and \
                isinstance(target.value, ast.Name) and \
                target.value.id == "self":
            self.self_attrs.add(target.attr)

    # ------------------------------------------------------------------
    def is_set_expr(self, node: ast.AST) -> bool:
        if self._is_set_literalish(node):
            return True
        if isinstance(node, ast.Name):
            scope = _enclosing_function(node)
            while True:
                # repro: allow[det-id-key]
                if node.id in self.by_scope.get(id(scope), ()):
                    return True
                if scope is None:
                    return False
                scope = _enclosing_function(scope)
        if isinstance(node, ast.Attribute) and \
                isinstance(node.value, ast.Name) and \
                node.value.id == "self":
            return node.attr in self.self_attrs
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.Sub, ast.BitXor)):
            return self.is_set_expr(node.left) and \
                self.is_set_expr(node.right)
        return False


def _prepare(module: ModuleSource) -> _SetBindings:
    """Parent links + set bindings, computed once per module."""
    cached = getattr(module, "_repro_det_cache", None)
    if cached is None:
        _attach_parents(module.tree)
        cached = _SetBindings(module.tree)
        module._repro_det_cache = cached  # type: ignore[attr-defined]
    return cached


# ---------------------------------------------------------------------------
# rules
# ---------------------------------------------------------------------------

@register
class WallClockRule(Rule):
    name = "det-wallclock"
    family = "determinism"
    description = ("real clocks (time.time, datetime.now, ...) in "
                   "simulated code; use env.now")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        aliases = module_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                base = _dotted(func.value)
                canonical = aliases["modules"].get(base, base)
                imported = aliases["names"].get(base, "")
                if canonical == "time" and func.attr in WALLCLOCK_TIME_FNS:
                    yield self.finding(
                        module, node,
                        f"wall-clock call time.{func.attr}(); simulated "
                        f"code must derive time from env.now")
                elif func.attr in WALLCLOCK_DATETIME_FNS and (
                        imported in ("datetime.datetime", "datetime.date")
                        or base in ("datetime.datetime", "datetime.date")):
                    yield self.finding(
                        module, node,
                        f"wall-clock call {base}.{func.attr}(); simulated "
                        f"code must derive time from env.now")
            elif isinstance(func, ast.Name):
                if aliases["names"].get(func.id) == "time.time":
                    yield self.finding(
                        module, node,
                        "wall-clock call time(); simulated code must "
                        "derive time from env.now")


@register
class UnseededRandomRule(Rule):
    name = "det-unseeded-random"
    family = "determinism"
    description = ("process-global or unseeded RNGs; use "
                   "RandomStreams / a seeded default_rng")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        aliases = module_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute):
                base = _dotted(func.value)
                canonical = aliases["modules"].get(base, base)
                if canonical == "random" and func.attr in GLOBAL_RANDOM_FNS:
                    yield self.finding(
                        module, node,
                        f"module-level random.{func.attr}() uses the "
                        f"process-global RNG; draw from RandomStreams")
                elif canonical == "random" and func.attr == "Random" \
                        and not node.args:
                    yield self.finding(
                        module, node,
                        "random.Random() without a seed")
                elif self._is_numpy_random(base, canonical, aliases):
                    if func.attr in NUMPY_GLOBAL_RANDOM_FNS:
                        yield self.finding(
                            module, node,
                            f"legacy global numpy.random.{func.attr}(); "
                            f"draw from RandomStreams")
                    elif func.attr in ("default_rng", "RandomState") \
                            and not node.args:
                        yield self.finding(
                            module, node,
                            f"numpy.random.{func.attr}() without a seed")
            elif isinstance(func, ast.Name):
                origin = aliases["names"].get(func.id, "")
                if origin.startswith("random.") and \
                        origin.split(".", 1)[1] in GLOBAL_RANDOM_FNS:
                    yield self.finding(
                        module, node,
                        f"module-level {origin}() uses the process-global "
                        f"RNG; draw from RandomStreams")
                elif origin == "numpy.random.default_rng" and not node.args:
                    yield self.finding(
                        module, node, "default_rng() without a seed")

    @staticmethod
    def _is_numpy_random(base: str, canonical: str, aliases: dict) -> bool:
        if canonical == "numpy.random":
            return True
        if "." in base:
            head, tail = base.split(".", 1)
            head = aliases["modules"].get(head, head)
            return head == "numpy" and tail == "random"
        return False


@register
class SetIterationRule(Rule):
    name = "det-set-iteration"
    family = "determinism"
    description = ("iterating a set in an order-sensitive context; "
                   "sorted() it or use an ordered container")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        bindings = _prepare(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.For) and \
                    bindings.is_set_expr(node.iter):
                yield self.finding(
                    module, node,
                    "for-loop over a set: iteration order is hash-"
                    "dependent; use sorted(...) if order can matter")
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp)):
                if any(bindings.is_set_expr(gen.iter)
                       for gen in node.generators) and \
                        not self._order_insensitive_context(node):
                    yield self.finding(
                        module, node,
                        "comprehension over a set builds an ordered "
                        "sequence from unordered input; sort first")
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ("list", "tuple", "enumerate", "iter") \
                    and node.args and bindings.is_set_expr(node.args[0]):
                yield self.finding(
                    module, node,
                    f"{node.func.id}() over a set freezes a hash-"
                    f"dependent order; use sorted(...)")

    @staticmethod
    def _order_insensitive_context(node: ast.AST) -> bool:
        parent = _parent(node)
        return (isinstance(parent, ast.Call)
                and isinstance(parent.func, ast.Name)
                and parent.func.id in ORDER_INSENSITIVE_CONSUMERS)


@register
class IdKeyRule(Rule):
    name = "det-id-key"
    family = "determinism"
    description = ("id() outside __repr__-style helpers: object "
                   "addresses vary per process")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        _prepare(module)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id == "id" and len(node.args) == 1:
                enclosing = _enclosing_function(node)
                if enclosing is not None and \
                        enclosing.name in ID_EXEMPT_METHODS:
                    continue
                yield self.finding(
                    module, node,
                    "id()-derived value: CPython addresses differ "
                    "between runs; key on a stable identifier instead")


@register
class FloatAccumulationRule(Rule):
    name = "det-float-accumulation"
    family = "determinism"
    description = ("sum() over an unordered collection: float addition "
                   "is order-dependent")

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        bindings = _prepare(module)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id == "sum" and node.args):
                continue
            arg = node.args[0]
            hazardous = bindings.is_set_expr(arg)
            if isinstance(arg, (ast.GeneratorExp, ast.ListComp)):
                hazardous = any(bindings.is_set_expr(gen.iter)
                                for gen in arg.generators)
            if hazardous:
                yield self.finding(
                    module, node,
                    "sum() over a set: float accumulation order is "
                    "hash-dependent; sum over sorted(...) instead")
