"""Hot-path lint: O(n)-per-event scans on the per-transition path.

The ROADMAP's scale-out item (10k workers / 1M tasks, after Böhm &
Beránek's *Runtime vs Scheduler* analysis) dies on anything linear in
cluster size that runs once per task transition: at 1M transitions an
O(workers) scan inside ``decide_worker`` is 10^10 steps of pure
scheduler overhead.  These rules use the project call graph to find
the per-event code — everything reachable from the generator
processes the engine spawns per event (``_dispatch``,
``compute_task``, ...), *excluding* interval loop drivers — and flag
linear work over unbounded collections inside it:

``hot-linear-scan``
    A loop, comprehension, or aggregating builtin (``sum``/``min``/
    ``max``/``any``/``all``) traversing an unbounded component
    collection (``self.workers``, ``self.tasks``, ``self.occupancy``,
    heartbeat maps, worker data stores) inside a per-event function.
``hot-collection-copy``
    Materializing a copy (``list``/``dict``/``set``/``tuple``/
    ``sorted``) of such a collection inside a per-event function —
    O(n) time *and* allocation per event.

Functions in :data:`AMORTIZED_FUNCTIONS` are exempt: they run once
per rare event (worker failure, graph submission), so their scans
amortize to O(1) per task.  The JSON report of this family
(``perfrecup lint --rules hotpath --format json``) is the work-list
for the scale-out PR.
"""

from __future__ import annotations

import ast
from typing import Iterable, Optional

from . import dataflow
from .engine import ProjectRule, register
from .findings import Finding

__all__ = ["UNBOUNDED_COLLECTIONS", "AMORTIZED_FUNCTIONS"]

#: Component attributes that grow with cluster or workload size.
UNBOUNDED_COLLECTIONS = frozenset({
    "workers",          # scheduler: one entry per worker
    "tasks",            # scheduler: one entry per task ever submitted
    "occupancy",        # scheduler: one float per worker
    "_last_heartbeat",  # scheduler: one timestamp per worker
    "_wanted_events",   # scheduler: one event per wanted key
    "data",             # worker: one entry per resident result
    "spilled",          # worker: one entry per evicted result
    "members",          # ssg: one entry per group member
    "_unfinished",      # scheduler: one entry per unsettled task
    "_buckets",         # engine wheel: one bucket per pending quantum
    "_ready",           # engine wheel: the active bucket's entries
    "_overflow",        # engine: sparse far-future / exotic-priority tail
})

#: Per-event-reachable functions whose scans amortize: they run once
#: per *rare* stimulus (failure recovery, graph submission, shutdown),
#: not once per transition, so O(n) inside them is O(1) per task.
AMORTIZED_FUNCTIONS = frozenset({
    "handle_worker_failure",   # once per worker death
    "_degrade_no_workers",     # once, when the last worker dies
    "_resubmit",               # once per lost key per recovery pass
    "update_graph",            # once per graph submission
    "fuse_linear_chains",      # once per graph submission (optimizer)
    "_liveness_loop",          # interval-paced (also a loop driver)
    "add_worker",              # once per registration; exact occupancy
    "remove_worker",           # resync point for the incremental total
    # Timer-wheel bucket maintenance: activation sorts and drains one
    # bucket exactly once, and reconciliation re-parks the cursor only
    # on the rare earlier-quantum insert — both O(bucket) costs paid
    # once per *bucket*, so O(1) amortized per event, not per-event
    # linear work.
    "_activate_bucket",        # once per bucket lifetime
    "_reconcile_wheel",        # rare cursor re-park (earlier insert)
})

_AGGREGATORS = frozenset({"sum", "min", "max", "any", "all"})
_COPIERS = frozenset({"list", "dict", "set", "tuple", "sorted", "frozenset"})


def _unbounded_attr(expr: ast.AST) -> Optional[str]:
    """The unbounded collection an iterable expression traverses.

    Matches ``<recv>.attr``, ``<recv>.attr.items()/.values()/.keys()``
    for attr in :data:`UNBOUNDED_COLLECTIONS`; None otherwise.
    """
    if isinstance(expr, ast.Call) and not expr.args and \
            isinstance(expr.func, ast.Attribute) and \
            expr.func.attr in ("items", "values", "keys"):
        expr = expr.func.value
    if isinstance(expr, ast.Attribute) and \
            expr.attr in UNBOUNDED_COLLECTIONS:
        return expr.attr
    return None


class _HotPathRule(ProjectRule):
    """Shared driver: walk per-event functions, yield per-site findings."""

    family = "hotpath"

    def check_project(self, project) -> Iterable[Finding]:
        drivers = {info.qualname for info in project.loop_drivers()}
        hot = project.hot_functions() - drivers
        for qual in sorted(hot):
            info = project.functions[qual]
            if info.name in AMORTIZED_FUNCTIONS or \
                    info.qualname in AMORTIZED_FUNCTIONS:
                continue
            yield from self.check_function(info)

    def check_function(self, info) -> Iterable[Finding]:
        raise NotImplementedError


@register
class LinearScanRule(_HotPathRule):
    name = "hot-linear-scan"
    description = ("loop or aggregate over an unbounded collection in a "
                   "per-event function")

    def check_function(self, info) -> Iterable[Finding]:
        for node in dataflow.own_nodes(info.node):
            attr = None
            if isinstance(node, ast.For):
                attr = _unbounded_attr(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    attr = attr or _unbounded_attr(gen.iter)
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in _AGGREGATORS and node.args:
                attr = _unbounded_attr(node.args[0])
            if attr is None:
                continue
            yield self.finding(
                info.module, node,
                f"linear scan over unbounded '{attr}' inside per-event "
                f"function {info.qualname} (reachable from engine "
                f"dispatch): O(n) work on every transition — maintain an "
                f"incremental aggregate or index, or add the function to "
                f"the amortized allowlist with a rationale")


@register
class CollectionCopyRule(_HotPathRule):
    name = "hot-collection-copy"
    description = ("copy of an unbounded collection materialized in a "
                   "per-event function")

    def check_function(self, info) -> Iterable[Finding]:
        for node in dataflow.own_nodes(info.node):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _COPIERS and node.args):
                continue
            attr = _unbounded_attr(node.args[0])
            if attr is None:
                continue
            yield self.finding(
                info.module, node,
                f"{node.func.id}() copy of unbounded '{attr}' inside "
                f"per-event function {info.qualname}: O(n) time and "
                f"allocation on every transition — iterate lazily or "
                f"restructure so the copy happens per rare event")
