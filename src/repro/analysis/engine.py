"""AST lint engine: rule registry, suppressions, baseline, file walking.

The engine is deliberately tool-shaped rather than workflow-shaped: a
:class:`Rule` inspects one parsed module and yields
:class:`~repro.analysis.findings.Finding`s; the registry groups rules
into *families* (``determinism``, ``provenance``) that the CLI selects;
the engine handles everything generic — discovering files, parsing each
one exactly once, honoring per-line suppression comments, and matching
grandfathered findings against a baseline file.

Suppression syntax
------------------
A finding is suppressed by a comment on the flagged line or on the line
directly above it::

    t = time.time()          # repro: allow[det-wallclock]
    # repro: allow[det-set-iteration, det-id-key]
    for ts in pending_set: ...
    # repro: allow[*]        (suppress every rule on the next line)

Baseline files
--------------
A baseline is a JSON document listing fingerprints of known findings
(``relpath::rule::blake2(line text)``).  Fingerprints use the stripped
source text rather than the line number, so unrelated edits that shift
lines do not resurrect grandfathered findings.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
import threading
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .findings import (
    STATUS_ACTIVE,
    STATUS_BASELINED,
    STATUS_SUPPRESSED,
    Finding,
    LintReport,
)

__all__ = [
    "ModuleSource",
    "Rule",
    "ProjectRule",
    "register",
    "registered_rules",
    "rules_for",
    "LintEngine",
    "load_baseline",
    "write_baseline",
    "prune_baseline",
    "fingerprint",
]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")

# CPython 3.11's C-AST-to-Python conversion keeps its recursion-depth
# bookkeeping in interpreter-wide module state, so concurrent
# ``ast.parse`` calls race and raise ``SystemError: AST constructor
# recursion depth mismatch``.  ``--jobs`` therefore only overlaps file
# I/O; the parse itself is serialized through this lock.
_AST_PARSE_LOCK = threading.Lock()


@dataclass
class ModuleSource:
    """One parsed source file, shared by every rule."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: Optional[str] = None) -> "ModuleSource":
        if source is None:
            with tokenize.open(path) as fh:
                source = fh.read()
        with _AST_PARSE_LOCK:
            tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree,
                   lines=source.splitlines())

    def line(self, lineno: int) -> str:
        """1-based source line (empty string out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def allowed_rules(self, lineno: int, end_lineno: int = 0) -> set[str]:
        """Rule names suppressed at ``lineno`` (``*`` = everything).

        The scan covers the full flagged span (``lineno`` through
        ``end_lineno``, so a comment inside a parenthesized multi-line
        expression counts), plus the line above the span — skipping
        upward past decorator lines so a suppression above a decorated
        function still reaches the ``def`` the finding anchors to.
        """
        allowed: set[str] = set()
        for ln in range(lineno, max(lineno, end_lineno) + 1):
            self._collect_allow(self.line(ln), allowed)
        above = lineno - 1
        while above >= 1 and self.line(above).lstrip().startswith("@"):
            self._collect_allow(self.line(above), allowed)
            above -= 1
        self._collect_allow(self.line(above), allowed)
        return allowed

    @staticmethod
    def _collect_allow(candidate: str, allowed: set[str]) -> None:
        match = _ALLOW_RE.search(candidate)
        if match:
            allowed.update(
                token.strip() for token in match.group(1).split(",")
                if token.strip())


class Rule:
    """Base class: one named check over one module."""

    name: str = ""
    family: str = ""
    description: str = ""

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST,
                message: str) -> Finding:
        """Construct a finding anchored at an AST node."""
        lineno = getattr(node, "lineno", 0)
        return Finding(
            rule=self.name, message=message, path=module.path,
            line=lineno, col=getattr(node, "col_offset", 0),
            end_line=getattr(node, "end_lineno", None) or lineno,
            snippet=module.line(lineno),
        )


class ProjectRule(Rule):
    """A rule that needs the whole parsed project, not one module.

    Subclasses implement :meth:`check_project`; the engine builds one
    :class:`~repro.analysis.callgraph.Project` per run and hands it to
    every registered project rule after the per-module rules finish.
    Findings still anchor to a concrete module/line, so suppressions
    and baselines work unchanged.
    """

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        return ()

    def check_project(self, project) -> Iterable[Finding]:
        raise NotImplementedError


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding one rule instance to the global registry."""
    rule = rule_cls()
    if not rule.name or not rule.family:
        raise ValueError(f"rule {rule_cls.__name__} needs name and family")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def registered_rules() -> dict[str, Rule]:
    # Importing the rule modules populates the registry on first use.
    from . import (  # noqa: F401
        concurrency,
        determinism,
        hotpath,
        provflow,
        schema,
    )
    return dict(_REGISTRY)


def rules_for(selectors: Optional[Iterable[str]] = None) -> list[Rule]:
    """Resolve family names and/or rule names to rule instances."""
    rules = registered_rules()
    if not selectors:
        return sorted(rules.values(), key=lambda r: r.name)
    chosen: dict[str, Rule] = {}
    for selector in selectors:
        matched = {
            name: rule for name, rule in rules.items()
            if name == selector or rule.family == selector
        }
        if not matched:
            known = sorted({r.family for r in rules.values()} | set(rules))
            raise KeyError(
                f"unknown rule or family {selector!r}; choose from {known}")
        chosen.update(matched)
    return sorted(chosen.values(), key=lambda r: r.name)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def fingerprint(finding: Finding, root: str) -> str:
    """Stable identity of a finding: path, rule, and line *text*."""
    rel = os.path.relpath(finding.path, root) \
        if os.path.isabs(finding.path) else finding.path
    digest = hashlib.blake2b(
        finding.snippet.strip().encode("utf-8"), digest_size=8).hexdigest()
    return f"{rel.replace(os.sep, '/')}::{finding.rule}::{digest}"


def load_baseline(path: str) -> set[str]:
    with open(path) as fh:
        document = json.load(fh)
    if document.get("version") != 1:
        raise ValueError(f"unsupported baseline version in {path}")
    return set(document.get("entries", []))


def write_baseline(report: LintReport, path: str, root: str) -> int:
    """Persist every *active* finding as grandfathered; returns count."""
    entries = sorted({fingerprint(f, root) for f in report.active})
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        json.dump({"version": 1, "entries": entries}, fh, indent=2)
        fh.write("\n")
    return len(entries)


def prune_baseline(report: LintReport, path: str,
                   root: str) -> tuple[int, int]:
    """Drop baseline entries no current finding matches.

    Returns ``(kept, dropped)``.  A finding of any status counts as a
    match: an entry only goes stale when the flagged code is gone (or
    now rewritten), not when an inline suppression also covers it —
    pruning twice is therefore idempotent.
    """
    baseline = load_baseline(path)
    current = {fingerprint(f, root) for f in report.findings}
    kept = sorted(baseline & current)
    with open(path, "w") as fh:
        json.dump({"version": 1, "entries": kept}, fh, indent=2)
        fh.write("\n")
    return len(kept), len(baseline) - len(kept)


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------

class LintEngine:
    """Run a rule set over a file tree and classify the findings."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None,
                 baseline: Optional[set[str]] = None,
                 root: Optional[str] = None):
        self.rules = list(rules) if rules is not None else rules_for(None)
        self.baseline = baseline or set()
        #: Directory baseline fingerprints are relative to.
        self.root = root or os.getcwd()

    # ------------------------------------------------------------------
    @staticmethod
    def discover(paths: Iterable[str]) -> list[str]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        out: set[str] = set()
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames[:] = sorted(
                        d for d in dirnames
                        if d not in ("__pycache__", ".git"))
                    for name in filenames:
                        if name.endswith(".py"):
                            out.add(os.path.join(dirpath, name))
            elif os.path.isfile(path):
                out.add(path)
            else:
                raise FileNotFoundError(f"no such file or directory: {path}")
        return sorted(out)

    # ------------------------------------------------------------------
    def check_module(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for rule in self.rules:
            for finding in rule.check(module):
                self._classify(module, finding)
                findings.append(finding)
        return findings

    def _classify(self, module: ModuleSource, finding: Finding) -> None:
        allowed = module.allowed_rules(finding.line, finding.end_line)
        if finding.rule in allowed or "*" in allowed:
            finding.status = STATUS_SUPPRESSED
        elif fingerprint(finding, self.root) in self.baseline:
            finding.status = STATUS_BASELINED
        else:
            finding.status = STATUS_ACTIVE

    # ------------------------------------------------------------------
    def parse_all(self, paths: Iterable[str],
                  jobs: int = 1) -> list[ModuleSource]:
        """Parse every discovered file, optionally on a thread pool.

        ``jobs > 1`` overlaps the file reads (the ``ast.parse`` call
        itself is serialized behind ``_AST_PARSE_LOCK`` — see its
        comment) while ``pool.map`` preserves the sorted input order,
        so the finding order (and therefore the report) stays
        deterministic.
        """
        files = self.discover(paths)
        if jobs > 1 and len(files) > 1:
            from concurrent.futures import ThreadPoolExecutor
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                return list(pool.map(ModuleSource.parse, files))
        return [ModuleSource.parse(path) for path in files]

    def run(self, paths: Iterable[str], jobs: int = 1) -> LintReport:
        report = LintReport(rules_run=[r.name for r in self.rules])
        modules = self.parse_all(paths, jobs=jobs)
        for module in modules:
            report.extend(self.check_module(module))
            report.files_checked += 1

        project_rules = [r for r in self.rules if isinstance(r, ProjectRule)]
        if project_rules:
            from .callgraph import Project
            project = Project(modules)
            by_path = {m.path: m for m in modules}
            for rule in project_rules:
                for finding in rule.check_project(project):
                    module = by_path.get(finding.path)
                    if module is not None:
                        self._classify(module, finding)
                    report.findings.append(finding)

        if self.baseline:
            seen = {fingerprint(f, self.root) for f in report.findings}
            stale = len(self.baseline - seen)
            if stale:
                report.stats["stale_baseline_entries"] = stale
        return report
