"""AST lint engine: rule registry, suppressions, baseline, file walking.

The engine is deliberately tool-shaped rather than workflow-shaped: a
:class:`Rule` inspects one parsed module and yields
:class:`~repro.analysis.findings.Finding`s; the registry groups rules
into *families* (``determinism``, ``provenance``) that the CLI selects;
the engine handles everything generic — discovering files, parsing each
one exactly once, honoring per-line suppression comments, and matching
grandfathered findings against a baseline file.

Suppression syntax
------------------
A finding is suppressed by a comment on the flagged line or on the line
directly above it::

    t = time.time()          # repro: allow[det-wallclock]
    # repro: allow[det-set-iteration, det-id-key]
    for ts in pending_set: ...
    # repro: allow[*]        (suppress every rule on the next line)

Baseline files
--------------
A baseline is a JSON document listing fingerprints of known findings
(``relpath::rule::blake2(line text)``).  Fingerprints use the stripped
source text rather than the line number, so unrelated edits that shift
lines do not resurrect grandfathered findings.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Optional

from .findings import (
    STATUS_ACTIVE,
    STATUS_BASELINED,
    STATUS_SUPPRESSED,
    Finding,
    LintReport,
)

__all__ = [
    "ModuleSource",
    "Rule",
    "register",
    "registered_rules",
    "rules_for",
    "LintEngine",
    "load_baseline",
    "write_baseline",
    "fingerprint",
]

_ALLOW_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


@dataclass
class ModuleSource:
    """One parsed source file, shared by every rule."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: Optional[str] = None) -> "ModuleSource":
        if source is None:
            with tokenize.open(path) as fh:
                source = fh.read()
        tree = ast.parse(source, filename=path)
        return cls(path=path, source=source, tree=tree,
                   lines=source.splitlines())

    def line(self, lineno: int) -> str:
        """1-based source line (empty string out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def allowed_rules(self, lineno: int) -> set[str]:
        """Rule names suppressed at ``lineno`` (``*`` = everything)."""
        allowed: set[str] = set()
        for candidate in (self.line(lineno), self.line(lineno - 1)):
            match = _ALLOW_RE.search(candidate)
            if match:
                allowed.update(
                    token.strip() for token in match.group(1).split(",")
                    if token.strip())
        return allowed


class Rule:
    """Base class: one named check over one module."""

    name: str = ""
    family: str = ""
    description: str = ""

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        raise NotImplementedError

    def finding(self, module: ModuleSource, node: ast.AST,
                message: str) -> Finding:
        """Construct a finding anchored at an AST node."""
        lineno = getattr(node, "lineno", 0)
        return Finding(
            rule=self.name, message=message, path=module.path,
            line=lineno, col=getattr(node, "col_offset", 0),
            snippet=module.line(lineno),
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_cls: type) -> type:
    """Class decorator adding one rule instance to the global registry."""
    rule = rule_cls()
    if not rule.name or not rule.family:
        raise ValueError(f"rule {rule_cls.__name__} needs name and family")
    if rule.name in _REGISTRY:
        raise ValueError(f"duplicate rule name {rule.name!r}")
    _REGISTRY[rule.name] = rule
    return rule_cls


def registered_rules() -> dict[str, Rule]:
    # Importing the rule modules populates the registry on first use.
    from . import determinism, schema  # noqa: F401
    return dict(_REGISTRY)


def rules_for(selectors: Optional[Iterable[str]] = None) -> list[Rule]:
    """Resolve family names and/or rule names to rule instances."""
    rules = registered_rules()
    if not selectors:
        return sorted(rules.values(), key=lambda r: r.name)
    chosen: dict[str, Rule] = {}
    for selector in selectors:
        matched = {
            name: rule for name, rule in rules.items()
            if name == selector or rule.family == selector
        }
        if not matched:
            known = sorted({r.family for r in rules.values()} | set(rules))
            raise KeyError(
                f"unknown rule or family {selector!r}; choose from {known}")
        chosen.update(matched)
    return sorted(chosen.values(), key=lambda r: r.name)


# ---------------------------------------------------------------------------
# baseline
# ---------------------------------------------------------------------------

def fingerprint(finding: Finding, root: str) -> str:
    """Stable identity of a finding: path, rule, and line *text*."""
    rel = os.path.relpath(finding.path, root) \
        if os.path.isabs(finding.path) else finding.path
    digest = hashlib.blake2b(
        finding.snippet.strip().encode("utf-8"), digest_size=8).hexdigest()
    return f"{rel.replace(os.sep, '/')}::{finding.rule}::{digest}"


def load_baseline(path: str) -> set[str]:
    with open(path) as fh:
        document = json.load(fh)
    if document.get("version") != 1:
        raise ValueError(f"unsupported baseline version in {path}")
    return set(document.get("entries", []))


def write_baseline(report: LintReport, path: str, root: str) -> int:
    """Persist every *active* finding as grandfathered; returns count."""
    entries = sorted({fingerprint(f, root) for f in report.active})
    os.makedirs(os.path.dirname(os.path.abspath(path)), exist_ok=True)
    with open(path, "w") as fh:
        json.dump({"version": 1, "entries": entries}, fh, indent=2)
        fh.write("\n")
    return len(entries)


# ---------------------------------------------------------------------------
# engine
# ---------------------------------------------------------------------------

class LintEngine:
    """Run a rule set over a file tree and classify the findings."""

    def __init__(self, rules: Optional[Iterable[Rule]] = None,
                 baseline: Optional[set[str]] = None,
                 root: Optional[str] = None):
        self.rules = list(rules) if rules is not None else rules_for(None)
        self.baseline = baseline or set()
        #: Directory baseline fingerprints are relative to.
        self.root = root or os.getcwd()

    # ------------------------------------------------------------------
    @staticmethod
    def discover(paths: Iterable[str]) -> list[str]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        out: set[str] = set()
        for path in paths:
            if os.path.isdir(path):
                for dirpath, dirnames, filenames in os.walk(path):
                    dirnames[:] = sorted(
                        d for d in dirnames
                        if d not in ("__pycache__", ".git"))
                    for name in filenames:
                        if name.endswith(".py"):
                            out.add(os.path.join(dirpath, name))
            elif os.path.isfile(path):
                out.add(path)
            else:
                raise FileNotFoundError(f"no such file or directory: {path}")
        return sorted(out)

    # ------------------------------------------------------------------
    def check_module(self, module: ModuleSource) -> list[Finding]:
        findings: list[Finding] = []
        for rule in self.rules:
            for finding in rule.check(module):
                self._classify(module, finding)
                findings.append(finding)
        return findings

    def _classify(self, module: ModuleSource, finding: Finding) -> None:
        allowed = module.allowed_rules(finding.line)
        if finding.rule in allowed or "*" in allowed:
            finding.status = STATUS_SUPPRESSED
        elif fingerprint(finding, self.root) in self.baseline:
            finding.status = STATUS_BASELINED
        else:
            finding.status = STATUS_ACTIVE

    # ------------------------------------------------------------------
    def run(self, paths: Iterable[str]) -> LintReport:
        report = LintReport(rules_run=[r.name for r in self.rules])
        for path in self.discover(paths):
            module = ModuleSource.parse(path)
            report.extend(self.check_module(module))
            report.files_checked += 1
        return report
