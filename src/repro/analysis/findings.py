"""Finding and report types shared by the static passes and the sanitizer.

A :class:`Finding` is one diagnosed hazard, static (file/line) or
runtime (simulated timestamp).  A :class:`LintReport` aggregates the
findings of one engine run, tracks which of them are *suppressed*
(``# repro: allow[rule]`` comments) or *baselined* (grandfathered in a
baseline file), and renders to both the human text format and the JSON
format CI consumes.  The exit-code convention follows familiar linters:

* ``0`` — no active findings,
* ``1`` — at least one active finding,
* ``2`` — the engine itself could not run (bad path, syntax error).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = [
    "EXIT_CLEAN",
    "EXIT_FINDINGS",
    "EXIT_ERROR",
    "STATUS_ACTIVE",
    "STATUS_SUPPRESSED",
    "STATUS_BASELINED",
    "Finding",
    "LintReport",
]

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

STATUS_ACTIVE = "active"
STATUS_SUPPRESSED = "suppressed"
STATUS_BASELINED = "baselined"


@dataclass
class Finding:
    """One diagnosed hazard."""

    rule: str
    message: str
    #: File path for static findings; "<runtime>" for sanitizer findings.
    path: str = "<runtime>"
    line: int = 0
    col: int = 0
    #: Last line of the flagged expression (multi-line suppressions).
    end_line: int = 0
    #: Simulated timestamp, for sanitizer findings only.
    time: float | None = None
    #: The offending source line (static) or event detail (runtime).
    snippet: str = ""
    status: str = STATUS_ACTIVE

    @property
    def active(self) -> bool:
        return self.status == STATUS_ACTIVE

    def location(self) -> str:
        if self.time is not None:
            return f"t={self.time:.6f}"
        return f"{self.path}:{self.line}:{self.col}"

    def render(self) -> str:
        text = f"{self.location()}: [{self.rule}] {self.message}"
        if self.status != STATUS_ACTIVE:
            text += f" ({self.status})"
        if self.snippet:
            text += f"\n    {self.snippet.strip()}"
        return text


@dataclass
class LintReport:
    """Everything one engine run produced."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    rules_run: list[str] = field(default_factory=list)
    #: Free-form counters (the sanitizer reports event/tie statistics).
    stats: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    def extend(self, findings: list[Finding]) -> None:
        self.findings.extend(findings)

    @property
    def active(self) -> list[Finding]:
        return [f for f in self.findings if f.active]

    @property
    def suppressed(self) -> list[Finding]:
        return [f for f in self.findings if f.status == STATUS_SUPPRESSED]

    @property
    def baselined(self) -> list[Finding]:
        return [f for f in self.findings if f.status == STATUS_BASELINED]

    @property
    def exit_code(self) -> int:
        return EXIT_FINDINGS if self.active else EXIT_CLEAN

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.active:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    # -- rendering -----------------------------------------------------
    def render_text(self, verbose: bool = False) -> str:
        lines = []
        shown = self.findings if verbose else self.active
        for finding in sorted(
                shown, key=lambda f: (f.path, f.line, f.col, f.rule)):
            lines.append(finding.render())
        summary = (f"{len(self.active)} finding(s)"
                   f" ({len(self.suppressed)} suppressed,"
                   f" {len(self.baselined)} baselined)")
        if self.files_checked:
            summary += f" across {self.files_checked} file(s)"
        if self.stats:
            summary += "; " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.stats.items()))
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        return json.dumps({
            "findings": [asdict(f) for f in self.findings],
            "files_checked": self.files_checked,
            "rules_run": sorted(self.rules_run),
            "stats": self.stats,
            "exit_code": self.exit_code,
        }, indent=2, sort_keys=True)
