"""Provenance-schema lint: every emission site carries the identifiers.

The paper's FAIR lesson (§V) — and Souza et al.'s multi-workflow
provenance argument — is that multisource records are only joinable
when every emission site supplies the full shared-identifier set.  In
this repository the join contract lives in
:data:`repro.core.fair.IDENTIFIER_COLUMNS` (abstract identifier →
physical column spellings); the concrete record shapes live in
:mod:`repro.dasklike.records` / :mod:`repro.dasklike.states`.  These
rules statically verify, for every Mofka emission site
(``producer.push({...})`` and ``self._push(type, payload)`` calls),
that the supplied metadata keys satisfy the identifiers required for
that event type — so schema drift is caught at lint time instead of as
NaN joins in :mod:`repro.core.ingest`.

Rules:

``prov-missing-identifier``
    A typed emission site whose payload lacks a required identifier.
``prov-missing-type``
    A ``push({...})`` metadata literal without a ``"type"`` key.
``prov-unknown-event-type``
    An event type no requirement entry covers (schema drift: add it to
    :data:`EVENT_REQUIREMENTS` alongside the new consumer).
``prov-untyped-emission``
    A site the lint cannot resolve statically (non-literal payload and
    no resolvable record annotation); suppress at generic funnels.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterable, Optional

from .engine import ModuleSource, Rule, register
from .findings import Finding

__all__ = ["EVENT_REQUIREMENTS", "record_fields", "required_columns",
           "satisfied_identifiers"]

#: Abstract identifiers (fair.py vocabulary) each event type must carry.
#: ``timestamp`` keeps every stream time-alignable; entity identifiers
#: make the strong joins (task↔io↔comm) possible.
EVENT_REQUIREMENTS: dict[str, set[str]] = {
    "transition": {"key", "worker", "timestamp"},
    "task_run": {"key", "worker", "hostname", "thread", "timestamp"},
    "communication": {"key", "worker", "hostname", "timestamp"},
    "warning": {"worker", "hostname", "timestamp"},
    "steal": {"key", "worker", "timestamp"},
    "spill": {"key", "worker", "hostname", "timestamp"},
    "task_added": {"key", "timestamp"},
    "dxt_segment": {"hostname", "thread", "timestamp"},
    "fault": {"worker", "hostname", "timestamp"},
    "proxy_put": {"key", "worker", "hostname", "timestamp"},
    "proxy_resolve": {"key", "worker", "hostname", "timestamp"},
    "proxy_evict": {"key", "worker", "hostname", "timestamp"},
}

_record_fields_cache: Optional[dict[str, frozenset[str]]] = None


def record_fields() -> dict[str, frozenset[str]]:
    """Dataclass name → field names, for ``asdict(record)`` payloads."""
    global _record_fields_cache
    if _record_fields_cache is None:
        from ..dasklike import records as record_module
        from ..dasklike.states import TransitionRecord
        classes = [TransitionRecord]
        for name in record_module.__all__:
            obj = getattr(record_module, name)
            if dataclasses.is_dataclass(obj):
                classes.append(obj)
        _record_fields_cache = {
            cls.__name__: frozenset(
                f.name for f in dataclasses.fields(cls))
            for cls in classes
        }
    return _record_fields_cache


def _identifier_columns() -> dict[str, set[str]]:
    from ..core.fair import IDENTIFIER_COLUMNS
    return IDENTIFIER_COLUMNS


def required_columns(event_type: str) -> dict[str, set[str]]:
    """Abstract identifier → acceptable physical columns for a type."""
    columns = _identifier_columns()
    return {ident: columns[ident]
            for ident in sorted(EVENT_REQUIREMENTS[event_type])}


def satisfied_identifiers(event_type: str,
                          supplied: set[str]) -> tuple[set[str], set[str]]:
    """Split the type's required identifiers into (present, missing)."""
    present, missing = set(), set()
    for ident, physical in required_columns(event_type).items():
        (present if physical & supplied else missing).add(ident)
    return present, missing


# ---------------------------------------------------------------------------
# emission-site extraction
# ---------------------------------------------------------------------------

def _literal_keys(node: ast.Dict) -> Optional[set[str]]:
    """Constant string keys of a dict literal; None if unresolvable."""
    keys: set[str] = set()
    for key in node.keys:
        if key is None:  # ** unpacking
            return None
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            return None
        keys.add(key.value)
    return keys


def _annotation_name(annotation: Optional[ast.AST]) -> str:
    if isinstance(annotation, ast.Name):
        return annotation.id
    if isinstance(annotation, ast.Attribute):
        return annotation.attr
    if isinstance(annotation, ast.Constant) and \
            isinstance(annotation.value, str):
        return annotation.value.rsplit(".", 1)[-1]
    return ""


def _resolve_payload(payload: ast.AST,
                     enclosing: Optional[ast.AST]) -> Optional[set[str]]:
    """Statically determine the metadata keys a payload supplies."""
    if isinstance(payload, ast.Dict):
        return _literal_keys(payload)
    # asdict(record) where ``record`` is an annotated parameter of the
    # enclosing function and the annotation names a known dataclass.
    if isinstance(payload, ast.Call) and payload.args and \
            isinstance(payload.args[0], ast.Name):
        func = payload.func
        func_name = func.attr if isinstance(func, ast.Attribute) else \
            getattr(func, "id", "")
        if func_name == "asdict" and enclosing is not None:
            wanted = payload.args[0].id
            for arg in (list(enclosing.args.posonlyargs)
                        + list(enclosing.args.args)
                        + list(enclosing.args.kwonlyargs)):
                if arg.arg == wanted:
                    fields = record_fields().get(
                        _annotation_name(arg.annotation))
                    return set(fields) if fields is not None else None
    return None


def _walk_with_scope(tree: ast.Module):
    """Yield ``(node, enclosing_function)`` for every node."""
    def visit(node: ast.AST, enclosing: Optional[ast.AST]):
        yield node, enclosing
        inner = node if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef)) else enclosing
        for child in ast.iter_child_nodes(node):
            yield from visit(child, inner)
    yield from visit(tree, None)


def _emission_sites(module: ModuleSource):
    """Yield ``(node, kind, message)`` diagnostics for one module.

    ``kind`` is one of the four prov- rule names (without the prefix the
    wrapper rules re-attach); clean sites yield nothing.
    """
    for node, enclosing in _walk_with_scope(module.tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)):
            continue
        attr = node.func.attr
        if attr == "push" and node.args:
            metadata = node.args[0]
            if isinstance(metadata, ast.Dict):
                keys = _literal_keys(metadata)
                if keys is None:
                    yield (node, "prov-untyped-emission",
                           "metadata literal with non-constant keys "
                           "cannot be schema-checked")
                    continue
                event_type = _dict_type_value(metadata)
                if "type" not in keys:
                    yield (node, "prov-missing-type",
                           "pushed metadata has no 'type' key; consumers "
                           "cannot route it")
                elif event_type is None:
                    yield (node, "prov-untyped-emission",
                           "'type' value is not a string literal")
                else:
                    yield from _check_type(node, event_type, keys)
            else:
                yield (node, "prov-untyped-emission",
                       "push() with a non-literal payload cannot be "
                       "schema-checked; suppress at generic funnels")
        elif attr == "_push" and len(node.args) >= 2:
            type_arg, payload = node.args[0], node.args[1]
            if not (isinstance(type_arg, ast.Constant)
                    and isinstance(type_arg.value, str)):
                yield (node, "prov-untyped-emission",
                       "_push() with a non-literal event type")
                continue
            supplied = _resolve_payload(payload, enclosing)
            if supplied is None:
                yield (node, "prov-untyped-emission",
                       f"_push({type_arg.value!r}, ...) payload is not a "
                       f"dict literal or resolvable asdict(record)")
            else:
                yield from _check_type(node, type_arg.value, supplied)


def _dict_type_value(metadata: ast.Dict) -> Optional[str]:
    for key, value in zip(metadata.keys, metadata.values):
        if isinstance(key, ast.Constant) and key.value == "type":
            if isinstance(value, ast.Constant) and \
                    isinstance(value.value, str):
                return value.value
            return None
    return None


def _check_type(node: ast.AST, event_type: str, supplied: set[str]):
    if event_type not in EVENT_REQUIREMENTS:
        yield (node, "prov-unknown-event-type",
               f"event type {event_type!r} has no schema requirement "
               f"entry; register it in EVENT_REQUIREMENTS")
        return
    _present, missing = satisfied_identifiers(event_type, supplied)
    for ident in sorted(missing):
        acceptable = ", ".join(sorted(required_columns(event_type)[ident]))
        yield (node, "prov-missing-identifier",
               f"{event_type!r} emission lacks the {ident!r} identifier "
               f"(need one of: {acceptable}); downstream joins in "
               f"core.ingest will produce nulls")


class _EmissionRule(Rule):
    """Shared driver: each concrete rule keeps its own diagnostics."""

    family = "provenance"

    def check(self, module: ModuleSource) -> Iterable[Finding]:
        for node, kind, message in _emission_sites(module):
            if kind == self.name:
                yield self.finding(module, node, message)


@register
class MissingIdentifierRule(_EmissionRule):
    name = "prov-missing-identifier"
    description = "emission payload lacks a required identifier column"


@register
class MissingTypeRule(_EmissionRule):
    name = "prov-missing-type"
    description = "pushed metadata carries no 'type' key"


@register
class UnknownEventTypeRule(_EmissionRule):
    name = "prov-unknown-event-type"
    description = "event type absent from EVENT_REQUIREMENTS"


@register
class UntypedEmissionRule(_EmissionRule):
    name = "prov-untyped-emission"
    description = "emission site not statically checkable"
