"""Intraprocedural dataflow over ``ast``: reaching dict keys, aliases.

The per-module rules in :mod:`repro.analysis.determinism` and
:mod:`repro.analysis.schema` only look at the expression in front of
them; the pass families introduced with the whole-program engine
(:mod:`repro.analysis.concurrency`, :mod:`repro.analysis.hotpath`,
:mod:`repro.analysis.provflow`) need to know what *flows into* an
expression.  This module is the small dataflow core they share:

* **Scope helpers** — parent links, enclosing function/class lookup,
  dotted-name rendering, and generator/yield structure
  (:func:`function_yields`, :func:`is_generator`,
  :func:`while_loops_of`).
* **Reaching dict keys** (:class:`DictKeyFlow`) — given a name used as
  an emission payload, replay the assignments, ``payload["k"] = v``
  stores, ``payload.update({...})`` merges and ``{**base, ...}``
  unpacks that precede the use, and report the statically-known key
  set (and the constant ``"type"`` value if one was assigned).
* **Self-attribute mutation extraction**
  (:func:`attribute_mutations`) — every site in a function that writes
  component state (``x.attr = v``, ``x.attr[k] = v``,
  ``x.attr += v``, ``x.attr.pop(...)`` and friends), keyed by the
  attribute name so cross-module passes can match mutations of the
  same logical state from different classes.

Everything here is deliberately *optimistic* for may-information (a
key assigned in any branch counts as supplied) and *pessimistic* for
must-information (any unresolvable write poisons the state to
``None`` = unknown): lint findings must not accuse code the analysis
merely failed to follow.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterable, Optional

__all__ = [
    "attach_parents",
    "parent",
    "enclosing_function",
    "enclosing_class",
    "dotted",
    "is_generator",
    "function_yields",
    "while_loops_of",
    "self_attrs_in",
    "DictKeyFlow",
    "DictState",
    "attribute_mutations",
    "Mutation",
    "MUTATOR_METHODS",
]

_PARENT_FIELD = "_repro_df_parent"

#: Container methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "pop", "popitem", "append", "appendleft", "extend", "extendleft",
    "add", "update", "clear", "remove", "discard", "insert",
    "setdefault", "sort", "reverse",
})


# ---------------------------------------------------------------------------
# scope helpers
# ---------------------------------------------------------------------------

def attach_parents(tree: ast.AST) -> ast.AST:
    """Idempotently link every node to its parent; returns ``tree``."""
    if getattr(tree, "_repro_df_linked", False):
        return tree
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            setattr(child, _PARENT_FIELD, node)
    tree._repro_df_linked = True  # type: ignore[attr-defined]
    return tree


def parent(node: ast.AST) -> Optional[ast.AST]:
    return getattr(node, _PARENT_FIELD, None)


def enclosing_function(node: ast.AST) -> Optional[ast.AST]:
    cursor = parent(node)
    while cursor is not None:
        if isinstance(cursor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return cursor
        cursor = parent(cursor)
    return None


def enclosing_class(node: ast.AST) -> Optional[ast.ClassDef]:
    cursor = parent(node)
    while cursor is not None:
        if isinstance(cursor, ast.ClassDef):
            return cursor
        cursor = parent(cursor)
    return None


def dotted(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute chains; '' for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def own_nodes(func: ast.AST) -> Iterable[ast.AST]:
    """Walk ``func`` without descending into nested function scopes."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


def function_yields(func: ast.AST) -> list[ast.AST]:
    """Yield/YieldFrom nodes belonging to ``func``'s own scope."""
    return [n for n in own_nodes(func)
            if isinstance(n, (ast.Yield, ast.YieldFrom))]


def is_generator(func: ast.AST) -> bool:
    """True when the function body itself contains a yield."""
    return bool(function_yields(func))


def while_loops_of(func: ast.AST) -> list[ast.While]:
    """While loops in ``func``'s own scope (not nested functions)."""
    return [n for n in own_nodes(func) if isinstance(n, ast.While)]


def self_attrs_in(node: ast.AST) -> set[str]:
    """Names of ``self.<attr>`` loads anywhere under ``node``."""
    found: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and \
                isinstance(sub.value, ast.Name) and sub.value.id == "self":
            found.add(sub.attr)
    return found


# ---------------------------------------------------------------------------
# reaching dict keys
# ---------------------------------------------------------------------------

class DictState:
    """Statically known shape of one dict-valued local.

    ``keys`` is the set of string keys known supplied; ``type_value``
    the constant assigned under the ``"type"`` key, when there is one.
    """

    __slots__ = ("keys", "type_value")

    def __init__(self, keys: set[str], type_value: Optional[str] = None):
        self.keys = set(keys)
        self.type_value = type_value

    def copy(self) -> "DictState":
        return DictState(self.keys, self.type_value)


#: Resolver signature: map a Call node to the DictState its return
#: value is known to carry, or None when unresolvable.  The provflow
#: pass plugs in project-level helper-return resolution here.
CallResolver = Callable[[ast.Call], Optional[DictState]]


class DictKeyFlow:
    """Replay dict-building statements of one function, in source order.

    The flow is flow-insensitive across branches (optimistic union) but
    ordered by line: only statements textually before the use site
    contribute, which matches the build-then-emit idiom all emission
    helpers in this repository follow.
    """

    def __init__(self, func: ast.AST,
                 resolve_call: Optional[CallResolver] = None):
        self.func = func
        self.resolve_call = resolve_call

    # ------------------------------------------------------------------
    def env_at(self, use: ast.AST) -> dict[str, Optional[DictState]]:
        """Replay every dict-shaping statement before ``use``."""
        use_line = getattr(use, "lineno", 0)
        env: dict[str, Optional[DictState]] = {}
        steps = sorted(
            (s for s in own_nodes(self.func)
             if getattr(s, "lineno", 0) < use_line and self._touches(s)),
            key=lambda s: (s.lineno, s.col_offset))
        for step in steps:
            self._apply(step, env)
        return env

    def state_at(self, name: str, use: ast.AST) -> Optional[DictState]:
        """Known dict state of ``name`` just before ``use`` executes."""
        return self.env_at(use).get(name)

    def keys_at(self, name: str, use: ast.AST) -> Optional[set[str]]:
        state = self.state_at(name, use)
        return set(state.keys) if state is not None else None

    def eval_at(self, expr: ast.AST, use: ast.AST) -> Optional[DictState]:
        """Dict state of an inline expression (e.g. ``{**base, ...}``)."""
        return self._eval(expr, self.env_at(use))

    # ------------------------------------------------------------------
    @staticmethod
    def _touches(stmt: ast.AST) -> bool:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            return True
        if isinstance(stmt, ast.Call):
            func = stmt.func
            return isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name)
        if isinstance(stmt, ast.Delete):
            return True
        return False

    def _apply(self, stmt: ast.AST,
               env: dict[str, Optional[DictState]]) -> None:
        if isinstance(stmt, ast.Assign):
            state = self._eval(stmt.value, env)
            for target in stmt.targets:
                self._store(target, state, env)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._store(stmt.target, self._eval(stmt.value, env), env)
        elif isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = None
        elif isinstance(stmt, ast.Call):
            self._apply_call(stmt, env)
        elif isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                if isinstance(target, ast.Subscript) and \
                        isinstance(target.value, ast.Name):
                    state = env.get(target.value.id)
                    key = _const_str(target.slice)
                    if state is not None and key is not None:
                        state.keys.discard(key)
                        if key == "type":
                            state.type_value = None

    def _store(self, target: ast.AST, state: Optional[DictState],
               env: dict[str, Optional[DictState]]) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = state.copy() if state is not None else None
        elif isinstance(target, ast.Subscript) and \
                isinstance(target.value, ast.Name):
            # payload["k"] = v adds one key to an existing state.
            existing = env.get(target.value.id)
            key = _const_str(target.slice)
            if existing is not None:
                if key is None:
                    env[target.value.id] = None
                else:
                    existing.keys.add(key)
                    if key == "type":
                        existing.type_value = None
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, None, env)

    def _apply_call(self, call: ast.Call,
                    env: dict[str, Optional[DictState]]) -> None:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)):
            return
        state = env.get(func.value.id)
        if state is None:
            return
        if func.attr == "update" and call.args:
            merged = self._eval(call.args[0], env)
            if merged is None:
                env[func.value.id] = None
            else:
                state.keys.update(merged.keys)
                if merged.type_value is not None:
                    state.type_value = merged.type_value
            for kw in call.keywords:
                if kw.arg is not None:
                    state.keys.add(kw.arg)
        elif func.attr == "update" and call.keywords:
            for kw in call.keywords:
                if kw.arg is None:
                    env[func.value.id] = None
                    return
                state.keys.add(kw.arg)
        elif func.attr == "setdefault" and call.args:
            key = _const_str(call.args[0])
            if key is not None:
                state.keys.add(key)
        elif func.attr == "pop" and call.args:
            key = _const_str(call.args[0])
            if key is not None:
                state.keys.discard(key)
        elif func.attr == "clear":
            env[func.value.id] = DictState(set())

    # ------------------------------------------------------------------
    def _eval(self, value: ast.AST,
              env: dict[str, Optional[DictState]]) -> Optional[DictState]:
        """Dict state of an expression, or None when unresolvable."""
        if isinstance(value, ast.Dict):
            return self._eval_dict_literal(value, env)
        if isinstance(value, ast.Name):
            state = env.get(value.id)
            return state.copy() if state is not None else None
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name) and func.id == "dict":
                return self._eval_dict_call(value, env)
            if self.resolve_call is not None:
                return self.resolve_call(value)
            return None
        return None

    def _eval_dict_literal(self, node: ast.Dict,
                           env: dict) -> Optional[DictState]:
        state = DictState(set())
        for key, val in zip(node.keys, node.values):
            if key is None:  # ** unpack: fold the base dict in
                base = self._eval(val, env)
                if base is None:
                    return None
                state.keys.update(base.keys)
                if base.type_value is not None:
                    state.type_value = base.type_value
                continue
            literal = _const_str(key)
            if literal is None:
                return None
            state.keys.add(literal)
            if literal == "type":
                state.type_value = _const_str(val)
        return state

    def _eval_dict_call(self, call: ast.Call,
                        env: dict) -> Optional[DictState]:
        state = DictState(set())
        if call.args:
            base = self._eval(call.args[0], env)
            if base is None:
                return None
            state.keys.update(base.keys)
            state.type_value = base.type_value
        for kw in call.keywords:
            if kw.arg is None:
                base = self._eval(kw.value, env)
                if base is None:
                    return None
                state.keys.update(base.keys)
                if base.type_value is not None:
                    state.type_value = base.type_value
            else:
                state.keys.add(kw.arg)
                if kw.arg == "type":
                    state.type_value = _const_str(kw.value)
        return state


def _const_str(node: Optional[ast.AST]) -> Optional[str]:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


# ---------------------------------------------------------------------------
# attribute mutations
# ---------------------------------------------------------------------------

class Mutation:
    """One write to component state: ``<receiver>.<attr>`` mutated."""

    __slots__ = ("attr", "node", "kind", "self_owned")

    def __init__(self, attr: str, node: ast.AST, kind: str,
                 self_owned: bool = False):
        self.attr = attr       #: logical state name, e.g. "occupancy"
        self.node = node       #: the mutating statement/call
        self.kind = kind       #: "assign" | "augassign" | "call" | "delete"
        #: True when the receiver is ``self`` — the state belongs to the
        #: enclosing class; False for ``other.attr`` writes, where the
        #: owning class is statically unknown.
        self.self_owned = self_owned


def _mutated_attr(target: ast.AST) -> Optional[tuple[str, bool]]:
    """(attr name, receiver-is-self) for an assignment target, if any.

    ``x.attr = v`` and ``x.attr[k] = v`` both mutate the state held
    under ``attr``; plain-name and plain-subscript targets do not touch
    attribute state.
    """
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Attribute):
        self_owned = isinstance(target.value, ast.Name) and \
            target.value.id == "self"
        return target.attr, self_owned
    return None


def attribute_mutations(func: ast.AST) -> list[Mutation]:
    """Every component-state write in ``func``'s own scope."""
    out: list[Mutation] = []
    for node in own_nodes(func):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                hit = _mutated_attr(target)
                if hit is not None:
                    out.append(Mutation(hit[0], node, "assign", hit[1]))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            hit = _mutated_attr(node.target)
            if hit is not None:
                out.append(Mutation(hit[0], node, "augassign", hit[1]))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                hit = _mutated_attr(target)
                if hit is not None:
                    out.append(Mutation(hit[0], node, "delete", hit[1]))
        elif isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr in MUTATOR_METHODS:
            receiver = node.func.value
            if isinstance(receiver, ast.Attribute):
                self_owned = isinstance(receiver.value, ast.Name) and \
                    receiver.value.id == "self"
                out.append(Mutation(receiver.attr, node, "call", self_owned))
    return sorted(out, key=lambda m: (getattr(m.node, "lineno", 0),
                                      getattr(m.node, "col_offset", 0)))
