"""Runtime event-ordering sanitizer: a race detector for the DES.

Static rules cannot see every ordering hazard — some only exist in the
*dynamic* event stream.  :class:`EventOrderSanitizer` plugs into the
simulation kernel's monitor hooks (``Environment.monitor``) and checks
three invariants on every scheduled and popped event:

``sanitize-tie-order``
    Two events popped at the *identical* ``(time, priority)`` key that
    (a) were scheduled with positive delays from *different* origin
    instants — an accidental float collision, not a structural
    zero-delay cascade — and (b) share a waiter (the same callback,
    e.g. one ``AnyOf``/``AllOf`` condition spanning both).  That
    waiter's outcome is decided only by insertion sequence, so any
    epsilon of timing drift flips it.  Structural cascades (events
    scheduled *at* the instant they fire, e.g. ``succeed()`` chains)
    and independent periodic timers that merely coincide (disjoint
    callbacks, e.g. linger vs. heartbeat grids) are deterministic and
    exempt; coincidences are still counted in
    ``stats["tie_groups"]``.
``sanitize-foreign-resume``
    A handler callback resuming a :class:`~repro.sim.engine.Process`
    that is parked on a *different* event — entity state mutated
    outside the event queue.  Legal resumptions either target the
    event the process waits on or follow an ``interrupt()`` (which
    detaches the process first); anything else risks double-resume
    races exactly like a data race in threaded code.
``sanitize-negative-delay``
    An event scheduled before the current instant (time travel), which
    the binary heap would silently reorder around already-popped
    events.

Attach with :meth:`attach`, run the workload, then read
:meth:`report`.  The CLI front end is ``perfrecup sanitize``.
"""

from __future__ import annotations

from typing import Any, Optional

from ..sim.engine import Environment, Event, Process
from .findings import Finding, LintReport

__all__ = ["EventOrderSanitizer", "MAX_FINDINGS"]

#: Recording cap so a pathological run cannot exhaust memory; the
#: overflow count is reported in ``stats["findings_dropped"]``.
MAX_FINDINGS = 200


class EventOrderSanitizer:
    """Dynamic checker wired into :class:`~repro.sim.Environment`."""

    def __init__(self, max_findings: int = MAX_FINDINGS):
        self.max_findings = max_findings
        self.findings: list[Finding] = []
        self._dropped = 0
        #: seq -> (when, priority, origin now) for still-queued events.
        self._origins: dict[int, tuple[float, int, float]] = {}
        self._last_pop: Optional[tuple[float, int, int, float]] = None
        self._tie_size = 1
        #: (origin, callbacks) of the previous pop and of the
        #: accidental-origin members of the current tie group.
        self._prev_member: tuple[float, list] = (0.0, [])
        self._tie_members: list[tuple[float, list]] = []
        # Statistics.
        self.events_scheduled = 0
        self.events_processed = 0
        self.tie_groups = 0
        self.max_tie_size = 1
        self._env: Optional[Environment] = None

    # ------------------------------------------------------------------
    def attach(self, env: Environment) -> "EventOrderSanitizer":
        env.add_monitor(self)
        self._env = env
        return self

    def detach(self) -> None:
        if self._env is not None:
            self._env.remove_monitor(self)
            self._env = None

    # -- hook surface (called by Environment) ---------------------------
    def on_schedule(self, event: Event, when: float, priority: int,
                    seq: int, now: float) -> None:
        self.events_scheduled += 1
        self._origins[seq] = (when, priority, now)
        if when < now:
            self._record(
                "sanitize-negative-delay", now,
                f"{event!r} scheduled at t={when:.6f}, before the "
                f"current instant t={now:.6f}",
            )

    def on_step(self, event: Event, when: float, priority: int,
                seq: int) -> None:
        self.events_processed += 1
        origin = self._origins.pop(seq, (when, priority, when))[2]
        last = self._last_pop
        self._last_pop = (when, priority, seq, origin)
        # Only accidental (positive-delay) members can make a tie
        # fragile; structural zero-delay members never do, so their
        # callbacks need not be retained.
        member = (origin,
                  list(event.callbacks or ()) if origin != when else [])
        if last is None:
            self._prev_member = member
            return
        last_when, last_priority, _last_seq, _last_origin = last
        if when < last_when:
            self._record(
                "sanitize-time-regression", when,
                f"popped t={when:.6f} after t={last_when:.6f}",
            )
        if (when, priority) == (last_when, last_priority):
            self._tie_size += 1
            if self._tie_size == 2:
                self.tie_groups += 1
                self._tie_members = [self._prev_member]
            self.max_tie_size = max(self.max_tie_size, self._tie_size)
            self._check_tie_member(event, when, member)
            self._tie_members.append(member)
        else:
            self._tie_size = 1
            self._tie_members = []
        self._prev_member = member

    def _check_tie_member(self, event: Event, when: float,
                          member: tuple[float, list]) -> None:
        origin, callbacks = member
        if origin == when or not callbacks:
            return
        for other_origin, other_callbacks in self._tie_members:
            if other_origin == when or other_origin == origin:
                continue
            # Bound methods compare equal on (instance, function), so a
            # condition's _check registered on both events matches.
            if any(cb == other for cb in callbacks
                   for other in other_callbacks):
                self._record(
                    "sanitize-tie-order", when,
                    f"{event!r} ties at t={when:.6f} with an event "
                    f"scheduled from a different instant (origins "
                    f"t={other_origin:.6f} and t={origin:.6f}) and both "
                    f"feed the same waiter; its outcome is decided only "
                    f"by insertion sequence",
                )
                return

    def before_callback(self, event: Event, callback: Any) -> None:
        process = getattr(callback, "__self__", None)
        if isinstance(process, Process) and \
                getattr(callback, "__name__", "") == "_resume":
            target = process._target
            if target is not None and target is not event:
                self._record(
                    "sanitize-foreign-resume",
                    event.env.now,
                    f"{event!r} resumes {process!r} which is parked on "
                    f"{target!r}; entity state mutated outside the "
                    f"event queue",
                )

    # ------------------------------------------------------------------
    def _record(self, rule: str, time: float, message: str) -> None:
        if len(self.findings) >= self.max_findings:
            self._dropped += 1
            return
        self.findings.append(Finding(
            rule=rule, message=message, time=time,
        ))

    def report(self) -> LintReport:
        report = LintReport(
            findings=list(self.findings),
            rules_run=["sanitize-tie-order", "sanitize-foreign-resume",
                       "sanitize-negative-delay",
                       "sanitize-time-regression"],
            stats={
                "events_scheduled": self.events_scheduled,
                "events_processed": self.events_processed,
                "tie_groups": self.tie_groups,
                "max_tie_size": self.max_tie_size,
            },
        )
        if self._dropped:
            report.stats["findings_dropped"] = self._dropped
        return report
