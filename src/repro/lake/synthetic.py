"""Synthetic fast-profile runs: catalog-scale data without simulation.

Ingesting a catalog of 1000+ runs in a test or benchmark cannot afford
1000 full simulated executions.  :func:`synthetic_run` fabricates an
in-memory :class:`~repro.core.ingest.RunData` whose event stream
carries every record type the nine PERFRECUP views read — seeded, so
the same ``(seed, run_index)`` always yields the byte-identical run —
and :func:`synthetic_runs` produces a repetition series the way
``run_many`` would.

The generator exists for the data-lake test/benchmark tier
(``tests/lake/``, ``benchmarks/bench_catalog.py``); real workloads
register persisted run directories or live ``RunResult`` objects
instead.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..core.ingest import RunData

__all__ = ["synthetic_run", "synthetic_runs"]

_WORKERS = tuple(f"tcp://10.0.0.{n}:9000" for n in range(1, 9))
_HOSTS = tuple(f"nid{n:05d}" for n in range(1, 9))
_PREFIXES = ("read_parquet", "normalize", "train", "getitem", "stats")


def _provenance(workflow: str, run_index: int, seed: int,
                config: dict) -> dict:
    """The slice of the Fig.-1 document the catalog reads."""
    return {
        "run_index": run_index,
        "seed": seed,
        "layers": {
            "application": {
                "wms": {"config": dict(config)},
                "workflow": {"name": workflow, "scale": 0.05},
            },
        },
    }


def synthetic_run(workflow: str = "synthetic", n_tasks: int = 40,
                  run_index: int = 0, seed: int = 7,
                  config: Optional[dict] = None,
                  fault_kinds: Sequence[str] = ()) -> RunData:
    """One fabricated run with every event type the views consume."""
    rng = np.random.default_rng(
        np.random.SeedSequence((seed, run_index, len(workflow))))
    config = config if config is not None else {"profile": "fast"}
    events: list[dict] = []
    logs: list[dict] = []
    clock = 0.0
    for i in range(n_tasks):
        prefix = _PREFIXES[i % len(_PREFIXES)]
        key = f"{prefix}-{run_index:02d}{i:06d}"
        group = f"{prefix}-{run_index:02d}"
        worker = _WORKERS[i % len(_WORKERS)]
        hostname = _HOSTS[i % len(_HOSTS)]
        deps = ([f"{_PREFIXES[(i - 1) % len(_PREFIXES)]}"
                 f"-{run_index:02d}{i - 1:06d}"] if i else [])
        events.append({
            "type": "task_added", "key": key, "group": group,
            "prefix": prefix, "deps": deps, "graph_index": 0,
            "timestamp": clock,
        })
        duration = float(rng.uniform(0.05, 0.6)) * (1 + i % 3)
        start = clock + float(rng.uniform(0.0, 0.05))
        events.append({
            "type": "transition", "key": key, "group": group,
            "prefix": prefix, "start_state": "waiting",
            "finish_state": "processing", "timestamp": start,
            "stimulus": "ready", "worker": worker,
            "source": "scheduler",
        })
        events.append({
            "type": "task_run", "key": key, "group": group,
            "prefix": prefix, "worker": worker, "hostname": hostname,
            "thread_id": 1000 + (i % 4), "start": start,
            "stop": start + duration,
            "output_nbytes": int(rng.integers(1024, 1 << 20)),
            "graph_index": 0, "compute_time": duration * 0.8,
            "io_time": duration * 0.2,
            "n_reads": int(rng.integers(0, 4)),
            "n_writes": int(rng.integers(0, 2)),
        })
        if i and i % 4 == 0:
            events.append({
                "type": "communication", "key": key,
                "src_worker": _WORKERS[(i - 1) % len(_WORKERS)],
                "dst_worker": worker,
                "src_host": _HOSTS[(i - 1) % len(_HOSTS)],
                "dst_host": hostname,
                "nbytes": int(rng.integers(1024, 1 << 18)),
                "start": start, "stop": start + duration * 0.1,
                "same_node": False, "same_switch": True,
            })
        if i % 11 == 0:
            events.append({
                "type": "warning", "source": "worker",
                "hostname": hostname, "kind": "gc",
                "time": start, "duration": 0.01,
                "message": "gc pause",
            })
        logs.append({"source": "scheduler", "time": clock,
                     "level": "info", "message": f"submitted {key}"})
        clock = start + duration
    for offset, kind in enumerate(fault_kinds):
        events.append({
            "type": "fault", "fault_id": f"fault-{offset}",
            "kind": kind, "target": "0", "worker": _WORKERS[0],
            "hostname": _HOSTS[0], "timestamp": clock * 0.5 + offset,
            "duration": 1.0, "magnitude": 1.0,
        })
    events.sort(key=lambda e: e.get("timestamp", e.get("start", 0.0)))
    return RunData(
        events=events, darshan=None, logs=logs,
        provenance=_provenance(workflow, run_index, seed, config),
        job={"name": workflow}, run_index=run_index,
    )


def synthetic_runs(n_runs: int, workflow: str = "synthetic",
                   n_tasks: int = 40, seed: int = 7,
                   config: Optional[dict] = None) -> list[RunData]:
    """A seeded repetition series, one run per run_index."""
    return [synthetic_run(workflow=workflow, n_tasks=n_tasks,
                          run_index=index, seed=seed, config=config)
            for index in range(n_runs)]
