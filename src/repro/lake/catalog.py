"""The run catalog: multi-run, multi-workflow, query-at-scale.

:class:`Catalog` is the provenance data lake's one entry point — the
same object answers in-process calls (``Catalog.open(root).query``),
backs the ``perfrecup serve`` daemon (which is a thin HTTP shell over
:meth:`Catalog.query_json`), and resolves ``lake://<root>/<run_id>``
URIs for :meth:`~repro.core.ingest.RunData.load`.

Design (see ``docs/data_lake.md``):

* runs are **registered** into ``(workflow, date)`` shards; each shard
  has an append-only manifest and one cached column block per run
  (:mod:`repro.lake.shards`), extracted from the event stream exactly
  once at ingest;
* **incremental ingest** — :meth:`ingest` walks a results tree and
  skips every directory the source map already knows without opening
  it;
* **queries prune before they parse** — workflow/date predicates prune
  by shard key, config-hash/fault/wall-time predicates via the
  secondary indexes (:mod:`repro.lake.indexes`); listing and
  variability queries are answered from manifests and blocks alone;
* per-run view queries go through a bounded, thread-safe LRU of
  :class:`~repro.core.session.AnalysisSession` objects
  (:mod:`repro.lake.cache`), so concurrent clients share parsed runs
  and memory stays capped.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Optional
from urllib.parse import parse_qs, urlsplit

import numpy as np

from ..core.ingest import RunData
from ..core.phases import PhaseBreakdown
from ..core.session import AnalysisSession
from ..core.variability import phase_variability, summarize_metric
from ..core.views import VIEW_NAMES
from .cache import DEFAULT_MAX_EVENTS, DEFAULT_MAX_SESSIONS, SessionCache
from .indexes import DEFAULT_WALL_BUCKET_S, SecondaryIndexes
from .manifest import (
    RunEntry,
    ShardManifest,
    atomic_write_json,
    read_json,
)
from .shards import (
    block_path,
    build_block,
    events_path,
    manifest_path,
    read_block,
    read_rundata,
    shard_dir,
    write_rundata,
)

__all__ = ["Catalog", "LakeQueryError", "parse_lake_uri", "resolve_uri",
           "config_hash_of", "CATALOG_VERSION", "DEFAULT_DATE"]

CATALOG_VERSION = 1

#: Partition date used when neither the caller nor the run supplies
#: one.  Simulated runs have no wall-clock date; real deployments pass
#: ``date="2026-08-08"``-style labels at registration.
DEFAULT_DATE = "undated"


class LakeQueryError(Exception):
    """A query the catalog cannot answer (bad route, unknown run...).

    ``status`` follows HTTP semantics so the serve daemon can map it
    directly; in-process callers see it as a normal exception.
    """

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = int(status)
        self.message = message


def config_hash_of(config: dict) -> str:
    """Deterministic short hash of a WMS configuration document."""
    canonical = json.dumps(config or {}, sort_keys=True, default=str)
    return hashlib.blake2b(canonical.encode("utf-8"),
                           digest_size=6).hexdigest()


def parse_lake_uri(uri: str) -> tuple[str, str]:
    """Split ``lake://<root>/<run_id>`` into ``(root, run_id)``."""
    if not isinstance(uri, str) or not uri.startswith("lake://"):
        raise ValueError(f"not a lake URI: {uri!r}")
    rest = uri[len("lake://"):]
    root, sep, run_id = rest.rpartition("/")
    if not sep or not root or not run_id:
        raise ValueError(
            f"malformed lake URI {uri!r}; expected "
            f"lake://<catalog-root>/<run_id>")
    return root, run_id


def resolve_uri(uri: str) -> RunData:
    """The :class:`RunData` behind a ``lake://`` URI (load dispatcher)."""
    root, run_id = parse_lake_uri(uri)
    return Catalog.open(root).run_data(run_id)


def _jsonable(value):
    """Recursively coerce NumPy scalars/arrays for JSON encoding."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return [_jsonable(cell) for cell in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(cell) for cell in value]
    return value


class Catalog:
    """A sharded provenance run catalog rooted at one directory."""

    def __init__(self, root: str,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 max_cached_events: int = DEFAULT_MAX_EVENTS,
                 wall_bucket_s: float = DEFAULT_WALL_BUCKET_S):
        self.root = os.path.abspath(os.fspath(root))
        self._lock = threading.RLock()
        self._manifests: dict[tuple[str, str], ShardManifest] = {}
        self._blocks: dict[str, dict] = {}
        self._dirty_shards: set[tuple[str, str]] = set()
        self.sessions = SessionCache(max_sessions=max_sessions,
                                     max_events=max_cached_events)
        #: Shards whose manifest was actually opened since
        #: construction — the observable that pruning is working.
        self.manifests_opened = 0

        meta_path = self._meta_path()
        if os.path.exists(meta_path):
            meta = read_json(meta_path)
            version = meta.get("version")
            if version != CATALOG_VERSION:
                raise ValueError(
                    f"unsupported catalog version {version!r} at "
                    f"{self.root} (this build reads "
                    f"version {CATALOG_VERSION})")
            self._seq = int(meta.get("seq", 0))
            wall_bucket_s = float(meta.get("wall_bucket_s",
                                           wall_bucket_s))
        else:
            self._seq = 0
        index_path = self._index_path()
        if os.path.exists(index_path):
            self.indexes = SecondaryIndexes.load(index_path)
        else:
            self.indexes = SecondaryIndexes(wall_bucket_s=wall_bucket_s)

    @classmethod
    def open(cls, root, **knobs) -> "Catalog":
        """Open (creating on first use) the catalog rooted at ``root``."""
        catalog = cls(root, **knobs)
        os.makedirs(catalog.root, exist_ok=True)
        return catalog

    # -- paths -------------------------------------------------------------
    def _meta_path(self) -> str:
        return os.path.join(self.root, "catalog.json")

    def _index_path(self) -> str:
        return os.path.join(self.root, "indexes.json")

    def uri(self, run_id: str) -> str:
        """The ``lake://`` URI of one registered run."""
        return f"lake://{self.root}/{run_id}"

    # -- shard access ------------------------------------------------------
    def _shard(self, workflow: str, date: str,
               create: bool = False) -> Optional[ShardManifest]:
        key = (workflow, date)
        with self._lock:
            manifest = self._manifests.get(key)
            if manifest is not None:
                return manifest
            path = manifest_path(shard_dir(self.root, workflow, date))
            if os.path.exists(path):
                manifest = ShardManifest.load(path)
                self.manifests_opened += 1
            elif create:
                manifest = ShardManifest(workflow=workflow, date=date)
            else:
                return None
            self._manifests[key] = manifest
            return manifest

    def shard_keys(self) -> list[tuple[str, str]]:
        """Every ``(workflow, date)`` partition, from the indexes."""
        keys = {tuple(shard) for shard in
                self.indexes.run_shards.values()}
        return sorted(keys)

    def _discover_shard_keys(self) -> list[tuple[str, str]]:
        """Shard keys by filesystem walk (manifest files are truth)."""
        keys = set(self._manifests)
        shards_root = os.path.join(self.root, "shards")
        if os.path.isdir(shards_root):
            for dirpath, _dirnames, filenames in os.walk(shards_root):
                if "manifest.json" in filenames:
                    document = read_json(
                        os.path.join(dirpath, "manifest.json"))
                    keys.add((document["workflow"], document["date"]))
        return sorted(keys)

    def rebuild_indexes(self) -> SecondaryIndexes:
        """Recompute ``indexes.json`` from the shard manifests.

        The indexes are derived state; this is the recovery path for a
        lost or corrupted index file.
        """
        entries: list[RunEntry] = []
        for key in self._discover_shard_keys():
            manifest = self._shard(*key)
            if manifest is not None:
                entries.extend(manifest.entries)
        entries.sort(key=lambda e: e.seq)
        with self._lock:
            self.indexes.rebuild(entries)
            self.indexes.save(self._index_path())
        return self.indexes

    # -- registration / ingest --------------------------------------------
    def register(self, source, *, workflow: Optional[str] = None,
                 date: Optional[str] = None,
                 run_id: Optional[str] = None) -> RunEntry:
        """Register one run (a directory path, ``RunResult``, or
        in-memory ``RunData``); returns its catalog entry.

        Registration parses the event stream exactly once — building
        the on-disk column block and the index rows — and primes the
        session cache with the parsed run.  Re-registering a run the
        catalog already knows (same source path, or same explicit
        ``run_id``) is a no-op returning the existing entry.
        """
        entry = self._register_unflushed(source, workflow=workflow,
                                         date=date, run_id=run_id)
        self.flush()
        return entry

    def _register_unflushed(self, source, *, workflow=None, date=None,
                            run_id=None) -> RunEntry:
        path: Optional[str] = None
        data: Optional[RunData] = None
        if isinstance(source, (str, os.PathLike)) \
                and not str(source).startswith("lake://"):
            path = os.path.abspath(os.fspath(source))
        elif isinstance(source, RunData):
            data = source
        else:
            inner = getattr(source, "data", None)
            if isinstance(inner, RunData):
                data = inner
                run_dir = getattr(source, "run_dir", None)
                path = os.path.abspath(run_dir) if run_dir else None
            else:
                raise TypeError(
                    f"cannot register {type(source).__name__!r}; "
                    f"expected a run-directory path, RunData, or "
                    f"RunResult")

        with self._lock:
            if path is not None and path in self.indexes.sources:
                return self.entry(self.indexes.sources[path])
            if run_id is not None and run_id in self.indexes.run_shards:
                return self.entry(run_id)

        if data is None:
            data = RunData.load(path)
        session = AnalysisSession.of(data)
        block = build_block(session)

        provenance = data.provenance or {}
        application = provenance.get("layers", {}).get("application", {})
        if workflow is None:
            workflow = (application.get("workflow") or {}).get("name") \
                or (data.job or {}).get("name") or "unknown"
        workflow = str(workflow).lower()
        if date is None:
            date = str(provenance.get("date", DEFAULT_DATE))
        run_index = int(provenance.get("run_index", data.run_index))
        seed = int(provenance.get("seed", 0))
        config = (application.get("wms") or {}).get("config", {})
        fault_kinds = sorted({str(e.get("kind"))
                              for e in data.store.records("fault")})
        fault_signature = "+".join(fault_kinds) if fault_kinds else "none"

        config_hash = config_hash_of(config)
        if run_id is None:
            run_id = self._default_run_id(
                workflow, date, seed, run_index, config_hash,
                len(data.events), float(data.wall_time))

        with self._lock:
            if run_id in self.indexes.run_shards:
                # Idempotent re-registration: the content-derived id
                # already exists, so this run is already catalogued.
                return self.entry(run_id)
            shard = shard_dir(self.root, workflow, date)
            source = path
            if source is None and data.darshan is None:
                # Make in-memory registrations durable: persist the
                # event payload into the shard so the run's full views
                # stay queryable after the session cache evicts it.
                source = events_path(shard, run_id)
            entry = RunEntry(
                run_id=run_id, workflow=workflow, date=date,
                seq=self._seq, run_index=run_index, seed=seed,
                config_hash=config_hash,
                fault_signature=fault_signature,
                wall_time=float(data.wall_time),
                n_events=len(data.events),
                n_tasks=int(block["counts"]["tasks"]),
                source=source,
            )
            self._seq += 1
            manifest = self._shard(workflow, date, create=True)
            manifest.append(entry)
            self.indexes.add(entry)
            self._blocks[run_id] = block
            self._dirty_shards.add((workflow, date))
        if source is not None and source == events_path(shard, run_id):
            write_rundata(source, data)
        atomic_write_json(block_path(shard, run_id), block)
        self.sessions.get(run_id, lambda: session)
        return entry

    @staticmethod
    def _default_run_id(workflow: str, date: str, seed: int,
                        run_index: int, config_hash: str,
                        n_events: int, wall_time: float) -> str:
        """Deterministic, content-derived id for unnamed registrations.

        The fingerprint suffix makes re-registering the identical run
        a no-op while distinct runs sharing ``(seed, run_index)``
        (e.g. different configs) still get distinct ids.
        """
        fingerprint = hashlib.blake2b(
            repr((workflow, date, seed, run_index, config_hash,
                  n_events, wall_time)).encode("utf-8"),
            digest_size=4).hexdigest()
        return (f"{workflow}-{date}-s{seed}-r{run_index:04d}"
                f"-{fingerprint}")

    def ingest(self, runs_root, *, date: Optional[str] = None,
               workers: Optional[int] = None) -> list[RunEntry]:
        """Register every new run directory under ``runs_root``.

        A run directory is any directory containing ``provenance.json``
        (the layout ``InstrumentedRun.persist`` writes).  Directories
        already in the source map are skipped without being opened —
        the incremental half of the ingest contract.  With
        ``workers > 1`` the per-run parsing fans out over threads;
        manifest appends stay ordered by path for determinism.
        """
        runs_root = os.path.abspath(os.fspath(runs_root))
        candidates: list[str] = []
        # followlinks: curated results trees are often symlink farms
        # pointing at per-experiment scratch dirs.  Run dirs don't
        # nest (dirnames.clear()), so link cycles can't recurse.
        for dirpath, dirnames, filenames in os.walk(runs_root,
                                                    followlinks=True):
            if "provenance.json" in filenames:
                candidates.append(dirpath)
                dirnames.clear()  # run dirs don't nest
        candidates.sort()
        with self._lock:
            new_dirs = [d for d in candidates
                        if d not in self.indexes.sources]

        if workers is not None and workers > 1 and len(new_dirs) > 1:
            # Parse (the expensive half) concurrently; register from
            # the already-loaded RunData in deterministic path order.
            with ThreadPoolExecutor(max_workers=workers) as pool:
                loaded = list(pool.map(RunData.load, new_dirs))
        else:
            loaded = [RunData.load(d) for d in new_dirs]

        entries = []
        for run_dir, data in zip(new_dirs, loaded):
            # Hand the parsed data through a RunResult-shaped shim so
            # the entry still records the directory as its source.
            entries.append(self._register_unflushed(
                _LoadedRun(data, run_dir), date=date))
        if entries:
            self.flush()
        return entries

    def flush(self) -> None:
        """Persist dirty manifests, the indexes, and catalog metadata."""
        with self._lock:
            for workflow, date in sorted(self._dirty_shards):
                shard = shard_dir(self.root, workflow, date)
                self._manifests[(workflow, date)].save(
                    manifest_path(shard))
            self._dirty_shards = set()
            self.indexes.save(self._index_path())
            atomic_write_json(self._meta_path(), {
                "version": CATALOG_VERSION,
                "seq": self._seq,
                "wall_bucket_s": self.indexes.wall_bucket_s,
            })

    # -- queries -----------------------------------------------------------
    def query(self, workflow: Optional[str] = None,
              date: Optional[str] = None,
              config_hash: Optional[str] = None,
              fault: Optional[str] = None,
              min_wall: Optional[float] = None,
              max_wall: Optional[float] = None,
              prune: bool = True) -> list[RunEntry]:
        """Entries matching every given predicate, in catalog order.

        With ``prune=True`` (the default) the shard keys and secondary
        indexes narrow which manifests are opened before any entry is
        inspected; ``prune=False`` forces the full scan — same answer,
        kept as the correctness oracle for the pruning tests.
        """
        if prune:
            keys = self.shard_keys()
            if workflow is not None:
                keys = [k for k in keys if k[0] == workflow]
            if date is not None:
                keys = [k for k in keys if k[1] == date]
            candidates = self.indexes.candidate_ids(
                config_hash=config_hash, fault=fault,
                min_wall=min_wall, max_wall=max_wall)
            if candidates is not None:
                allowed = self.indexes.shard_keys_of(candidates)
                keys = [k for k in keys if k in allowed]
        else:
            # Full scan: every shard found on disk, indexes untouched.
            # Same answer as the pruned path — the oracle the pruning
            # tests compare against.
            keys = self._discover_shard_keys()

        matched: list[RunEntry] = []
        for key in keys:
            manifest = self._shard(*key)
            if manifest is None:
                continue
            for entry in manifest.entries:
                if workflow is not None and entry.workflow != workflow:
                    continue
                if date is not None and entry.date != date:
                    continue
                if config_hash is not None \
                        and entry.config_hash != config_hash:
                    continue
                if fault is not None \
                        and entry.fault_signature != fault:
                    continue
                if min_wall is not None and entry.wall_time < min_wall:
                    continue
                if max_wall is not None and entry.wall_time > max_wall:
                    continue
                matched.append(entry)
        matched.sort(key=lambda e: e.seq)
        return matched

    def entry(self, run_id: str) -> RunEntry:
        """The catalog entry of one run (raises ``LakeQueryError``)."""
        shard = self.indexes.run_shards.get(run_id)
        if shard is None:
            raise LakeQueryError(404, f"unknown run {run_id!r}")
        manifest = self._shard(shard[0], shard[1])
        entry = manifest.get(run_id) if manifest is not None else None
        if entry is None:
            raise LakeQueryError(
                404, f"run {run_id!r} indexed but missing from shard "
                     f"({shard[0]!r}, {shard[1]!r})")
        return entry

    def block(self, run_id: str) -> dict:
        """The cached column block of one run (memoized in memory)."""
        with self._lock:
            block = self._blocks.get(run_id)
            if block is not None:
                return block
        entry = self.entry(run_id)
        block = read_block(block_path(
            shard_dir(self.root, entry.workflow, entry.date), run_id))
        with self._lock:
            self._blocks[run_id] = block
        return block

    def run_data(self, run_id: str) -> RunData:
        """The full :class:`RunData` of one run (cache, then source)."""
        return self.session(run_id).run

    def session(self, run_id: str) -> AnalysisSession:
        """The (LRU-cached) analysis session of one run."""
        entry = self.entry(run_id)

        def load() -> AnalysisSession:
            if entry.source is None:
                raise LakeQueryError(
                    410, f"run {run_id!r} was registered in-memory "
                         f"without a durable payload and has been "
                         f"evicted; persist the run directory and "
                         f"re-ingest it")
            if os.path.isfile(entry.source):
                return AnalysisSession.of(read_rundata(entry.source))
            return AnalysisSession.of(entry.source)

        return self.sessions.get(run_id, load)

    # -- documents (the JSON-over-HTTP surface) ----------------------------
    def runs_document(self, **predicates) -> dict:
        entries = self.query(**predicates)
        return {
            "n_runs": len(entries),
            "runs": [entry.as_dict() for entry in entries],
        }

    def run_document(self, run_id: str) -> dict:
        entry = self.entry(run_id)
        return {
            "run": entry.as_dict(),
            "uri": self.uri(run_id),
            "block": self.block(run_id),
            "views": list(VIEW_NAMES),
        }

    def view_document(self, run_id: str, name: str) -> dict:
        if name not in VIEW_NAMES:
            raise LakeQueryError(
                404, f"unknown view {name!r}; have {list(VIEW_NAMES)}")
        table = self.session(run_id).view(name)
        return {
            "run_id": run_id,
            "view": name,
            "n_rows": len(table),
            "columns": list(table.column_names),
            "records": _jsonable(table.to_records()),
        }

    def variability_document(self, **predicates) -> dict:
        """Cross-run variability report, answered from column blocks.

        Numerically identical to
        :func:`repro.core.variability.variability_report` over the
        same runs: the blocks store the exact per-run floats the live
        path aggregates.
        """
        entries = self.query(**predicates)
        if not entries:
            raise LakeQueryError(
                404, "no runs match the given predicates")
        blocks = [self.block(entry.run_id) for entry in entries]
        breakdowns = [PhaseBreakdown(**b["phases"]) for b in blocks]
        stats = phase_variability(breakdowns)
        per_prefix: dict[str, list[float]] = {}
        for block in blocks:
            for prefix, total in block["prefix_durations"].items():
                per_prefix.setdefault(prefix, []).append(total)
        by_prefix = []
        for prefix, totals in per_prefix.items():
            s = summarize_metric(prefix, totals)
            by_prefix.append({
                "prefix": prefix, "n_runs": s.n,
                "mean_total_duration": s.mean,
                "std_total_duration": s.std, "cv": s.cv,
            })
        by_prefix.sort(key=lambda row: (-row["cv"], row["prefix"]))
        walls = [entry.wall_time for entry in entries]
        return {
            "n_runs": len(entries),
            "runs": [entry.run_id for entry in entries],
            "phases": {
                phase: stats[phase].as_dict()
                for phase in ("io", "communication", "computation",
                              "total")
            },
            "normalized": stats["normalized"],
            "normalized_err": stats["normalized_err"],
            "wall_time": summarize_metric("wall_time", walls).as_dict(),
            "by_prefix": by_prefix,
        }

    def stats_document(self) -> dict:
        with self._lock:
            n_shards = len(self.shard_keys())
            n_runs = len(self.indexes.run_shards)
        return {
            "root": self.root,
            "n_runs": n_runs,
            "n_shards": n_shards,
            "manifests_opened": self.manifests_opened,
            "session_cache": self.sessions.stats(),
            "wall_bucket_s": self.indexes.wall_bucket_s,
        }

    # -- the unified query surface ----------------------------------------
    def handle_query(self, path: str, params: dict) -> dict:
        """Route one query to its document builder.

        ``path`` is an HTTP-style route (``/runs``,
        ``/runs/<id>``, ``/runs/<id>/views/<name>``,
        ``/reports/variability``, ``/stats``); ``params`` maps
        predicate names to string values.  The serve daemon and the
        in-process ``perfrecup query`` path both land here, so their
        answers cannot diverge.
        """
        segments = [s for s in path.split("/") if s]
        predicates = self._predicates(params)
        if segments == ["runs"]:
            return self.runs_document(**predicates)
        if len(segments) == 2 and segments[0] == "runs":
            return self.run_document(segments[1])
        if len(segments) == 4 and segments[0] == "runs" \
                and segments[2] == "views":
            return self.view_document(segments[1], segments[3])
        if segments == ["reports", "variability"]:
            return self.variability_document(**predicates)
        if segments == ["stats"]:
            return self.stats_document()
        raise LakeQueryError(
            404, f"unknown query path {path!r}; routes: /runs, "
                 f"/runs/<id>, /runs/<id>/views/<name>, "
                 f"/reports/variability, /stats")

    @staticmethod
    def _predicates(params: dict) -> dict:
        """Decode string query parameters into query() keywords."""
        out: dict = {}
        for name in ("workflow", "date", "config_hash", "fault"):
            value = params.get(name)
            if isinstance(value, (list, tuple)):
                value = value[0] if value else None
            if value is not None:
                out[name] = str(value)
        for name in ("min_wall", "max_wall"):
            value = params.get(name)
            if isinstance(value, (list, tuple)):
                value = value[0] if value else None
            if value is not None:
                try:
                    out[name] = float(value)
                except ValueError:
                    raise LakeQueryError(
                        400, f"bad {name}={value!r}; expected a number"
                    ) from None
        unknown = set(params) - {"workflow", "date", "config_hash",
                                 "fault", "min_wall", "max_wall"}
        if unknown:
            raise LakeQueryError(
                400, f"unknown query parameter(s) "
                     f"{sorted(unknown)}; accepted: workflow, date, "
                     f"config_hash, fault, min_wall, max_wall")
        return out

    def query_json(self, target: str) -> bytes:
        """The canonical JSON payload for one query string.

        ``target`` is a path with optional query string, e.g.
        ``/runs?workflow=xgboost``.  Both the daemon and in-process
        clients return exactly these bytes, which is what the
        byte-identity tests assert.
        """
        parts = urlsplit(target)
        params = {name: values[0] if values else None
                  for name, values in parse_qs(
                      parts.query, keep_blank_values=True).items()}
        document = self.handle_query(parts.path, params)
        return (json.dumps(document, sort_keys=True,
                           separators=(",", ":")) + "\n").encode("utf-8")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Catalog {self.root} "
                f"runs={len(self.indexes.run_shards)}>")


class _LoadedRun:
    """RunResult-shaped shim: already-parsed data plus its directory."""

    def __init__(self, data: RunData, run_dir: str):
        self.data = data
        self.run_dir = run_dir
