"""Bounded, thread-safe LRU cache of :class:`AnalysisSession` objects.

The serve daemon (and any long-lived in-process :class:`Catalog`) must
answer per-run view queries for thousands of runs without holding
thousands of parsed event streams in memory.  :class:`SessionCache`
bounds that working set two ways:

* **count** — at most ``max_sessions`` live sessions, and
* **size** — the summed *cost* of cached sessions stays under
  ``max_events``, where a session's cost is the number of event/log
  records its run holds (the dominant memory term; the derived NumPy
  columns are proportional to it).

Eviction is least-recently-used on both triggers.  Loads are
single-flight: concurrent requests for the same run block on one
loader instead of parsing the run once per thread, while requests for
*different* runs proceed in parallel (the lock guards only dictionary
bookkeeping, never a load).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Optional

__all__ = ["SessionCache", "session_cost"]

#: Default capacity knobs (see docs/data_lake.md "capacity knobs").
DEFAULT_MAX_SESSIONS = 32
DEFAULT_MAX_EVENTS = 2_000_000


def session_cost(session) -> int:
    """Approximate memory cost of one session, in record units."""
    run = session.run
    return 1 + len(run.events) + len(run.logs) + len(run.metrics)


class SessionCache:
    """LRU of ``run_id -> AnalysisSession`` with count and size caps."""

    def __init__(self,
                 max_sessions: int = DEFAULT_MAX_SESSIONS,
                 max_events: int = DEFAULT_MAX_EVENTS):
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        if max_events < 1:
            raise ValueError("max_events must be at least 1")
        self.max_sessions = int(max_sessions)
        self.max_events = int(max_events)
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple] = OrderedDict()
        self._inflight: dict[str, threading.Event] = {}
        self._cost_total = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    # -- core --------------------------------------------------------------
    def get(self, run_id: str, loader: Callable[[], object]):
        """The cached session for ``run_id``, loading it on first use.

        ``loader`` runs at most once per concurrent miss burst
        (single-flight); every waiter receives the same session
        object.  A failed load propagates to the leader and releases
        the waiters to retry.
        """
        while True:
            with self._lock:
                entry = self._entries.get(run_id)
                if entry is not None:
                    self._entries.move_to_end(run_id)
                    self._hits += 1
                    return entry[0]
                gate = self._inflight.get(run_id)
                if gate is None:
                    gate = threading.Event()
                    self._inflight[run_id] = gate
                    break  # this thread is the loading leader
            gate.wait()
            # Loop: either the leader inserted the session (hit on the
            # next pass) or it failed (this thread becomes the leader).
        try:
            session = loader()
            cost = session_cost(session)
            with self._lock:
                self._misses += 1
                self._entries[run_id] = (session, cost)
                self._cost_total += cost
                self._evict_locked(keep=run_id)
            return session
        finally:
            with self._lock:
                del self._inflight[run_id]
                gate.set()

    def peek(self, run_id: str):
        """The cached session, or ``None`` — no load, no LRU touch."""
        with self._lock:
            entry = self._entries.get(run_id)
            return entry[0] if entry is not None else None

    def _evict_locked(self, keep: Optional[str] = None) -> None:
        """Drop LRU entries until both caps hold (``keep`` survives).

        An over-budget single entry is allowed to remain: the cache
        caps steady-state occupancy, it never refuses to serve a run.
        """
        while len(self._entries) > 1 and (
                len(self._entries) > self.max_sessions
                or self._cost_total > self.max_events):
            victim = next(iter(self._entries))
            if victim == keep:
                victim = next(iter(list(self._entries)[1:]))
            _, cost = self._entries.pop(victim)
            self._cost_total -= cost
            self._evictions += 1

    # -- introspection -----------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        """Occupancy and hit-rate counters (all monotonic but resets)."""
        with self._lock:
            lookups = self._hits + self._misses
            return {
                "sessions": len(self._entries),
                "max_sessions": self.max_sessions,
                "events_cost": self._cost_total,
                "max_events": self.max_events,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "hit_rate": (self._hits / lookups) if lookups else 0.0,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._cost_total = 0
