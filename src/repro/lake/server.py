"""``perfrecup serve``: the long-lived analysis daemon.

A deliberately thin shell: every request is routed through
:meth:`Catalog.query_json`, the same function in-process callers use,
so the daemon cannot drift from the library — the byte payload a
client receives over HTTP is identical to the bytes
``Catalog.open(root).query_json(target)`` returns locally (asserted by
the end-to-end tests and ``bench_catalog.py``).

Concurrency comes from :class:`ThreadingHTTPServer` (one thread per
in-flight request, daemonized) on top of the catalog's own thread
safety: the session LRU is lock-guarded with single-flight loads, so
``N`` clients asking for the same cold run trigger one parse, and
memory stays bounded by the cache caps whatever the client count.

Routes (all ``GET``, all ``application/json``)::

    /runs?workflow=&date=&config_hash=&fault=&min_wall=&max_wall=
    /runs/<run_id>
    /runs/<run_id>/views/<task|io|comm|...>
    /reports/variability?workflow=...      (same predicates as /runs)
    /stats
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.error import HTTPError
from urllib.request import urlopen

from .catalog import Catalog, LakeQueryError

__all__ = ["LakeServer", "serve", "http_query", "DEFAULT_HOST"]

DEFAULT_HOST = "127.0.0.1"


class _LakeRequestHandler(BaseHTTPRequestHandler):
    """GET-only JSON handler delegating to the owning catalog."""

    server_version = "perfrecup-lake/1"
    protocol_version = "HTTP/1.1"

    def do_GET(self):  # noqa: N802 - http.server API
        try:
            payload = self.server.catalog.query_json(self.path)
            status = 200
        except LakeQueryError as exc:
            payload = (json.dumps(
                {"error": exc.message, "status": exc.status},
                sort_keys=True, separators=(",", ":")) + "\n"
            ).encode("utf-8")
            status = exc.status
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format, *args):  # noqa: A002
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class LakeServer(ThreadingHTTPServer):
    """A bound (not yet serving) query daemon over one catalog."""

    daemon_threads = True

    def __init__(self, catalog: Catalog, host: str = DEFAULT_HOST,
                 port: int = 0, verbose: bool = False):
        super().__init__((host, port), _LakeRequestHandler)
        self.catalog = catalog
        self.verbose = verbose

    @property
    def address(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"


def serve(catalog: Catalog, host: str = DEFAULT_HOST, port: int = 0,
          verbose: bool = False) -> LakeServer:
    """Bind a daemon for ``catalog``; caller drives ``serve_forever``.

    ``port=0`` binds an ephemeral port (read it back from
    ``server.address``) — the pattern the tests and benchmark use.
    """
    return LakeServer(catalog, host=host, port=port, verbose=verbose)


def http_query(base_url: str, target: str,
               timeout: float = 30.0) -> bytes:
    """Fetch one query payload from a running daemon.

    ``target`` is the same path-with-query string
    :meth:`Catalog.query_json` accepts (e.g. ``/runs?workflow=x``).
    Query errors come back as :class:`~repro.lake.catalog.LakeQueryError`
    with the daemon's status and message, mirroring the in-process
    behaviour.
    """
    if not target.startswith("/"):
        target = "/" + target
    url = base_url.rstrip("/") + target
    try:
        with urlopen(url, timeout=timeout) as response:
            return response.read()
    except HTTPError as exc:
        body = exc.read()
        try:
            message = json.loads(body.decode("utf-8"))["error"]
        except Exception:
            message = body.decode("utf-8", "replace").strip() \
                or exc.reason
        raise LakeQueryError(exc.code, message) from None
