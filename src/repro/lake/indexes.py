"""Cross-run secondary indexes: predicate → shard pruning.

The primary partitioning (``workflow``/``date``) prunes shards by key
alone.  Everything else a query can filter on — configuration hash,
fault signature, wall-time bucket — is covered by the secondary
indexes here, which map predicate values to run ids and run ids back
to their shard.  A query therefore opens only the manifests of shards
that can possibly contribute a match, and never parses any event
stream.

The index file also carries the **source map** (absolute run-directory
path → run id) that makes directory ingest incremental: a second
``Catalog.ingest`` over the same results tree skips every
already-registered directory without reading a byte of it.

Indexes are derived state: they can always be rebuilt from the shard
manifests (:meth:`SecondaryIndexes.rebuild`), so a corrupted or
missing ``indexes.json`` degrades to a rebuild, never to data loss.
"""

from __future__ import annotations

import math
import os
from typing import Iterable, Optional

from .manifest import RunEntry, atomic_write_json, read_json

__all__ = ["SecondaryIndexes", "wall_bucket", "INDEX_VERSION"]

INDEX_VERSION = 1

#: Default wall-time bucket width (seconds) for the coarse runtime
#: index; override per catalog via ``Catalog.open(wall_bucket_s=...)``.
DEFAULT_WALL_BUCKET_S = 60.0


def wall_bucket(wall_time: float, width: float) -> int:
    """The coarse runtime bucket a wall time falls into."""
    if width <= 0:
        raise ValueError(f"wall bucket width must be positive, "
                         f"got {width!r}")
    return int(math.floor(float(wall_time) / width))


class SecondaryIndexes:
    """In-memory mirror of ``indexes.json``; updated on every append."""

    def __init__(self, wall_bucket_s: float = DEFAULT_WALL_BUCKET_S):
        self.wall_bucket_s = float(wall_bucket_s)
        self.by_workflow: dict[str, list[str]] = {}
        self.by_config: dict[str, list[str]] = {}
        self.by_fault: dict[str, list[str]] = {}
        self.by_wall_bucket: dict[str, list[str]] = {}
        #: run_id -> [workflow, date] (its shard key).
        self.run_shards: dict[str, list[str]] = {}
        #: absolute source path -> run_id (the incremental-ingest map).
        self.sources: dict[str, str] = {}

    # -- mutation ----------------------------------------------------------
    def add(self, entry: RunEntry) -> None:
        if entry.run_id in self.run_shards:
            raise ValueError(f"run {entry.run_id!r} already indexed")
        self.by_workflow.setdefault(entry.workflow, []) \
            .append(entry.run_id)
        self.by_config.setdefault(entry.config_hash, []) \
            .append(entry.run_id)
        self.by_fault.setdefault(entry.fault_signature, []) \
            .append(entry.run_id)
        bucket = wall_bucket(entry.wall_time, self.wall_bucket_s)
        self.by_wall_bucket.setdefault(str(bucket), []) \
            .append(entry.run_id)
        self.run_shards[entry.run_id] = [entry.workflow, entry.date]
        if entry.source:
            self.sources[os.path.abspath(entry.source)] = entry.run_id

    def rebuild(self, entries: Iterable[RunEntry]) -> "SecondaryIndexes":
        """Recompute every index from scratch (derived-state recovery)."""
        fresh = SecondaryIndexes(wall_bucket_s=self.wall_bucket_s)
        for entry in entries:
            fresh.add(entry)
        self.__dict__.update(fresh.__dict__)
        return self

    # -- pruning -----------------------------------------------------------
    def candidate_ids(self, config_hash: Optional[str] = None,
                      fault: Optional[str] = None,
                      min_wall: Optional[float] = None,
                      max_wall: Optional[float] = None
                      ) -> Optional[set[str]]:
        """Run ids that can possibly match the secondary predicates.

        Returns ``None`` when no secondary predicate was given (i.e.
        nothing to prune on beyond the shard key).  The wall-time
        bounds prune at bucket granularity — a superset of the exact
        answer, which the query layer then filters precisely.
        """
        sets: list[set[str]] = []
        if config_hash is not None:
            sets.append(set(self.by_config.get(config_hash, ())))
        if fault is not None:
            sets.append(set(self.by_fault.get(fault, ())))
        if min_wall is not None or max_wall is not None:
            lo = 0 if min_wall is None else \
                wall_bucket(min_wall, self.wall_bucket_s)
            buckets = sorted(int(b) for b in self.by_wall_bucket)
            hi = buckets[-1] if max_wall is None else \
                wall_bucket(max_wall, self.wall_bucket_s)
            matched: set[str] = set()
            for bucket in buckets:
                if lo <= bucket <= hi:
                    matched.update(self.by_wall_bucket[str(bucket)])
            sets.append(matched)
        if not sets:
            return None
        out = sets[0]
        for other in sets[1:]:
            out &= other
        return out

    def shard_keys_of(self, run_ids: Iterable[str]) -> set[tuple[str, str]]:
        keys: set[tuple[str, str]] = set()
        for run_id in run_ids:
            shard = self.run_shards.get(run_id)
            if shard is not None:
                keys.add((shard[0], shard[1]))
        return keys

    # -- persistence -------------------------------------------------------
    def to_document(self) -> dict:
        return {
            "version": INDEX_VERSION,
            "wall_bucket_s": self.wall_bucket_s,
            "by_workflow": self.by_workflow,
            "by_config": self.by_config,
            "by_fault": self.by_fault,
            "by_wall_bucket": self.by_wall_bucket,
            "run_shards": self.run_shards,
            "sources": self.sources,
        }

    @classmethod
    def from_document(cls, document: dict) -> "SecondaryIndexes":
        version = document.get("version")
        if version != INDEX_VERSION:
            raise ValueError(
                f"unsupported index version {version!r} "
                f"(this build reads version {INDEX_VERSION})")
        indexes = cls(wall_bucket_s=document.get(
            "wall_bucket_s", DEFAULT_WALL_BUCKET_S))
        for name in ("by_workflow", "by_config", "by_fault",
                     "by_wall_bucket", "run_shards", "sources"):
            setattr(indexes, name, dict(document.get(name, {})))
        return indexes

    def save(self, path: str) -> str:
        return atomic_write_json(path, self.to_document())

    @classmethod
    def load(cls, path: str) -> "SecondaryIndexes":
        return cls.from_document(read_json(path))
