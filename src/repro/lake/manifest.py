"""Shard manifests: the append-only bookkeeping of the run catalog.

A catalog partitions registered runs into **shards** keyed by
``(workflow, date)``; each shard directory carries one
``manifest.json`` listing its runs as :class:`RunEntry` records.  The
manifest is logically append-only: entries are immutable once written
and are never removed — re-ingesting a run the catalog already knows
is a no-op, and corrections happen by registering a new run, never by
rewriting history.  (The file itself is rewritten atomically on each
append; the *log* it encodes only ever grows, which is what keeps
incremental ingest and the cross-run indexes trivially consistent.)

Every entry carries the columns the query layer prunes on — workflow,
date, config hash, fault signature, wall time — so listing and
variability queries never touch the underlying event streams.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from typing import Optional

__all__ = ["RunEntry", "ShardManifest", "MANIFEST_VERSION",
           "atomic_write_json", "read_json"]

#: Manifest-format version, checked on load so a future layout change
#: can migrate instead of misparse.
MANIFEST_VERSION = 1


def atomic_write_json(path: str, document: dict) -> str:
    """Write ``document`` to ``path`` via a same-directory temp rename.

    Readers (including a live ``perfrecup serve`` daemon in another
    process) therefore always see either the previous complete file or
    the new complete file, never a torn write.
    """
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(document, fh, indent=1, sort_keys=True)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def read_json(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


@dataclass(frozen=True)
class RunEntry:
    """One registered run: the catalog's row about it.

    ``seq`` is the catalog-wide append sequence number — a logical
    clock (the catalog never consults a wall clock) that makes listing
    order deterministic and records ingest order durably.
    """

    run_id: str
    workflow: str
    date: str
    seq: int
    run_index: int = 0
    seed: int = 0
    config_hash: str = ""
    #: Sorted ``+``-joined fault kinds observed in the run's event
    #: stream (``"none"`` when the run saw no injected faults).
    fault_signature: str = "none"
    wall_time: float = 0.0
    n_events: int = 0
    n_tasks: int = 0
    #: Absolute run-directory path for persisted runs; ``None`` for
    #: runs registered from in-memory ``RunData`` (their events live
    #: only as long as the session cache keeps them).
    source: Optional[str] = None

    @property
    def shard_key(self) -> tuple[str, str]:
        return (self.workflow, self.date)

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, row: dict) -> "RunEntry":
        return cls(**row)


@dataclass
class ShardManifest:
    """The runs of one ``(workflow, date)`` shard, in append order."""

    workflow: str
    date: str
    entries: list = field(default_factory=list)

    def __post_init__(self):
        self._by_id = {entry.run_id: entry for entry in self.entries}

    # -- append-only mutation ---------------------------------------------
    def append(self, entry: RunEntry) -> RunEntry:
        """Add one run; duplicate run_ids are rejected, never replaced."""
        if entry.shard_key != (self.workflow, self.date):
            raise ValueError(
                f"entry {entry.run_id!r} belongs to shard "
                f"{entry.shard_key}, not ({self.workflow!r}, "
                f"{self.date!r})")
        if entry.run_id in self._by_id:
            raise ValueError(
                f"run {entry.run_id!r} already registered in shard "
                f"({self.workflow!r}, {self.date!r}); manifests are "
                f"append-only")
        self.entries.append(entry)
        self._by_id[entry.run_id] = entry
        return entry

    def get(self, run_id: str) -> Optional[RunEntry]:
        return self._by_id.get(run_id)

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, run_id: str) -> bool:
        return run_id in self._by_id

    # -- persistence -------------------------------------------------------
    def to_document(self) -> dict:
        return {
            "version": MANIFEST_VERSION,
            "workflow": self.workflow,
            "date": self.date,
            "entries": [entry.as_dict() for entry in self.entries],
        }

    @classmethod
    def from_document(cls, document: dict) -> "ShardManifest":
        version = document.get("version")
        if version != MANIFEST_VERSION:
            raise ValueError(
                f"unsupported manifest version {version!r} "
                f"(this build reads version {MANIFEST_VERSION})")
        return cls(
            workflow=document["workflow"],
            date=document["date"],
            entries=[RunEntry.from_dict(row)
                     for row in document["entries"]],
        )

    def save(self, path: str) -> str:
        return atomic_write_json(path, self.to_document())

    @classmethod
    def load(cls, path: str) -> "ShardManifest":
        return cls.from_document(read_json(path))
