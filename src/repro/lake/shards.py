"""Shard layout and per-run column blocks.

On disk a catalog root looks like::

    <root>/
        catalog.json                       # version, seq counter, knobs
        indexes.json                       # cross-run secondary indexes
        shards/<workflow>/<date>/
            manifest.json                  # RunEntry rows (append-only)
            blocks/<run_id>.json           # cached column block per run

A **column block** is the columnar digest extracted from a run's event
stream exactly once, at ingest: phase sums, per-prefix task-duration
totals, and counts.  Every cross-run query (listing, variability,
wall-time statistics) is answered from blocks alone — the event stream
is re-parsed only when a caller asks for a full per-run view, and
predicates prune shards before even the manifests of non-matching
partitions are opened.

Blocks store the *same floats* the live analysis computes: they are
produced by the same :class:`~repro.core.session.AnalysisSession`
builders (phase breakdown, task-view prefix grouping), so a report
assembled from blocks is numerically identical to one assembled from
freshly loaded runs.
"""

from __future__ import annotations

import os
import re

import numpy as np

from .manifest import atomic_write_json, read_json

__all__ = ["shard_dir", "manifest_path", "block_path", "build_block",
           "write_block", "read_block", "safe_name", "BLOCK_VERSION"]

BLOCK_VERSION = 1

_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def safe_name(name: str) -> str:
    """A filesystem-safe single path segment for a partition label."""
    cleaned = _UNSAFE.sub("_", str(name)).strip("._")
    return cleaned or "default"


def shard_dir(root: str, workflow: str, date: str) -> str:
    return os.path.join(root, "shards", safe_name(workflow),
                        safe_name(date))


def manifest_path(shard: str) -> str:
    return os.path.join(shard, "manifest.json")


def block_path(shard: str, run_id: str) -> str:
    return os.path.join(shard, "blocks", f"{safe_name(run_id)}.json")


def events_path(shard: str, run_id: str) -> str:
    return os.path.join(shard, "events",
                        f"{safe_name(run_id)}.run.json")


def build_block(session) -> dict:
    """The columnar digest of one run, parsed from its events once.

    ``session`` is an :class:`~repro.core.session.AnalysisSession`;
    using the session's own cached builders guarantees the stored
    numbers match what a live analysis of the same run would compute.
    """
    breakdown = session.phase_breakdown()
    tasks = session.task_view()
    prefix_durations: dict[str, float] = {}
    if len(tasks):
        for prefix, indices in tasks.group_indices("prefix").items():
            prefix_durations[str(prefix)] = float(
                np.sum(tasks["duration"][indices]))
    run = session.run
    return {
        "version": BLOCK_VERSION,
        "wall_time": float(run.wall_time),
        "phases": breakdown.as_dict(),
        "prefix_durations": prefix_durations,
        "counts": {
            "events": len(run.events),
            "tasks": len(tasks),
            "warnings": len(session.warning_view()),
            "logs": len(run.logs),
        },
    }


def write_block(path: str, block: dict) -> str:
    return atomic_write_json(path, block)


def read_block(path: str) -> dict:
    block = read_json(path)
    version = block.get("version")
    if version != BLOCK_VERSION:
        raise ValueError(
            f"unsupported column-block version {version!r} at {path} "
            f"(this build reads version {BLOCK_VERSION})")
    return block


def write_rundata(path: str, data) -> str:
    """Persist an in-memory :class:`RunData` into the shard.

    Used for runs registered without a run directory (live results,
    synthetic runs) so the daemon can still serve their full views
    after the session cache evicts them.  Only Darshan-free runs can
    round-trip this way — runs carrying a ``DarshanReport`` should be
    persisted through ``InstrumentedRun.persist`` and registered by
    directory instead.
    """
    if data.darshan is not None:
        raise ValueError(
            "cannot serialize a RunData with a DarshanReport; persist "
            "the run directory and register its path instead")
    return atomic_write_json(path, {
        "version": BLOCK_VERSION,
        "events": data.events,
        "logs": data.logs,
        "provenance": data.provenance,
        "job": data.job,
        "metrics": data.metrics,
        "run_index": data.run_index,
    })


def read_rundata(path: str):
    """Reload a :func:`write_rundata` file as a fresh ``RunData``."""
    from ..core.ingest import RunData
    document = read_json(path)
    return RunData(
        events=document["events"], darshan=None,
        logs=document["logs"], provenance=document["provenance"],
        job=document["job"], metrics=document.get("metrics", []),
        run_index=document.get("run_index", 0),
    )
