"""repro.lake — the provenance data lake.

Multi-run, multi-workflow, query-at-scale provenance management: a
sharded, append-only columnar **run catalog** over the analysis stack
(:class:`Catalog`), a bounded LRU **session cache**
(:class:`SessionCache`), and a long-lived **serve daemon**
(:class:`LakeServer` / :func:`serve`) whose HTTP answers are
byte-identical to the in-process query path.

The one front door::

    import repro
    catalog = repro.open_catalog("./lake")       # Catalog.open(root)
    catalog.ingest("./results")                  # incremental
    catalog.query(workflow="xgboost")            # pruned, no parsing
    catalog.variability_document(workflow="xgboost")
    session = repro.open_run(catalog.uri(run_id))  # lake:// URI

See ``docs/data_lake.md`` for the on-disk layout, the query API
reference, and the capacity knobs.
"""

from .cache import SessionCache, session_cost
from .catalog import (
    Catalog,
    LakeQueryError,
    config_hash_of,
    parse_lake_uri,
    resolve_uri,
)
from .indexes import SecondaryIndexes, wall_bucket
from .manifest import RunEntry, ShardManifest
from .server import LakeServer, http_query, serve
from .shards import build_block, read_block, safe_name
from .synthetic import synthetic_run, synthetic_runs

__all__ = [
    "Catalog",
    "LakeQueryError",
    "LakeServer",
    "RunEntry",
    "SecondaryIndexes",
    "SessionCache",
    "ShardManifest",
    "build_block",
    "config_hash_of",
    "http_query",
    "parse_lake_uri",
    "read_block",
    "resolve_uri",
    "safe_name",
    "serve",
    "session_cost",
    "synthetic_run",
    "synthetic_runs",
    "wall_bucket",
]
