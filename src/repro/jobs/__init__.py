"""Batch-job layer: job specs, allocation, scripts, and logs.

The provenance chart of the paper (Fig. 1) has a "system software and
job configurations" layer that records job scripts and logs "to provide
insight into the requested and allocated resources".  This package
provides that layer for the simulated machine: a PBS-like batch system
that assigns job IDs, simulates queue wait, allocates nodes through the
:class:`~repro.platform.Cluster`, and captures the job-level metadata
PERFRECUP ingests.
"""

from .jobspec import JobSpec
from .scheduler import BatchSystem, Job

__all__ = ["BatchSystem", "Job", "JobSpec"]
