"""Job specification: what the user asks the batch system for.

The paper's evaluation uses a fixed shape for every experiment —
"2 worker nodes, 4 workers per node, 8 threads per worker" (§IV-B) —
plus one extra node that hosts the Dask scheduler and the Mofka
servers.  :func:`JobSpec.paper_default` captures that configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["JobSpec"]


@dataclass(frozen=True)
class JobSpec:
    """Resource request + WMS layout for one workflow run."""

    name: str = "dask-workflow"
    worker_nodes: int = 2
    workers_per_node: int = 4
    threads_per_worker: int = 8
    #: Extra node hosting the Dask scheduler (and Mofka servers).
    scheduler_nodes: int = 1
    walltime_limit: float = 3600.0
    queue: str = "debug"
    project: str = "repro"
    #: Environment-module names, captured as system-software provenance.
    modules: tuple[str, ...] = (
        "PrgEnv-gnu", "cray-python/3.11", "cudatoolkit-standalone",
    )

    @property
    def total_nodes(self) -> int:
        return self.worker_nodes + self.scheduler_nodes

    @property
    def total_workers(self) -> int:
        return self.worker_nodes * self.workers_per_node

    @property
    def total_threads(self) -> int:
        return self.total_workers * self.threads_per_worker

    @classmethod
    def paper_default(cls, name: str = "dask-workflow") -> "JobSpec":
        """The §IV-B configuration: 2×4 workers × 8 threads."""
        return cls(name=name, worker_nodes=2, workers_per_node=4,
                   threads_per_worker=8)

    def render_script(self) -> str:
        """A PBS-style job script, stored verbatim as provenance."""
        lines = [
            "#!/bin/bash",
            f"#PBS -N {self.name}",
            f"#PBS -l select={self.total_nodes}:system=polaris",
            f"#PBS -l walltime={int(self.walltime_limit) // 3600:02d}:"
            f"{int(self.walltime_limit) % 3600 // 60:02d}:00",
            f"#PBS -q {self.queue}",
            f"#PBS -A {self.project}",
            "",
        ]
        lines += [f"module load {m}" for m in self.modules]
        lines += [
            "",
            "dask scheduler --scheduler-file cluster.info &",
            f"mpiexec -n {self.total_workers} -ppn {self.workers_per_node} \\",
            f"    dask worker --nthreads {self.threads_per_worker} "
            "--scheduler-file cluster.info &",
            f"python {self.name}.py",
        ]
        return "\n".join(lines) + "\n"

    def describe(self) -> dict:
        """Metadata record for the provenance job layer (Fig. 1)."""
        return {
            "name": self.name,
            "worker_nodes": self.worker_nodes,
            "workers_per_node": self.workers_per_node,
            "threads_per_worker": self.threads_per_worker,
            "scheduler_nodes": self.scheduler_nodes,
            "total_nodes": self.total_nodes,
            "walltime_limit": self.walltime_limit,
            "queue": self.queue,
            "project": self.project,
            "modules": list(self.modules),
        }
