"""A minimal PBS-like batch system over the simulated cluster.

Jobs are submitted, wait a (seeded, variable) queue time, and are then
granted a random set of free nodes.  Both effects — *when* a job starts
and *where* it lands — feed the placement variability the paper lists
among the sources of irreproducible performance (§V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..platform import Cluster, Node
from ..sim import Environment, RandomStreams
from .jobspec import JobSpec

__all__ = ["Job", "BatchSystem"]


@dataclass
class Job:
    """A granted allocation plus its captured provenance."""

    job_id: str
    spec: JobSpec
    nodes: list[Node]
    submit_time: float
    start_time: float
    end_time: Optional[float] = None
    log: list[tuple[float, str]] = field(default_factory=list)

    @property
    def scheduler_node(self) -> Node:
        """First node hosts the Dask scheduler (and Mofka servers)."""
        return self.nodes[0]

    @property
    def worker_nodes(self) -> list[Node]:
        return self.nodes[self.spec.scheduler_nodes:]

    def record(self, now: float, message: str) -> None:
        self.log.append((now, message))

    def describe(self) -> dict:
        """Metadata record for the provenance job layer (Fig. 1)."""
        return {
            "job_id": self.job_id,
            "spec": self.spec.describe(),
            "script": self.spec.render_script(),
            "nodes": [n.name for n in self.nodes],
            "switches": sorted({n.switch for n in self.nodes}),
            "submit_time": self.submit_time,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "log": [{"time": t, "message": m} for t, m in self.log],
        }


class BatchSystem:
    """Submits :class:`JobSpec` requests against a :class:`Cluster`."""

    def __init__(self, env: Environment, cluster: Cluster,
                 streams: RandomStreams | None = None,
                 mean_queue_wait: float = 0.0):
        self.env = env
        self.cluster = cluster
        self.streams = streams or cluster.streams
        self.mean_queue_wait = mean_queue_wait
        self._counter = 0
        self.jobs: list[Job] = []

    def submit(self, spec: JobSpec):
        """Simulation process: queue, then allocate. Returns the Job."""
        self._counter += 1
        job_id = f"{1000000 + self._counter}.polaris-sim"
        submit_time = self.env.now
        if self.mean_queue_wait > 0:
            wait = self.streams.exponential(f"queue.{job_id}", self.mean_queue_wait)
            yield self.env.timeout(wait)
        else:
            yield self.env.timeout(0.0)
        nodes = self.cluster.allocate(spec.total_nodes, job_name=job_id)
        job = Job(
            job_id=job_id,
            spec=spec,
            nodes=nodes,
            submit_time=submit_time,
            start_time=self.env.now,
        )
        job.record(self.env.now, f"job {job_id} started on "
                                 f"{','.join(n.name for n in nodes)}")
        self.jobs.append(job)
        return job

    def complete(self, job: Job) -> None:
        """Release the allocation and close the job log."""
        job.end_time = self.env.now
        job.record(self.env.now, f"job {job.job_id} finished")
        self.cluster.release(job.nodes)
