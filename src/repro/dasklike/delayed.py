"""``dask.delayed``-style manual task construction.

The ResNet152 workflow of the paper is written with "three main
functions decorated with ``@dask.delayed`` ... load, transform, and
predict" (§IV-B).  This module provides the equivalent builder for the
cost-model world: a :class:`Delayed` node names an operation, declares
its costs, and links to its inputs; :func:`collect` assembles any set
of output nodes into a submittable :class:`TaskGraph`.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from .taskgraph import IOOp, TaskGraph, TaskSpec
from .utils import tokenize

__all__ = ["Delayed", "delayed", "collect"]


class Delayed:
    """One manually declared task and its lineage."""

    def __init__(self, name: str, *, compute_time: float = 0.0,
                 reads: Sequence[IOOp] = (), writes: Sequence[IOOp] = (),
                 output_nbytes: int = 0,
                 deps: Sequence["Delayed"] = (),
                 external_deps: Sequence[object] = (),
                 token: Optional[str] = None,
                 index: Optional[int] = None):
        self.name = name
        self.compute_time = compute_time
        self.reads = tuple(reads)
        self.writes = tuple(writes)
        self.output_nbytes = output_nbytes
        self.deps = tuple(deps)
        self.external_deps = tuple(external_deps)
        token = token or tokenize(
            name, compute_time, output_nbytes, len(self.deps),
            [d.key for d in self.deps],
            [op.path for op in self.reads + self.writes],
            index,
        )
        self.key = (f"{name}-{token}", index) if index is not None \
            else f"{name}-{token}"

    def to_spec(self) -> TaskSpec:
        return TaskSpec(
            key=self.key,
            deps=tuple(d.key for d in self.deps) + self.external_deps,
            compute_time=self.compute_time,
            reads=self.reads,
            writes=self.writes,
            output_nbytes=self.output_nbytes,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Delayed {self.key}>"


def delayed(name: str, **kwargs) -> Delayed:
    """Factory mirroring the ``@dask.delayed`` call style."""
    return Delayed(name, **kwargs)


def collect(outputs: Iterable[Delayed], name: str = "delayed") -> TaskGraph:
    """Walk the lineage of ``outputs`` and build one task graph.

    Tasks are emitted in *creation order* (group name, then index), the
    order a real client builds delayed calls in — this is the order the
    scheduler's root co-assignment slices into per-worker slabs, so it
    must reflect how the program constructed the tasks, not the
    traversal order of this collector.
    """
    nodes: dict[str, Delayed] = {}
    stack = list(outputs)
    while stack:
        node = stack.pop()
        key = node.to_spec().name
        if key in nodes:
            continue
        nodes[key] = node
        stack.extend(node.deps)

    def order(item):
        spec = item[1].to_spec()
        index = spec.key[1] if (isinstance(spec.key, tuple)
                                and len(spec.key) > 1
                                and isinstance(spec.key[1], int)) else -1
        return (index, spec.group)

    graph = TaskGraph(name=name)
    for _, node in sorted(nodes.items(), key=order):
        graph.add(node.to_spec())
    graph.validate(allow_external=True)
    return graph
