"""Task-graph representation and graph optimization.

A workflow is "a directed acyclic graph, where nodes are tasks and edges
are task dependencies" (§III-A).  Tasks in this reproduction are *cost
models* rather than Python callables: each :class:`TaskSpec` declares
how long it computes, what I/O it performs, and how large its output
is.  The simulated workers then *act out* those costs on the platform
substrate, producing the timings the instrumentation records.

The module also implements the linear-chain *fusion* optimization that
Dask applies before submission.  Fusion is load-bearing for the paper:
the longest XGBoost tasks belong to the ``read_parquet-fused-assign``
category, which "arises from Dask's task-graph optimization process,
where I/O operations are combined with consuming tasks into a single
node of the task graph to enhance data locality" (§IV-D3).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from functools import cached_property
from typing import Iterable, Optional

from .states import key_group, key_split, key_str

__all__ = ["IOOp", "TaskSpec", "TaskGraph", "fuse_linear_chains", "GraphError"]


class GraphError(ValueError):
    """Raised for malformed task graphs (cycles, missing dependencies)."""


@dataclass(frozen=True)
class IOOp:
    """One planned POSIX operation a task will perform when it runs."""

    path: str
    op: str  # "read" | "write"
    offset: int
    length: int

    def __post_init__(self):
        if self.op not in ("read", "write"):
            raise ValueError(f"op must be read/write, got {self.op!r}")
        if self.offset < 0 or self.length < 0:
            raise ValueError("offset/length must be non-negative")


@dataclass(frozen=True)
class TaskSpec:
    """Cost-model description of one task.

    Attributes
    ----------
    key:
        Dask-style key — a string or a ``(name, index)`` tuple.
    deps:
        Keys this task consumes; their outputs must be in distributed
        memory (possibly on another worker) before this task can run.
    compute_time:
        Nominal CPU seconds on a speed-1.0 core, before noise.
    reads / writes:
        Planned I/O, executed through the (Darshan-instrumented) PFS.
    output_nbytes:
        Size of the task's result kept in worker memory; this is the
        "size" column of the paper's parallel-coordinates chart.
    """

    key: object
    deps: tuple = ()
    compute_time: float = 0.0
    reads: tuple[IOOp, ...] = ()
    writes: tuple[IOOp, ...] = ()
    output_nbytes: int = 0
    #: Per-task retry budget (Dask's ``submit(..., retries=)``); None
    #: defers to :attr:`DaskConfig.task_retries`.
    retries: Optional[int] = None
    #: Per-task wall-clock limit, seconds; None defers to
    #: :attr:`DaskConfig.task_timeout`, 0 disables enforcement.
    timeout: Optional[float] = None

    # Cached: the canonical renderings are pure functions of the frozen
    # ``key``, and the scheduler reads them on every transition — at
    # 1M-task scale recomputing the string forms dominated the
    # scheduler's own per-transition cost.
    @cached_property
    def name(self) -> str:
        return key_str(self.key)

    @cached_property
    def group(self) -> str:
        return key_group(self.key)

    @cached_property
    def prefix(self) -> str:
        return key_split(self.key)

    @cached_property
    def dep_names(self) -> tuple:
        """Canonical string forms of ``deps``, in the same order."""
        return tuple(key_str(dep) for dep in self.deps)

    def with_key(self, key) -> "TaskSpec":
        return replace(self, key=key)


class TaskGraph:
    """A validated DAG of :class:`TaskSpec` nodes."""

    def __init__(self, tasks: Iterable[TaskSpec] = (), name: str = "graph"):
        self.name = name
        self._tasks: dict[str, TaskSpec] = {}
        self._toposort_cache: Optional[list[str]] = None
        self._dependents_cache: Optional[dict[str, set[str]]] = None
        self._validated_external = False
        for task in tasks:
            self.add(task)

    def add(self, task: TaskSpec) -> None:
        name = task.name
        if name in self._tasks:
            raise GraphError(f"duplicate task key {name}")
        # Warm the remaining key renderings while the graph is being
        # built (client-side), so the scheduler's transition path never
        # pays a first-access ``cached_property`` miss.
        task.dep_names, task.group, task.prefix  # noqa: B018
        self._tasks[name] = task
        self._toposort_cache = None
        self._dependents_cache = None
        self._validated_external = False

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, key) -> bool:
        return key_str(key) in self._tasks

    def __getitem__(self, key) -> TaskSpec:
        return self._tasks[key_str(key)]

    @property
    def tasks(self) -> dict[str, TaskSpec]:
        return dict(self._tasks)

    def keys(self) -> list[str]:
        return list(self._tasks)

    def dependents(self) -> dict[str, set[str]]:
        """Reverse adjacency: key → set of keys depending on it.

        Memoized (invalidated by :meth:`add`); treat the result as
        read-only — it is shared between :meth:`toposort`,
        :meth:`leaves` and graph intake.
        """
        if self._dependents_cache is not None:
            return self._dependents_cache
        out: dict[str, set[str]] = {name: set() for name in self._tasks}
        for name, task in self._tasks.items():
            for dep_name in task.dep_names:
                if dep_name in out:
                    out[dep_name].add(name)
        self._dependents_cache = out
        return out

    def validate(self, allow_external: bool = False) -> None:
        """Check deps resolve and the graph is acyclic.

        With ``allow_external=True``, dependencies on keys outside this
        graph are permitted — they reference results of previously
        submitted graphs held in distributed memory (the multi-graph
        submission pattern of the XGBoost workflow).

        Memoized per strictness: a graph the client already validated
        (optimization passes validate, and so does graph intake) is not
        re-walked on submission.  :meth:`add` invalidates.
        """
        if allow_external and self._validated_external:
            return
        if not allow_external:
            for name, task in self._tasks.items():
                for dep_name in task.dep_names:
                    if dep_name not in self._tasks:
                        raise GraphError(
                            f"task {name} depends on missing key "
                            f"{dep_name}"
                        )
        self.toposort()
        self._validated_external = True

    def toposort(self) -> list[str]:
        """Kahn's algorithm; raises :class:`GraphError` on cycles.

        Memoized: the same graph is sorted by :meth:`validate` and
        again by the scheduler on submission, so the order is computed
        once and invalidated whenever :meth:`add` mutates the graph.
        A *copy* is returned so callers cannot corrupt the cache.
        """
        if self._toposort_cache is not None:
            return list(self._toposort_cache)
        indegree = {name: 0 for name in self._tasks}
        dependents = self.dependents()
        for name, task in self._tasks.items():
            indegree[name] = sum(
                1 for dep_name in task.dep_names
                if dep_name in self._tasks
            )
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: list[str] = []
        while ready:
            name = ready.pop()
            order.append(name)
            for dependent in dependents[name]:
                indegree[dependent] -= 1
                if indegree[dependent] == 0:
                    ready.append(dependent)
        if len(order) != len(self._tasks):
            raise GraphError("task graph contains a cycle")
        self._toposort_cache = order
        return list(order)

    def roots(self) -> list[str]:
        """Tasks with no in-graph dependencies."""
        return [
            name for name, task in self._tasks.items()
            if not any(d in self._tasks for d in task.dep_names)
        ]

    def leaves(self) -> list[str]:
        """Tasks nothing in the graph depends on (the graph's outputs)."""
        dependents = self.dependents()
        return [name for name, deps in dependents.items() if not deps]

    def stats(self) -> dict:
        """Aggregate characteristics (feeds Table I)."""
        files = set()
        io_ops = 0
        for task in self._tasks.values():
            for op in task.reads + task.writes:
                files.add(op.path)
                io_ops += 1
        return {
            "tasks": len(self._tasks),
            "edges": sum(len(t.deps) for t in self._tasks.values()),
            "distinct_files": len(files),
            "planned_io_ops": io_ops,
            "prefixes": sorted({t.prefix for t in self._tasks.values()}),
        }


def fuse_linear_chains(graph: TaskGraph, name: Optional[str] = None) -> TaskGraph:
    """Fuse linear chains, as ``dask.optimization.fuse`` does.

    A chain ``a → b`` where *b* is *a*'s only dependent and *a* is *b*'s
    only dependency collapses into one task whose key prefix is the
    concatenation of the members' prefixes joined by ``-fused-`` (so a
    ``read_parquet`` chained into an ``assign`` becomes
    ``read_parquet-fused-assign``, the exact category the paper's Fig. 6
    highlights).  Costs add; the fused output size is the tail's.
    """
    graph.validate(allow_external=True)
    dependents = graph.dependents()
    tasks = graph.tasks

    # Walk chains from their heads.
    fused_into: dict[str, str] = {}
    chains: dict[str, list[str]] = {}
    for head in graph.toposort():
        if head in fused_into:
            continue
        chain = [head]
        current = head
        while True:
            deps_of = dependents[current]
            if len(deps_of) != 1:
                break
            nxt = next(iter(deps_of))
            in_graph_deps = [
                d for d in tasks[nxt].deps if key_str(d) in tasks
            ]
            if len(in_graph_deps) != 1:
                break
            chain.append(nxt)
            current = nxt
        if len(chain) > 1:
            for member in chain:
                fused_into[member] = chain[0]
            chains[chain[0]] = chain

    out = TaskGraph(name=name or f"{graph.name}-fused")
    replaced: dict[str, object] = {}
    for head, chain in chains.items():
        members = [tasks[m] for m in chain]
        prefixes = []
        for member in members:
            if member.prefix not in prefixes:
                prefixes.append(member.prefix)
        if len(prefixes) > 1:
            fused_prefix = "-fused-".join([prefixes[0], prefixes[-1]]) \
                if len(prefixes) == 2 else "-fused-".join(prefixes)
        else:
            fused_prefix = prefixes[0]
        head_task = members[0]
        tail_task = members[-1]
        token = head_task.group.split("-")[-1] if "-" in head_task.group else "0"
        if isinstance(head_task.key, tuple) and len(head_task.key) > 1:
            new_key = (f"{fused_prefix}-{token}",) + tuple(head_task.key[1:])
        else:
            new_key = f"{fused_prefix}-{token}"
        member_retries = [m.retries for m in members if m.retries is not None]
        member_timeouts = [m.timeout for m in members if m.timeout is not None]
        fused = TaskSpec(
            key=new_key,
            deps=tuple(
                d for d in head_task.deps
            ),
            compute_time=sum(m.compute_time for m in members),
            reads=tuple(op for m in members for op in m.reads),
            writes=tuple(op for m in members for op in m.writes),
            output_nbytes=tail_task.output_nbytes,
            # A fused node runs every member's work in one attempt: it
            # keeps the most generous member retry budget and the sum of
            # the member time limits.
            retries=max(member_retries) if member_retries else None,
            timeout=sum(member_timeouts) if member_timeouts else None,
        )
        for member in chain:
            replaced[member] = new_key
        out.add(fused)

    for name_, task in tasks.items():
        if name_ in fused_into:
            continue
        new_deps = tuple(
            replaced.get(key_str(d), d) for d in task.deps
        )
        out.add(replace(task, deps=new_deps))

    # Rewrite deps of fused tasks too (their heads may depend on fused keys).
    final = TaskGraph(name=out.name)
    for task in out.tasks.values():
        new_deps = tuple(replaced.get(key_str(d), d) for d in task.deps)
        final.add(replace(task, deps=new_deps))
    final.validate(allow_external=True)
    return final
