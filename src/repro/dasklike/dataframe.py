"""``dask.dataframe``-style partitioned-frame collection.

The XGBoost workflow of the paper is built from "high-level methods
such as xgboost.dask.train and xgboost.dask.predict ... the underlying
task graph is created automatically, thanks to the use of Dask
libraries such as dask.array and dask.dataframe" (§IV-B).  This module
provides the partitioned-frame graph factory; the boosting-round
structure itself lives in :mod:`repro.workflows.xgboost_trip`.

Task prefixes deliberately match the paper's Fig. 6 categories:
``read_parquet`` (which fuses with ``assign`` into
``read_parquet-fused-assign``), ``getitem``, ``random_split_take``,
``drop_by_shallow_copy``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from .array import BlockedArray
from .taskgraph import IOOp, TaskSpec
from .utils import tokenize

__all__ = ["PartitionedFrame", "read_parquet"]


class PartitionedFrame(BlockedArray):
    """A lazy partitioned dataframe (partitions play the block role)."""

    @property
    def npartitions(self) -> int:
        return self.nblocks

    # ------------------------------------------------------------------
    def map_partitions(self, name: str, compute_time_per_partition: float,
                       output_ratio: float = 1.0) -> "PartitionedFrame":
        out = self.map_blocks(name, compute_time_per_partition, output_ratio)
        return PartitionedFrame(out.name, out.block_keys, out.block_nbytes,
                                out.pending)

    def assign(self, compute_time_per_partition: float = 0.0,
               output_ratio: float = 1.05) -> "PartitionedFrame":
        """Add a derived column (slightly grows each partition).

        When this immediately follows ``read_parquet``, graph fusion
        collapses the pair into ``read_parquet-fused-assign`` tasks —
        the long-running category of the paper's Fig. 6.
        """
        return self.map_partitions("assign", compute_time_per_partition,
                                   output_ratio)

    def getitem(self, fraction: float,
                compute_time_per_partition: float = 2e-3) -> "PartitionedFrame":
        """Column projection: keep ``fraction`` of each partition."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        return self.map_partitions("getitem", compute_time_per_partition,
                                   fraction)

    def drop_by_shallow_copy(
        self, compute_time_per_partition: float = 1e-3
    ) -> "PartitionedFrame":
        """Drop columns via shallow copy (cheap, near-same size)."""
        return self.map_partitions("drop_by_shallow_copy",
                                   compute_time_per_partition, 0.98)

    def random_split(self, frac_train: float,
                     compute_time_per_partition: float = 3e-3
                     ) -> tuple["PartitionedFrame", "PartitionedFrame"]:
        """Split each partition into train/test takes.

        Produces two ``random_split_take`` tasks per partition, exactly
        the category the paper lists among its Fig. 6 examples.
        """
        if not 0 < frac_train < 1:
            raise ValueError("frac_train must be in (0, 1)")
        token = tokenize(self.name, "random_split", frac_train)
        sides = []
        for side_index, frac in ((0, frac_train), (1, 1 - frac_train)):
            pending = dict(self.pending)
            keys, sizes = [], []
            for i, (dep, nbytes) in enumerate(
                zip(self.block_keys, self.block_nbytes)
            ):
                out = max(1, int(nbytes * frac))
                spec = TaskSpec(
                    key=(f"random_split_take-{token}", side_index, i),
                    deps=(dep,),
                    compute_time=compute_time_per_partition,
                    output_nbytes=out,
                )
                pending[spec.name] = spec
                keys.append(spec.key)
                sizes.append(out)
            sides.append(PartitionedFrame(
                f"{self.name}-split{side_index}", keys, sizes, pending))
        train, test = sides
        # Both sides share the upstream pending tasks; when either side's
        # graph is submitted, mark BOTH computed (their union was built).
        return train, test


def read_parquet(paths: Sequence[str], file_nbytes: Sequence[int],
                 partitions_per_file: int = 2,
                 read_ops_per_partition: int = 3,
                 decode_time_per_gib: float = 4.0,
                 in_memory_ratio: float = 1.6,
                 name: str = "read_parquet") -> PartitionedFrame:
    """Load parquet files, several row-group partitions per file.

    Parquet decompresses on read: a partition's in-memory size is
    ``in_memory_ratio`` times its on-disk share, which is how the
    fused read tasks end up with outputs "significantly larger than the
    recommended 128 MB" (§IV-D3) when files are large.
    """
    if len(paths) != len(file_nbytes):
        raise ValueError("need one size per path")
    if partitions_per_file < 1 or read_ops_per_partition < 1:
        raise ValueError("partition/read-op counts must be >= 1")
    token = tokenize(name, tuple(paths), partitions_per_file)
    pending: dict[str, TaskSpec] = {}
    keys, sizes = [], []
    index = 0
    for path, nbytes in zip(paths, file_nbytes):
        part_bytes = nbytes // partitions_per_file
        for p in range(partitions_per_file):
            offset = p * part_bytes
            length = part_bytes if p < partitions_per_file - 1 \
                else nbytes - offset
            reads = []
            op_bytes = max(1, length // read_ops_per_partition)
            pos = offset
            remaining = length
            while remaining > 0:
                chunk = min(op_bytes, remaining)
                # Last op absorbs the remainder.
                if remaining - chunk < op_bytes // 2:
                    chunk = remaining
                reads.append(IOOp(path, "read", pos, chunk))
                pos += chunk
                remaining -= chunk
            out = max(1, int(length * in_memory_ratio))
            spec = TaskSpec(
                key=(f"{name}-{token}", index),
                deps=(),
                compute_time=decode_time_per_gib * length / 2**30,
                reads=tuple(reads),
                output_nbytes=out,
            )
            pending[spec.name] = spec
            keys.append(spec.key)
            sizes.append(out)
            index += 1
    return PartitionedFrame(name, keys, sizes, pending)
