"""Runtime configuration (the ``distributed.yaml`` analogue).

The paper's provenance chart explicitly captures "package configuration
details, such as Dask's timeouts, heartbeat intervals, and communication
settings from the distributed.yaml file" (§III-E1), because configuration
drift between runs is itself a reproducibility hazard.  This module
provides that configuration object; :meth:`DaskConfig.describe` is what
the metadata layer stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DaskConfig"]


@dataclass(frozen=True)
class DaskConfig:
    """Tunables of the simulated WMS runtime."""

    # -- scheduling ---------------------------------------------------------
    #: Weight of the data-transfer term in the worker placement objective.
    locality_weight: float = 1.0
    #: Scheduler's bandwidth estimate for placement decisions, bytes/s
    #: (Dask's ``distributed.scheduler.bandwidth`` defaults to 100 MB/s —
    #: deliberately far below NIC peak, accounting for serialization).
    bandwidth_estimate: float = 100e6
    #: A worker with occupancy below this fraction of the mean counts as
    #: idle and is considered for tasks whose data lives elsewhere.
    idle_fraction: float = 0.92
    #: Co-assign batches of simultaneously ready root tasks in
    #: contiguous slabs (Dask's root-task co-assignment), keeping
    #: sibling chunks together and reducing downstream transfers.
    root_coassignment: bool = True
    #: Enable the work-stealing balancer.
    work_stealing: bool = True
    #: Stealing balancer period, seconds.
    work_stealing_interval: float = 0.1
    #: A thief must be this many times less occupied than the victim.
    steal_ratio: float = 2.0

    # -- worker -------------------------------------------------------------
    #: Event-loop tick interval (distributed default: 20 ms).
    tick_interval: float = 0.02
    #: Log "unresponsive event loop" when a tick is delayed beyond this
    #: (distributed's ``tick.limit`` style threshold).
    tick_warn_threshold: float = 0.5
    #: Heartbeat period from worker to scheduler.
    heartbeat_interval: float = 0.5
    #: Worker memory limit, bytes (0 disables accounting).
    memory_limit: int = 64 * 2**30
    #: Spill stored results to local scratch when managed memory exceeds
    #: this fraction of the limit (distributed's ``memory.target``);
    #: 0 disables spilling.
    memory_spill_fraction: float = 0.0
    #: Stop spilling once usage falls below this fraction of the limit.
    memory_spill_low: float = 0.5
    #: Bandwidth of the node-local scratch device used for spills, B/s.
    spill_bandwidth: float = 1.5e9

    # -- garbage collection model --------------------------------------------
    #: Base rate of full GC pauses per second at zero memory pressure.
    gc_base_rate: float = 0.004
    #: Additional pauses per second at 100% memory pressure.
    gc_pressure_rate: float = 0.9
    #: Pressure response exponent: collection rate grows as
    #: ``pressure ** exponent``, so pauses concentrate sharply in the
    #: phases where oversized data is resident (the Fig.-7 skew).
    gc_pressure_exponent: float = 3.0
    #: Median full-collection pause, seconds.
    gc_pause_median: float = 0.7
    #: Log-sigma of pause durations (right-skewed: occasional multi-second
    #: stop-the-world pauses, which trigger unresponsive-loop warnings).
    gc_pause_sigma: float = 1.1

    # -- resilience -----------------------------------------------------------
    #: Default retry budget for tasks that do not set
    #: :attr:`~repro.dasklike.taskgraph.TaskSpec.retries` themselves
    #: (Dask's ``client.submit(..., retries=)`` default of 0: first
    #: error fails the future).
    task_retries: int = 0
    #: First retry waits this long, seconds (exponential backoff base).
    retry_backoff_base: float = 0.5
    #: Backoff multiplier: attempt *n* waits ``base * factor**(n-1)``.
    retry_backoff_factor: float = 2.0
    #: Per-task wall-clock limit, seconds; 0 disables enforcement.
    #: Overridden per task by :attr:`TaskSpec.timeout`.
    task_timeout: float = 0.0

    # -- data plane (ProxyStore-style pass-by-reference) ----------------------
    #: Enable the :mod:`repro.proxystore` data plane: large task outputs
    #: are staged into a shared backend and consumers resolve lightweight
    #: proxies instead of fetching peer-to-peer.  Off by default — the
    #: classic scheduler transfer model stays byte-identical.
    proxy_enabled: bool = False
    #: Outputs of at least this many bytes are proxied (Pauloski et
    #: al.'s size-threshold policy; small results stay inline).
    proxy_threshold: int = 1 * 2**20
    #: Backend kind: ``local`` (owner memory, peer NIC hop on resolve),
    #: ``pfs`` (shared-filesystem staging, striped OST reads), or
    #: ``mofka`` (blob channel over Mofka partitions).
    proxy_backend: str = "pfs"
    #: Resolve retries against a transiently unavailable backend before
    #: falling back to the peer-fetch path.
    proxy_max_retries: int = 3
    #: Base backoff between resolve retries, seconds (linear: attempt
    #: *n* waits ``n * backoff``).
    proxy_retry_backoff: float = 0.05

    # -- communication --------------------------------------------------------
    #: Fixed control-plane message latency (scheduler <-> worker RPC).
    control_latency: float = 1.0e-3
    #: Connection timeout recorded in provenance (not enforced).
    connect_timeout: float = 30.0

    # -- compute noise ----------------------------------------------------------
    #: Sigma of log-normal noise on task compute durations.
    compute_noise_sigma: float = 0.08
    #: Fixed per-task runtime overhead on the worker (deserialization,
    #: GIL, executor hand-off).  Counted as coordination, not as
    #: computation — this is what makes short workflows' total wall time
    #: "disproportionately long" in Fig. 3.
    task_overhead: float = 0.1
    #: Sigma of log-normal noise on the per-task overhead.
    task_overhead_sigma: float = 0.3

    def describe(self) -> dict:
        """Flat mapping, stored as application-layer provenance (Fig. 1)."""
        return {
            "distributed.scheduler.work-stealing": self.work_stealing,
            "distributed.scheduler.work-stealing-interval":
                self.work_stealing_interval,
            "distributed.scheduler.locality-weight": self.locality_weight,
            "distributed.worker.tick.interval": self.tick_interval,
            "distributed.worker.tick.limit": self.tick_warn_threshold,
            "distributed.worker.heartbeat": self.heartbeat_interval,
            "distributed.worker.memory.limit": self.memory_limit,
            "distributed.comm.timeouts.connect": self.connect_timeout,
            "distributed.scheduler.task-retries": self.task_retries,
            "distributed.scheduler.retry-backoff-base":
                self.retry_backoff_base,
            "distributed.scheduler.retry-backoff-factor":
                self.retry_backoff_factor,
            "distributed.scheduler.task-timeout": self.task_timeout,
            "proxystore.enabled": self.proxy_enabled,
            "proxystore.threshold": self.proxy_threshold,
            "proxystore.backend": self.proxy_backend,
            "proxystore.max-retries": self.proxy_max_retries,
            "proxystore.retry-backoff": self.proxy_retry_backoff,
        }
