"""Scheduler model: dynamic task placement and state tracking.

Mirrors the behaviourally relevant parts of ``distributed.scheduler``:

* a per-task state machine (``released → waiting → processing → memory``)
  whose every transition is timestamped, attributed to a stimulus, and
  offered to scheduler plugins — the hook the paper's Mofka plugin uses;
* dynamic worker selection combining *occupancy* (estimated queued work,
  learned per task prefix from observed durations, as Dask does) with a
  *data-locality* term (bytes of dependencies that would have to move);
* reference-counted memory release, so long workflows (XGBoost submits
  74 task graphs) do not accumulate distributed memory;
* support for cross-graph dependencies: a later graph may consume keys
  kept in memory by an earlier submission.

Scheduling decisions here are deliberately *greedy and dynamic*: tasks
are assigned when they become ready, based on the cluster state at that
instant.  Because that state depends on noisy completion times, the
task→worker mapping differs run to run — the paper's central source of
"performance unpredictability" (§V).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..platform import Node
from ..sim import Environment, RandomStreams
from .config import DaskConfig
from .records import LogEntry, StealEvent
from .scheduler_state import OccupancyIndex
from .states import (
    ACTIVE_SCHEDULER_STATES,
    SCHEDULER_TRANSITIONS,
    TransitionRecord,
    key_str,
    make_transition_record,
    validate_transition,
)
from .taskgraph import TaskGraph, TaskSpec
from .worker import DataLostError, Worker

__all__ = ["Scheduler", "SchedulerTaskState"]

#: Dask's default duration guess for never-seen task prefixes (seconds).
DEFAULT_DURATION_GUESS = 0.5


@dataclass
class SchedulerTaskState:
    """Scheduler-side bookkeeping for one task."""

    spec: TaskSpec
    state: str = "released"
    graph_index: int = 0
    #: Creation order across all graphs.  Failure recovery collects
    #: affected tasks from per-worker reverse indexes and re-sorts by
    #: this, reproducing the submission-order iteration the old
    #: all-tasks scan provided for free.
    seq: int = 0
    processing_on: Optional[Worker] = None
    #: Workers holding (a replica of) this task's output, keyed by
    #: address.  A dict, not a set: iteration order must be insertion
    #: order so scheduling tie-breaks are reproducible run to run.
    who_has: dict = field(default_factory=dict)        # address -> Worker
    waiting_on: set = field(default_factory=set)       # dep names
    dependents: set = field(default_factory=set)       # dependent names
    remaining_dependents: int = 0
    wanted: bool = False
    nbytes: int = 0
    #: Process handle of the in-flight worker-side execution (stealable).
    worker_process: Optional[object] = None
    #: Handle of the worker-side compute process (what stealing interrupts).
    compute_process: Optional[object] = None
    #: Exact amount this task added to its worker's occupancy estimate.
    occupancy_contrib: float = 0.0
    #: Failed attempts so far (drives the exponential backoff).
    retry_count: int = 0
    #: Remaining retry budget; ``None`` until the first failure, when it
    #: is seeded from the task spec or the config default.
    retries_left: Optional[int] = None
    #: True while a backoff timer owns the task (state ``released``);
    #: failure recovery must leave it to the timer.
    retry_pending: bool = False

    @property
    def name(self) -> str:
        return self.spec.name


class Scheduler:
    """The ``dask scheduler`` process of the simulated cluster."""

    def __init__(self, env: Environment, node: Node, config: DaskConfig,
                 streams: RandomStreams):
        self.env = env
        self.node = node
        self.config = config
        self.streams = streams
        self.address = f"10.{node.switch}.{int(node.name[3:]) % 250}.1:8786"

        self.workers: dict[str, Worker] = {}
        self.tasks: dict[str, SchedulerTaskState] = {}
        self.occupancy: dict[str, float] = {}
        #: Running sum of ``occupancy`` values, maintained incrementally
        #: so decide_worker's mean-occupancy check is O(1) per
        #: transition instead of an O(workers) scan.  Resynced exactly
        #: against the per-worker values on every membership change,
        #: bounding float drift over millions of incremental updates.
        self._occupancy_total = 0.0
        #: Occupancy-ordered worker index (shares the ``occupancy``
        #: mapping): least-occupied placement candidates and busiest
        #: stealing victims in O(log workers) per query instead of the
        #: per-transition pool sweep / sort.
        self.occupancy_index = OccupancyIndex(self.occupancy)
        #: Reverse indexes per worker address, so failure recovery is
        #: O(tasks touching the dead worker) rather than O(every task
        #: ever submitted): output keys the worker holds a replica of,
        #: and keys currently processing on it.  Inner dicts are
        #: ordered sets (values unused).
        self._has_what: dict[str, dict[str, None]] = {}
        self._worker_processing: dict[str, dict[str, None]] = {}
        #: Tasks not yet settled (state in ACTIVE_SCHEDULER_STATES),
        #: maintained by ``_transition``; the all-workers-lost
        #: degradation sweep iterates this instead of ``tasks``.
        self._unfinished: dict[str, SchedulerTaskState] = {}
        self._duration_ema: dict[str, float] = {}
        self._n_graphs = 0
        #: Pass-by-reference data plane (see :mod:`repro.proxystore`);
        #: ``None`` keeps placement and release on the classic
        #: scheduler transfer model.
        self.proxy_store = None

        self.transitions: list[TransitionRecord] = []
        self.logs: list[LogEntry] = []
        self.steal_events: list[StealEvent] = []
        self.plugins: list = []

        #: Events fired when a wanted key reaches memory (client waits).
        self._wanted_events: dict[str, object] = {}
        self._last_heartbeat: dict[str, float] = {}
        self._monitoring = False

        self.log("INFO", f"Scheduler at: tcp://{self.address}")

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add_worker(self, worker: Worker) -> None:
        self.workers[worker.address] = worker
        self.occupancy[worker.address] = 0.0
        # Membership changes are the designated resync points for the
        # incremental total: recompute it exactly so per-update float
        # error can never accumulate across membership epochs.
        self._occupancy_total = sum(self.occupancy.values())
        # Registration counts as the first liveness signal, so a worker
        # that dies before ever heartbeating is still detected.
        self._last_heartbeat[worker.address] = self.env.now
        self._has_what[worker.address] = {}
        self._worker_processing[worker.address] = {}
        self.occupancy_index.add(worker.address, worker)
        worker.scheduler = self
        self.log("INFO", f"Register worker <WorkerState '{worker.address}', "
                         f"name: {worker.name}, status: running>")

    def remove_worker(self, worker: Worker) -> None:
        self.workers.pop(worker.address, None)
        self.occupancy.pop(worker.address, None)
        self._occupancy_total = sum(self.occupancy.values())
        self._last_heartbeat.pop(worker.address, None)
        self._has_what.pop(worker.address, None)
        self._worker_processing.pop(worker.address, None)
        self.occupancy_index.remove(worker.address)
        self.log("INFO", f"Remove worker {worker.address}")

    def _adjust_occupancy(self, address: str, delta: float) -> None:
        """Apply a clamped occupancy delta, keeping the running total
        consistent with the per-worker values."""
        old = self.occupancy[address]
        new = max(0.0, old + delta)
        self.occupancy[address] = new
        self._occupancy_total += new - old
        self.occupancy_index.update(address, new)

    def worker_ready_changed(self, worker: Worker, has_ready: bool) -> None:
        """A worker's stealable queue flipped empty <-> non-empty; keep
        the occupancy index's victim-candidate set in step."""
        self.occupancy_index.set_stealable(worker.address, has_ready)

    # ------------------------------------------------------------------
    # liveness and failure recovery
    # ------------------------------------------------------------------
    def heartbeat(self, worker: Worker) -> None:
        # The liveness monitor may have evicted this worker while its
        # heartbeat process was parked on the interval timeout; a late
        # beat must not resurrect a timestamp for an evicted address.
        if worker.address not in self.workers:
            return
        self._last_heartbeat[worker.address] = self.env.now

    def start_liveness_monitor(self, misses: int = 4) -> None:
        """Detect dead workers through missed heartbeats (SSG-style)."""
        if self._monitoring:
            return
        self._monitoring = True
        self.env.process(self._liveness_loop(misses),
                         name="scheduler-liveness")

    def stop_liveness_monitor(self) -> None:
        self._monitoring = False

    def _liveness_loop(self, misses: int):
        interval = self.config.heartbeat_interval
        while self._monitoring:
            yield self.env.timeout(interval)
            if not self._monitoring:
                # stop_liveness_monitor() ran while we were mid-yield:
                # without this re-check the loop body would execute one
                # more time and could fail (and re-recover) workers the
                # caller explicitly stopped watching.
                return
            deadline = self.env.now - misses * interval
            for address in list(self.workers):
                worker = self.workers.get(address)
                if worker is None:
                    # Removed by a recovery pass triggered earlier in
                    # this same sweep (cascading failure).
                    continue
                last = self._last_heartbeat.get(address)
                if last is not None and last < deadline:
                    self.log("WARNING",
                             f"Worker {address} failed heartbeat check; "
                             "removing and recovering its work")
                    self.handle_worker_failure(worker)

    def handle_worker_failure(self, worker: Worker) -> None:
        """Recover from a dead worker: recompute lost keys, reassign
        its in-flight tasks (Dask's ``remove_worker`` recovery path)."""
        if worker.address not in self.workers:
            return
        worker.fail()
        # Snapshot the reverse indexes before remove_worker drops them.
        held = self._has_what.get(worker.address, {})
        processing = self._worker_processing.get(worker.address, {})
        self.remove_worker(worker)

        # Drop the dead worker's replicas everywhere it held one, and
        # collect its in-flight tasks — O(affected tasks) via the
        # reverse indexes, in submission order like the old full scan.
        lost: list[SchedulerTaskState] = []
        for name in held:
            ts = self.tasks[name]
            had = ts.who_has.pop(worker.address, None)
            if (had is not None and ts.state == "memory"
                    and not ts.who_has
                    and not self._blob_available(name)):
                # No live replica — but a key proxied on a durable
                # backend (PFS/Mofka) is *not* lost: consumers resolve
                # it from the data plane, so no recompute is needed.
                lost.append(ts)
        lost.sort(key=lambda t: t.seq)
        inflight = [self.tasks[name] for name in processing
                    if self.tasks[name].state == "processing"
                    and self.tasks[name].processing_on is worker]
        inflight.sort(key=lambda t: t.seq)

        # One deduplication set per recovery pass: with diamond
        # dependencies the recursive _resubmit walk can reach the same
        # key along several edges, and a second full visit would
        # double-increment its dependencies' ``remaining_dependents``
        # (the key then never drops to zero and is never released).
        seen: set = set()

        for ts in lost:
            if ts.wanted or ts.remaining_dependents > 0 or ts.dependents:
                self._resubmit(ts, seen)
            else:
                self._transition(ts, "released", "worker-failed")
                self._transition(ts, "forgotten", "gc")

        for ts in inflight:
            ts.processing_on = None
            ts.worker_process = None
            ts.compute_process = None
            ts.occupancy_contrib = 0.0
            self._transition(ts, "released", "worker-failed")
            self._transition(ts, "waiting", "worker-failed")
            ts.waiting_on = set()
            for dep_name in ts.spec.dep_names:
                dep_ts = self.tasks[dep_name]
                if self._dep_available(dep_ts):
                    continue
                ts.waiting_on.add(dep_ts.name)
                if dep_ts.state in ("memory", "released", "forgotten"):
                    # "memory" with no replica left, or already freed:
                    # either way the data is gone and must be rebuilt,
                    # or this task waits forever on a key nobody runs.
                    self._resubmit(dep_ts, seen)
            if not ts.waiting_on and self.workers:
                self._assign(ts, stimulus="worker-failed")

        if not self.workers:
            self._degrade_no_workers()

    def _blob_available(self, name: str) -> bool:
        """True when ``name`` survives on a durable data-plane backend."""
        store = self.proxy_store
        return store is not None and store.durable(name)

    def _dep_available(self, dep_ts: SchedulerTaskState) -> bool:
        """A dependency counts as available when its bytes are actually
        reachable: a replica on a live worker, or a blob on a durable
        data-plane backend.  A replica on a silently crashed worker
        (not yet noticed by the liveness monitor) does not count —
        treating it as live would re-dispatch into the same
        DataLostError forever."""
        if dep_ts.state != "memory":
            return False
        if any(not w.failed for w in dep_ts.who_has.values()):
            return True
        return self._blob_available(dep_ts.name)

    def _resubmit(self, ts: SchedulerTaskState,
                  seen: Optional[set] = None) -> None:
        """Recompute a lost key (and, recursively, lost inputs).

        ``seen`` is the per-recovery-pass deduplication set threaded
        down from :meth:`handle_worker_failure`; a key already visited
        in this pass is never resubmitted twice, whatever state an
        earlier visit left it in.
        """
        if seen is not None:
            if ts.name in seen:
                return
            seen.add(ts.name)
        if ts.retry_pending:
            # A retry timer owns this task; it re-resolves lost inputs
            # itself when it fires.  Resubmitting here as well would
            # double-count its dependency consumption.
            return
        if ts.state == "memory":
            self._transition(ts, "released", "worker-failed")
        elif ts.state == "forgotten":
            # Resurrect: forgotten keys re-enter as released.
            ts.state = "released"
        if ts.state != "released":
            return
        self._transition(ts, "waiting", "recompute")
        ts.nbytes = 0
        self._forget_replicas(ts)
        ts.waiting_on = set()
        for dep_name in ts.spec.dep_names:
            dep_ts = self.tasks[dep_name]
            # This task will consume its inputs once more.
            dep_ts.remaining_dependents += 1
            if self._dep_available(dep_ts):
                continue
            ts.waiting_on.add(dep_ts.name)
            if dep_ts.state in ("memory", "released", "forgotten"):
                # The input itself is gone ("memory" with an empty
                # who_has means it was lost in this same failure event
                # but sits later in iteration order): rebuild it too.
                self._resubmit(dep_ts, seen)
        # Downstream tasks still waiting must wait for this key again.
        for dep_name in ts.dependents:
            dep_ts = self.tasks[dep_name]
            if dep_ts.state == "waiting":
                dep_ts.waiting_on.add(ts.name)
        if not ts.waiting_on and self.workers:
            self._assign(ts, stimulus="recompute")

    def _degrade_no_workers(self) -> None:
        """Graceful degradation: the last worker is gone.

        Nothing can ever run again, so instead of leaving clients
        parked forever on wanted events, fail every non-terminal task's
        future with a clear diagnosis (Dask's ``KilledWorker``-style
        surfacing).
        """
        exc = RuntimeError(
            "all workers are gone; pending keys cannot be recovered")
        self.log("ERROR", "All workers lost; failing pending wanted keys")
        # The unfinished index holds exactly the tasks in an active
        # state; snapshot it (the transitions below drain it) and keep
        # the old full-scan's submission-order iteration via seq.
        pending = sorted(self._unfinished.values(), key=lambda t: t.seq)
        for ts in pending:
            if ts.state in ACTIVE_SCHEDULER_STATES:
                if ts.state == "released":
                    self._transition(ts, "waiting", "no-workers")
                if ts.state in ("waiting", "no-worker"):
                    self._transition(ts, "processing", "no-workers")
                self._transition(ts, "erred", "no-workers")
                self._fail_wanted(ts, exc)

    def log(self, level: str, message: str) -> None:
        self.logs.append(LogEntry(
            source="scheduler", time=self.env.now, level=level,
            message=message,
        ))

    # ------------------------------------------------------------------
    # duration estimation (per prefix, exponential moving average)
    # ------------------------------------------------------------------
    def estimate_duration(self, spec: TaskSpec) -> float:
        return self._duration_ema.get(spec.prefix, DEFAULT_DURATION_GUESS)

    def observe_duration(self, spec: TaskSpec, duration: float) -> None:
        old = self._duration_ema.get(spec.prefix)
        if old is None:
            self._duration_ema[spec.prefix] = duration
        else:
            self._duration_ema[spec.prefix] = 0.5 * old + 0.5 * duration

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def _transition(self, ts: SchedulerTaskState, finish: str,
                    stimulus: str) -> None:
        start = ts.state
        if (start, finish) not in SCHEDULER_TRANSITIONS:
            validate_transition(start, finish)  # raises with detail
        ts.state = finish
        spec = ts.spec
        name = spec.name
        if finish in ACTIVE_SCHEDULER_STATES:
            self._unfinished[name] = ts
        else:
            self._unfinished.pop(name, None)
        processing_on = ts.processing_on
        record = make_transition_record(
            name, spec.group, spec.prefix, start, finish,
            self.env.now, stimulus,
            processing_on.address if processing_on is not None else None,
            "scheduler",
        )
        self.transitions.append(record)
        if self.plugins:
            for plugin in self.plugins:
                plugin.transition(record)

    # ------------------------------------------------------------------
    # graph intake
    # ------------------------------------------------------------------
    def update_graph(self, graph: TaskGraph,
                     wanted: Optional[list[str]] = None) -> int:
        """Register a submitted graph; returns its graph index.

        ``wanted`` keys (default: the graph's leaves) are pinned in
        distributed memory until :meth:`release_wanted` is called —
        they back the client's futures.
        """
        if not self.workers:
            raise RuntimeError("no workers registered")
        graph.validate(allow_external=True)
        graph_index = self._n_graphs
        self._n_graphs += 1
        wanted = list(wanted) if wanted is not None else graph.leaves()
        wanted_set = set(wanted)

        order = graph.toposort()
        specs = graph.tasks
        tasks = self.tasks
        new_states: list[SchedulerTaskState] = []
        for name in order:
            if name in tasks:
                raise RuntimeError(f"key {name} already known to scheduler")
            ts = SchedulerTaskState(spec=specs[name],
                                    graph_index=graph_index,
                                    seq=len(tasks))
            ts.wanted = name in wanted_set
            tasks[name] = ts
            new_states.append(ts)

        # Wire dependencies (allowing references to older graphs' keys).
        for ts in new_states:
            for dep_name in ts.spec.dep_names:
                dep_ts = self.tasks.get(dep_name)
                if dep_ts is None:
                    raise RuntimeError(
                        f"task {ts.name} depends on unknown key {dep_name}"
                    )
                dep_ts.dependents.add(ts.name)
                dep_ts.remaining_dependents += 1
                if dep_ts.state != "memory":
                    ts.waiting_on.add(dep_name)

        plugins = self.plugins
        for ts in new_states:
            if plugins:
                for plugin in plugins:
                    plugin.task_added(
                        key=ts.name, group=ts.spec.group,
                        prefix=ts.spec.prefix,
                        deps=list(ts.spec.dep_names),
                        graph_index=graph_index, timestamp=self.env.now,
                    )
            self._transition(ts, "waiting", "update-graph")
            if ts.wanted:
                self._wanted_events[ts.name] = self.env.event()
        ready = [ts for ts in new_states if not ts.waiting_on]
        roots = [ts for ts in ready if not ts.spec.deps]
        if (self.config.root_coassignment
                and len(roots) >= 2 * len(self.workers)):
            # Root-task co-assignment (as in modern Dask): slice the
            # batch of simultaneously ready roots into contiguous slabs,
            # one per worker, so sibling chunks start out co-located and
            # their downstream consumers rarely need transfers.  Only
            # live workers get slabs: a silently-failed worker (dead,
            # unnoticed until its heartbeat deadline) would swallow a
            # whole slab and force a recovery round.  Each slab is
            # dispatched as one batched control-plane message — one
            # engine event per worker, not one per root task.
            workers = [w for w in self.workers.values() if not w.failed] \
                or list(self.workers.values())
            slab = -(-len(roots) // len(workers))
            for w_index, start in enumerate(range(0, len(roots), slab)):
                worker = workers[w_index % len(workers)]
                self._assign_slab(roots[start:start + slab], worker,
                                  stimulus="ready-on-submit")
            root_names = {ts.name for ts in roots}
            ready = [ts for ts in ready if ts.name not in root_names]
        for ts in ready:
            self._assign(ts, stimulus="ready-on-submit")

        self.log(
            "INFO",
            f"Receive graph {graph_index} ({len(new_states)} tasks, "
            f"{len(wanted)} wanted keys)",
        )
        return graph_index

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------
    def decide_worker(self, ts: SchedulerTaskState) -> Worker:
        """Pick the worker minimising occupancy + transfer cost.

        As in ``distributed.scheduler.decide_worker``: a task with
        dependencies considers the workers already holding them, plus
        any idle workers; only a dependency-less task (or one whose
        holders are all gone) considers the whole pool.  This keeps
        chains of tasks with their data unless somebody is starving —
        and when the balance is wrong, work stealing (not placement)
        moves the task, paying the data-movement price the paper's
        lessons-learned section describes.
        """
        dep_names = ts.spec.dep_names
        holders: dict[str, Worker] = {}
        store = self.proxy_store
        if dep_names:
            tasks = self.tasks
            registered = self.workers
            for dep_name in dep_names:
                if store is not None and store.has(dep_name):
                    # Pass-by-reference input: every worker resolves it
                    # from the shared data plane at the same cost, so
                    # holding a replica confers no locality advantage —
                    # the placement decoupling ProxyStore exists for.
                    continue
                for address, holder in tasks[dep_name].who_has.items():
                    # A holder must be registered *and alive*: inside
                    # the heartbeat window a silently-failed worker is
                    # still registered, and placing onto it strands the
                    # task until the next recovery pass.
                    if address in registered and not holder.failed:
                        holders[address] = holder
        if holders:
            # Score the holders: occupancy plus the transfer cost of
            # whatever dependencies each one is missing.  First-seen
            # wins ties, like the old candidate-dict iteration.
            best: Optional[Worker] = None
            best_score = float("inf")
            weight = self.config.locality_weight
            bandwidth = self.config.bandwidth_estimate
            occupancy = self.occupancy
            for address, worker in holders.items():
                transfer_bytes = 0
                for dep_name in dep_names:
                    if store is not None and store.has(dep_name):
                        continue
                    dep_ts = tasks[dep_name]
                    if address not in dep_ts.who_has:
                        transfer_bytes += dep_ts.nbytes
                score = (occupancy[address]
                         + weight * transfer_bytes / bandwidth)
                if score < best_score:
                    best_score = score
                    best = worker
            # The idle escape hatch the old pool sweep implemented:
            # among non-holders every candidate pays the full transfer
            # cost, so only the least-occupied one (earliest registered
            # on ties — the sweep's iteration order) can beat a holder,
            # and only when it clears the idleness threshold.
            idle = self.occupancy_index.least_occupied(exclude=holders)
            if idle is not None:
                idle_occ = occupancy[idle.address]
                mean_occ = (self._occupancy_total
                            / max(1, len(occupancy)))
                if (idle_occ < self.config.idle_fraction * mean_occ
                        or idle_occ == 0.0):
                    full_bytes = sum(
                        tasks[dep_name].nbytes for dep_name in dep_names
                        if store is None or not store.has(dep_name))
                    score = (idle_occ
                             + weight * full_bytes / bandwidth)
                    if score < best_score:
                        best = idle
            assert best is not None
            return best
        # No dependencies (or no live registered holder): the transfer
        # term is identical for every worker, so the whole-pool argmin
        # of the old code reduces to the least-occupied live worker.
        best = self.occupancy_index.least_occupied()
        if best is None:
            # Every registered worker is silently failed.  Keep the old
            # semantics: dispatch anyway (the attempt returns False and
            # the cascading-failure path recovers) rather than deadlock.
            best = self.occupancy_index.least_occupied(allow_failed=True)
        assert best is not None
        return best

    def gather_sources(self, ts: SchedulerTaskState) -> tuple[dict, dict]:
        """``who_has``/``sizes`` maps shipped with a dispatch message.

        Only live holders are listed: a failed-but-registered worker
        (dead inside its heartbeat window) would otherwise be offered
        as a fetch source and the assignee would try to gather from a
        corpse.  The worker-side gather re-checks liveness at fetch
        time; this filter keeps the dispatch snapshot honest too.
        """
        who_has = {}
        sizes = {}
        tasks = self.tasks
        for dep_name in ts.spec.dep_names:
            dep_ts = tasks[dep_name]
            who_has[dep_name] = [w for w in dep_ts.who_has.values()
                                 if not w.failed]
            sizes[dep_name] = dep_ts.nbytes
        return who_has, sizes

    def _start_processing(self, ts: SchedulerTaskState, worker: Worker,
                          stimulus: str) -> None:
        """Shared bookkeeping for putting a task into ``processing``."""
        ts.processing_on = worker
        ts.occupancy_contrib = self.estimate_duration(ts.spec)
        self._adjust_occupancy(worker.address, ts.occupancy_contrib)
        table = self._worker_processing.get(worker.address)
        if table is not None:
            table[ts.name] = None
        self._transition(ts, "processing", stimulus)

    def _stop_processing(self, ts: SchedulerTaskState) -> None:
        """Drop the task from its worker's processing reverse index."""
        if ts.processing_on is None:
            return
        table = self._worker_processing.get(ts.processing_on.address)
        if table is not None:
            table.pop(ts.name, None)

    def _assign(self, ts: SchedulerTaskState, stimulus: str,
                worker: Optional[Worker] = None) -> None:
        worker = worker or self.decide_worker(ts)
        self._start_processing(ts, worker, stimulus)
        who_has, sizes = self.gather_sources(ts)
        # One control-plane hop, then supervise the attempt.  A raw
        # timeout callback replaces a dedicated dispatch process: the
        # hop needs no generator of its own, and nothing ever waits on
        # or interrupts the in-flight message (steals and failure
        # recovery act on ``compute_process``, which exists only after
        # the hop lands).
        hop = self.env.timeout(self.config.control_latency)
        hop.callbacks.append(
            lambda _event: self._launch(ts, worker, who_has, sizes))
        ts.worker_process = hop

    def _launch(self, ts: SchedulerTaskState, worker: Worker,
                who_has: dict, sizes: dict) -> None:
        """The control-plane hop landed: start the attempt on its
        worker.  Without a timeout to race there is nothing for a
        supervising process to wait on — a completion callback on the
        compute process replicates ``_supervise``'s settle logic at two
        engine events per task fewer."""
        if self.task_timeout(ts.spec) > 0:
            self.env.process(
                self._supervise(ts, worker, who_has, sizes),
                name=f"dispatch-{ts.name}",
            )
            return
        proc = self.env.process(
            worker.compute_task(ts.spec, who_has, sizes, ts.graph_index),
            name=f"compute-{ts.name}",
        )
        ts.compute_process = proc
        proc.callbacks.append(
            lambda _event: self._attempt_settled(ts, worker, proc))

    def _attempt_settled(self, ts: SchedulerTaskState, worker: Worker,
                         proc) -> None:
        """Completion callback mirroring ``_supervise``'s tail."""
        if proc._ok is False:
            return  # unhandled failure: the engine raises after callbacks
        completed = proc.value
        if ts.compute_process is proc:
            ts.compute_process = None
        if (completed is False and worker.failed
                and worker.address in self.workers
                and not self._monitoring):
            self.handle_worker_failure(worker)

    def _assign_slab(self, slab: list[SchedulerTaskState], worker: Worker,
                     stimulus: str) -> None:
        """Place a slab of co-assigned root tasks on one worker with a
        single batched control-plane message (one engine event per
        worker per graph, instead of one per task)."""
        for ts in slab:
            self._start_processing(ts, worker, stimulus)
        self.env.process(
            self._dispatch_slab(list(slab), worker),
            name=f"dispatch-slab-{worker.address}",
        )

    def _dispatch_slab(self, slab: list[SchedulerTaskState],
                       worker: Worker):
        """Process: one control-plane hop carrying a whole root slab.

        Tasks without a timeout budget are launched through
        :meth:`Worker.compute_batch`, so a maximal run of consecutive
        no-timeout slab members costs one dispatch event instead of one
        spawned process per task.  A member with a timeout flushes the
        pending run (keeping launch order intact) and gets its own
        supervising process, exactly as :meth:`_launch` would do.
        """
        yield self.env.timeout(self.config.control_latency)
        batch: list[SchedulerTaskState] = []
        for ts in slab:
            # A recovery pass may have reassigned a slab member while
            # the message was in flight; the launch still happens (the
            # attempt returns False on the dead worker), matching the
            # per-task dispatch semantics.
            if self.task_timeout(ts.spec) > 0:
                self._flush_compute_batch(batch, worker)
                self._launch(ts, worker, {}, {})
            else:
                batch.append(ts)
        self._flush_compute_batch(batch, worker)

    def _flush_compute_batch(self, batch: list[SchedulerTaskState],
                             worker: Worker) -> None:
        """Launch the pending no-timeout slab run as one worker batch."""
        if not batch:
            return
        procs = worker.compute_batch(
            (ts.spec, {}, {}, ts.graph_index) for ts in batch)
        for ts, proc in zip(batch, procs):
            ts.compute_process = proc
            proc.callbacks.append(
                lambda _event, ts=ts, proc=proc:
                    self._attempt_settled(ts, worker, proc))
        batch.clear()

    def _dispatch(self, ts: SchedulerTaskState, worker: Worker,
                  who_has: dict, sizes: dict):
        """Process: control-plane hop, then run the task on the worker."""
        yield self.env.timeout(self.config.control_latency)
        completed = yield from self._supervise(ts, worker, who_has, sizes)
        return completed

    def _supervise(self, ts: SchedulerTaskState, worker: Worker,
                   who_has: dict, sizes: dict):
        """Run one task attempt on its worker and watch its timeout."""
        proc = self.env.process(
            worker.compute_task(ts.spec, who_has, sizes, ts.graph_index),
            name=f"compute-{ts.name}",
        )
        ts.compute_process = proc
        limit = self.task_timeout(ts.spec)
        if limit > 0:
            timer = self.env.timeout(limit)
            yield proc | timer
            if (not proc.triggered and ts.compute_process is proc
                    and ts.processing_on is worker):
                # The attempt overran its budget and nothing else (a
                # steal, a failure recovery) claimed it meanwhile: cut
                # it down and hand the decision back to the scheduler.
                proc.interrupt("timeout")
                completed = yield proc
                if ts.compute_process is proc:
                    ts.compute_process = None
                self.task_timed_out(ts, worker, limit)
                return completed
            if not proc.triggered:
                # Stolen/recovered while we watched the timer: wait out
                # the (already interrupted) process for its value.
                completed = yield proc
            else:
                completed = proc.value
        else:
            completed = yield proc
        if ts.compute_process is proc:
            ts.compute_process = None
        if (completed is False and worker.failed
                and worker.address in self.workers
                and not self._monitoring):
            # The worker died while (or before) running this task and no
            # liveness monitor will ever notice: a cascading failure —
            # e.g. an in-flight task reassigned by handle_worker_failure
            # to a worker that then also crashed — would otherwise leave
            # the task in "processing" forever.  When the monitor *is*
            # running, detection stays heartbeat-driven.
            self.handle_worker_failure(worker)
        return completed

    # ------------------------------------------------------------------
    # completion path
    # ------------------------------------------------------------------
    def task_finished(self, worker: Worker, name: str, nbytes: int,
                      start: float, stop: float) -> None:
        if worker.address not in self.workers:
            return  # ghost message from a removed/failed worker
        ts = self.tasks[name]
        if ts.state != "processing" or ts.processing_on is not worker:
            return  # late message for a task that moved on (steal race)
        duration = stop - start
        self.observe_duration(ts.spec, duration)
        self._adjust_occupancy(worker.address, -ts.occupancy_contrib)
        ts.occupancy_contrib = 0.0
        ts.nbytes = nbytes
        self._remember_replica(ts, worker)
        ts.worker_process = None
        self._stop_processing(ts)
        self._transition(ts, "memory", "task-finished")

        if ts.wanted:
            event = self._wanted_events.get(ts.name)
            if event is not None and not event.triggered:
                event.succeed(nbytes)

        tasks = self.tasks
        # Promote dependents whose last dependency just landed (in
        # deterministic key order; the common single-dependent case
        # skips the sort).
        dependents = ts.dependents
        for dep_name in (sorted(dependents) if len(dependents) > 1
                         else dependents):
            dep_ts = tasks[dep_name]
            dep_ts.waiting_on.discard(name)
            if dep_ts.state == "waiting" and not dep_ts.waiting_on:
                self._assign(dep_ts, stimulus="dep-ready")

        # Release upstream keys this completion may have unpinned.
        for dep_name in ts.spec.dep_names:
            dep_ts = tasks[dep_name]
            dep_ts.remaining_dependents -= 1
            self._maybe_release(dep_ts)
        # A result nothing depends on and no client holds is garbage
        # immediately (Dask releases it as soon as it has no referrers).
        self._maybe_release(ts)

    def task_erred(self, worker: Worker, name: str,
                   exception: BaseException) -> None:
        """A task raised on its worker: retry it or err it.

        Mirrors Dask: while the task has retry budget (``retries=`` on
        the spec, or the config-wide ``task_retries``) a failed attempt
        is rescheduled after an exponential backoff.  Once the budget is
        exhausted the task transitions to ``erred``, every transitive
        dependent that can no longer run is erred as well (stimulus
        ``upstream-erred``), and clients waiting on any of those keys
        see the original exception.
        """
        if worker.address not in self.workers:
            return
        ts = self.tasks[name]
        if ts.state != "processing" or ts.processing_on is not worker:
            return
        self._adjust_occupancy(worker.address, -ts.occupancy_contrib)
        ts.occupancy_contrib = 0.0
        ts.worker_process = None
        self._stop_processing(ts)
        if isinstance(exception, DataLostError):
            # Not the task's fault: a dependency replica vanished under
            # it (its holder crashed after assignment).  Reschedule with
            # fresh ``who_has`` without spending user retry budget —
            # Dask likewise retries gather failures rather than erring.
            self.log("WARNING",
                     f"Task {name} lost an input replica ({exception}); "
                     f"rescheduling")
            self._reschedule(ts, stimulus="data-lost")
            return
        if self._maybe_retry(ts, exception):
            return
        self._transition(ts, "erred", "task-erred")
        self.log("ERROR", f"Task {name} marked as failed because of "
                          f"{type(exception).__name__}: {exception}")
        self._fail_wanted(ts, exception)
        self._poison_dependents(ts, exception)

    def _poison_dependents(self, ts: SchedulerTaskState,
                           exception: BaseException) -> None:
        """Err the transitive dependents that are now unrunnable."""
        stack = sorted(ts.dependents)
        seen = set()
        while stack:
            dep_name = stack.pop()
            if dep_name in seen:
                continue
            seen.add(dep_name)
            dep_ts = self.tasks[dep_name]
            if dep_ts.state in ("erred", "memory", "forgotten"):
                continue
            if dep_ts.state == "waiting":
                # waiting -> processing -> erred is the legal path; the
                # short-circuit stimulus records why.
                self._transition(dep_ts, "processing", "upstream-erred")
            if dep_ts.state == "processing":
                self._stop_processing(dep_ts)
                self._transition(dep_ts, "erred", "upstream-erred")
            self._fail_wanted(dep_ts, exception)
            stack.extend(sorted(dep_ts.dependents))

    # ------------------------------------------------------------------
    # retries, backoff, timeouts
    # ------------------------------------------------------------------
    def retry_budget(self, ts: SchedulerTaskState) -> int:
        """Remaining retries (spec ``retries=`` overrides the config)."""
        if ts.retries_left is None:
            spec_retries = ts.spec.retries
            ts.retries_left = (spec_retries if spec_retries is not None
                               else self.config.task_retries)
        return ts.retries_left

    def task_timeout(self, spec: TaskSpec) -> float:
        """Effective per-task timeout; 0 disables enforcement."""
        if spec.timeout is not None:
            return spec.timeout
        return self.config.task_timeout

    def _maybe_retry(self, ts: SchedulerTaskState,
                     exception: BaseException) -> bool:
        """Consume one retry and schedule the re-attempt; False when the
        budget is exhausted (caller proceeds down the erred path)."""
        if self.retry_budget(ts) <= 0:
            return False
        ts.retries_left -= 1
        ts.retry_count += 1
        delay = (self.config.retry_backoff_base
                 * self.config.retry_backoff_factor ** (ts.retry_count - 1))
        self._transition(ts, "released", "retry")
        ts.processing_on = None
        ts.compute_process = None
        ts.retry_pending = True
        self.log("WARNING",
                 f"Task {ts.name} attempt {ts.retry_count} failed with "
                 f"{type(exception).__name__}: {exception}; retrying in "
                 f"{delay:.3f}s ({ts.retries_left} retries left)")
        self.env.process(self._retry_later(ts, delay),
                         name=f"retry-{ts.name}")
        return True

    def _retry_later(self, ts: SchedulerTaskState, delay: float):
        """Process: exponential-backoff pause, then re-assignment."""
        yield self.env.timeout(delay)
        ts.retry_pending = False
        if ts.state != "released":
            return  # something else (recovery, release) moved the task on
        self._reschedule(ts, stimulus="retry")

    def _reschedule(self, ts: SchedulerTaskState, stimulus: str) -> None:
        """Put a ``processing``/``released`` task back on the runnable
        path, re-resolving dependencies that were lost meanwhile."""
        if ts.state == "processing":
            self._stop_processing(ts)
            self._transition(ts, "released", stimulus)
            ts.processing_on = None
            ts.compute_process = None
        if ts.state != "released":
            return
        self._transition(ts, "waiting", stimulus)
        ts.waiting_on = set()
        for dep_name in ts.spec.dep_names:
            dep_ts = self.tasks[dep_name]
            if self._dep_available(dep_ts):
                continue
            ts.waiting_on.add(dep_ts.name)
            if dep_ts.state in ("memory", "released", "forgotten"):
                # An input was lost while this task waited: rebuild it.
                # No remaining_dependents adjustment — the failed
                # attempt never consumed it, so its claim still counts.
                self._resubmit(dep_ts, set())
        if not ts.waiting_on:
            if self.workers:
                self._assign(ts, stimulus=stimulus)
            else:
                self._degrade_no_workers()

    def task_timed_out(self, ts: SchedulerTaskState, worker: Worker,
                       limit: float) -> None:
        """The per-task timeout elapsed: the attempt was interrupted on
        its worker; retry or err exactly like a raised exception."""
        if ts.state != "processing" or ts.processing_on is not worker:
            return
        self._adjust_occupancy(worker.address, -ts.occupancy_contrib)
        ts.occupancy_contrib = 0.0
        ts.worker_process = None
        self._stop_processing(ts)
        exception = TimeoutError(
            f"task {ts.name} exceeded its {limit:g}s timeout on "
            f"{worker.address}")
        if self._maybe_retry(ts, exception):
            return
        self._transition(ts, "erred", "task-timeout")
        self.log("ERROR", f"Task {ts.name} marked as failed because of "
                          f"TimeoutError: {exception}")
        self._fail_wanted(ts, exception)
        self._poison_dependents(ts, exception)

    def _fail_wanted(self, ts: SchedulerTaskState,
                     exception: BaseException) -> None:
        event = self._wanted_events.get(ts.name)
        if event is not None and not event.triggered:
            event.fail(exception)
            # Delivery is best-effort: when one recovery pass fails
            # several wanted keys, the client's all_of consumes only
            # the first failure — the rest would crash the simulation
            # as unhandled.  Defused failures still raise in any
            # process that yields on the event.
            event._defused = True

    def _maybe_release(self, ts: SchedulerTaskState) -> None:
        if ts.state != "memory":
            return
        if ts.wanted or ts.remaining_dependents > 0:
            return
        for worker in ts.who_has.values():
            worker.free_keys([ts.name])
        self._forget_replicas(ts)
        if self.proxy_store is not None:
            # Nobody will resolve this key again: drop its blob (and
            # emit the proxy_evict closing the put/resolve lineage).
            self.proxy_store.evict(ts.name)
        self._transition(ts, "released", "no-dependents")
        self._transition(ts, "forgotten", "gc")

    # ------------------------------------------------------------------
    # client-facing helpers
    # ------------------------------------------------------------------
    def add_replica(self, worker: Worker, name: str) -> None:
        """A worker fetched a copy of ``name``; track it for release."""
        ts = self.tasks.get(name)
        if ts is not None and ts.state == "memory":
            self._remember_replica(ts, worker)

    def _remember_replica(self, ts: SchedulerTaskState,
                          worker: Worker) -> None:
        # Reached from the fetch retry loop after a yield; add_replica
        # already revalidates (``ts.state == "memory"``) before calling
        # in, so a key released meanwhile never lands here.
        ts.who_has[worker.address] = worker  # repro: allow[conc-cross-context-mutation]
        held = self._has_what.get(worker.address)
        if held is not None:
            held[ts.name] = None

    def _forget_replicas(self, ts: SchedulerTaskState) -> None:
        for address in ts.who_has:
            held = self._has_what.get(address)
            if held is not None:
                held.pop(ts.name, None)
        ts.who_has.clear()

    def wanted_event(self, name: str):
        return self._wanted_events[name]

    def release_wanted(self, names: list[str]) -> None:
        """Client dropped its futures; unpin and maybe free the keys."""
        for name in names:
            ts = self.tasks.get(name)
            if ts is None:
                continue
            ts.wanted = False
            self._wanted_events.pop(name, None)
            self._maybe_release(ts)

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def describe(self) -> dict:
        return {
            "address": self.address,
            "hostname": self.node.name,
            "n_workers": len(self.workers),
            "config": self.config.describe(),
        }
