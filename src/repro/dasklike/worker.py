"""Worker model: thread pool, data store, event loop, and GC behaviour.

A Dask worker "executes many tasks within the context of a single POSIX
process through the use of an independent thread for each task"
(§III-E3).  That sentence is the joint the paper's whole correlation
scheme hinges on, so the simulated worker reproduces it literally:

* each worker owns a pool of stable POSIX-thread IDs;
* a task claims a thread for its whole execution, and every I/O
  operation it performs is attributed to that thread ID — the same ID
  the (extended) Darshan DXT module records;
* dependency data living on other workers is fetched over the network
  model before execution, producing the incoming-communication records
  of Fig. 5 and Table I;
* a Tornado-style event loop ticks in the background, and a garbage-
  collection model whose pause rate grows with memory pressure produces
  the ``gc_collect`` and ``unresponsive_event_loop`` warnings of Fig. 7.
"""

from __future__ import annotations

from typing import Optional

from ..platform import Node
from ..sim import Environment, Interrupt, RandomStreams, Store
from .config import DaskConfig
from .records import (
    CommRecord,
    LogEntry,
    SpillRecord,
    TaskRun,
    WarningRecord,
)
from .states import TransitionRecord
from .taskgraph import TaskSpec

__all__ = ["Worker", "PassthroughIO", "DataLostError"]


class DataLostError(RuntimeError):
    """A dependency replica vanished before it could be fetched.

    Raised by the gather path when every recorded holder of an input is
    dead or gone.  The scheduler treats it as a *reschedule* signal —
    recompute the input, re-run the task — rather than a task error, so
    it never consumes user retry budget (mirrors Dask's handling of
    ``gather_dep`` failures)."""


class PassthroughIO:
    """Uninstrumented I/O layer: forwards straight to the PFS.

    The Darshan runtime (:mod:`repro.darshan.runtime`) provides a
    drop-in replacement that records counters and DXT segments; this
    class defines the interface contract.
    """

    def __init__(self, pfs):
        self.pfs = pfs

    def io(self, path: str, op: str, offset: int, length: int,
           thread_id: int):
        record = yield self.pfs.env.process(
            self.pfs.io(path, op, offset, length)
        )
        return record


class Worker:
    """One simulated ``dask worker`` process."""

    def __init__(self, env: Environment, index: int, node: Node,
                 config: DaskConfig, streams: RandomStreams,
                 network, io_layer, nthreads: int = 8):
        self.env = env
        self.index = index
        self.node = node
        self.config = config
        self.streams = streams
        self.network = network
        self.io_layer = io_layer
        self.nthreads = nthreads

        # Address derivation: one fake IP per node, one port per worker.
        self.ip = f"10.{node.switch}.{int(node.name[3:]) % 250}.1"
        self.port = 40000 + index
        self.address = f"{self.ip}:{self.port}"
        self.name = f"worker-{index}"

        # Stable pthread IDs, one per executor thread (plus implicit
        # event-loop thread at slot 0 which never runs tasks).
        base = 0x7F0000000000 + index * 0x100000
        self.thread_ids = [base + 0x1000 * (slot + 1)
                           for slot in range(nthreads)]
        self.threads = Store(env)
        for tid in self.thread_ids:
            self.threads.put(tid)

        # Distributed memory: key -> nbytes.  Insertion order doubles as
        # LRU order for the spill policy (accesses re-append).
        self.data: dict[str, int] = {}
        self.managed_bytes = 0
        #: Results evicted to node-local scratch: key -> nbytes.
        self.spilled: dict[str, int] = {}
        #: Every spill/unspill movement, in order.
        self.spill_events: list[SpillRecord] = []
        self._spilling = False

        # Tasks queued for a thread (visible to the stealing balancer).
        self.ready: dict[str, "object"] = {}
        self.executing: set[str] = set()

        # Observations.
        self.task_runs: list[TaskRun] = []
        self.comms: list[CommRecord] = []
        self.warnings: list[WarningRecord] = []
        self.logs: list[LogEntry] = []
        self.transitions: list[TransitionRecord] = []
        self.plugins: list = []

        self.scheduler = None  # attached by the scheduler
        #: Pass-by-reference data plane (see :mod:`repro.proxystore`);
        #: ``None`` keeps every byte on the classic peer-fetch path.
        self.proxy_store = None
        self._gc_until = 0.0
        self._inflight_fetch: dict[str, object] = {}
        self._started = False
        self._closed = False
        #: Set by :meth:`fail`: the process died (crash/OOM/node loss).
        self.failed = False
        #: Heartbeats are suppressed (not sent) while ``env.now`` is
        #: below this mark — the fault injector's "blackout" fault: the
        #: process is alive but its control channel is, from the
        #: scheduler's point of view, indistinguishable from a crash.
        self.blackout_until = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self.env.process(self._event_loop(), name=f"{self.name}-loop")
        self.env.process(self._gc_model(), name=f"{self.name}-gc")
        self.env.process(self._heartbeat(), name=f"{self.name}-heartbeat")
        self.log("INFO", f"Start worker at {self.address}, "
                         f"{self.nthreads} threads")

    def close(self) -> None:
        self._closed = True

    def fail(self) -> None:
        """Simulate a worker-process crash: stop everything, lose data.

        The scheduler learns of the death through missed heartbeats (or
        an explicit :meth:`~repro.dasklike.scheduler.Scheduler.handle_worker_failure`
        call) and recovers: lost keys are recomputed, in-flight tasks
        reassigned.
        """
        self.failed = True
        self._closed = True
        self.data.clear()
        self.spilled.clear()
        self.managed_bytes = 0

    def _heartbeat(self):
        """Periodic liveness signal to the scheduler."""
        interval = self.config.heartbeat_interval
        while not self._closed:
            yield self.env.timeout(interval)
            if self._closed or self.failed or self.scheduler is None:
                return
            if self.env.now < self.blackout_until:
                continue
            self.scheduler.heartbeat(self)

    @property
    def memory_pressure(self) -> float:
        if self.config.memory_limit <= 0:
            return 0.0
        return min(1.0, self.managed_bytes / self.config.memory_limit)

    def log(self, level: str, message: str) -> None:
        self.logs.append(LogEntry(
            source=self.address, time=self.env.now,
            level=level, message=message,
        ))

    def _record_spill(self, key: str, nbytes: int, direction: str) -> None:
        record = SpillRecord(
            worker=self.address, hostname=self.node.name, key=key,
            nbytes=nbytes, time=self.env.now, direction=direction,
        )
        self.spill_events.append(record)
        for plugin in self.plugins:
            plugin.spill_moved(record)

    # ------------------------------------------------------------------
    # background health processes
    # ------------------------------------------------------------------
    def _event_loop(self):
        """Tick loop: detects blocked-loop episodes like Tornado would."""
        interval = self.config.tick_interval
        while not self._closed:
            expected = self.env.now + interval
            yield self.env.timeout(interval)
            if self._closed:
                # close() landed while we were parked on the timeout;
                # a warning now would be attributed to a dead worker.
                return
            if self._gc_until > self.env.now:
                # The loop thread is stalled by a stop-the-world pause.
                stall_end = self._gc_until
                yield self.env.timeout(stall_end - self.env.now)
            delay = self.env.now - expected
            if delay > self.config.tick_warn_threshold:
                self._warn(
                    "unresponsive_event_loop", delay,
                    f"Event loop was unresponsive in Worker for {delay:.2f}s. "
                    "This is often caused by long-running GIL-holding "
                    "functions or moving large chunks of data.",
                )

    #: Sampling step of the GC hazard process, seconds.
    GC_SAMPLE_DT = 0.25

    def _gc_model(self):
        """Full-collection pauses at a rate driven by memory pressure.

        The pause hazard is re-evaluated every ``GC_SAMPLE_DT`` seconds
        (an inhomogeneous Poisson process via Bernoulli thinning), so
        short memory-pressure spikes — e.g. the window where oversized
        decoded partitions are resident — raise the collection rate
        immediately rather than after a long idle-rate gap.
        """
        cfg = self.config
        dt = self.GC_SAMPLE_DT
        while not self._closed:
            yield self.env.timeout(dt)
            if self._closed:
                # A pause sampled after close() would extend _gc_until
                # on a worker that no longer runs an event loop.
                return
            rate = cfg.gc_base_rate + cfg.gc_pressure_rate * (
                self.memory_pressure ** cfg.gc_pressure_exponent
            )
            if self.streams.uniform(f"gc.gap.{self.address}", 0.0, 1.0) \
                    >= min(1.0, rate * dt):
                continue
            pause = cfg.gc_pause_median * self.streams.lognormal_factor(
                f"gc.pause.{self.address}", cfg.gc_pause_sigma
            )
            self._gc_until = max(self._gc_until, self.env.now + pause)
            self._warn(
                "gc_collect", pause,
                f"full garbage collection took {pause * 1e3:.0f}ms",
            )

    def _warn(self, kind: str, duration: float, message: str) -> None:
        record = WarningRecord(
            source=self.address, hostname=self.node.name, kind=kind,
            time=self.env.now, duration=duration, message=message,
        )
        self.warnings.append(record)
        self.log("WARNING", message)
        for plugin in self.plugins:
            plugin.warning(record)

    # ------------------------------------------------------------------
    # transitions
    # ------------------------------------------------------------------
    def _transition(self, spec: TaskSpec, start: str, finish: str,
                    stimulus: str) -> None:
        record = TransitionRecord(
            key=spec.name, group=spec.group, prefix=spec.prefix,
            start_state=start, finish_state=finish,
            timestamp=self.env.now, stimulus=stimulus,
            worker=self.address, source=self.address,
        )
        self.transitions.append(record)
        for plugin in self.plugins:
            plugin.transition(record)

    # ------------------------------------------------------------------
    # dependency gathering
    # ------------------------------------------------------------------
    def _fetch_one(self, dep: str, sources: list, nbytes: int):
        """Process: pull one remote key from a peer worker.

        Never fails as a process — a fetch whose initiating task was
        released mid-gather may have no waiter left, and an unhandled
        process failure would crash the engine (and a *joined* waiter
        would see a phantom dependency-lost error for data that another
        attempt still delivers).  Instead it returns True when the key
        landed and False when it could not (every holder dead, or this
        worker died mid-transfer); callers detect the miss from
        ``self.data`` after their waits and raise their own
        :class:`DataLostError`.
        """
        candidates = list(sources)
        while True:
            live = [w for w in candidates if not w.failed]
            if not live and self.scheduler is not None:
                # The dispatch-time snapshot went stale while we were
                # transferring; consult the scheduler's *current*
                # replica map before giving up.
                dep_ts = self.scheduler.tasks.get(dep)
                if dep_ts is not None:
                    live = [w for w in dep_ts.who_has.values()
                            if not w.failed]
            if not live:
                return False
            local = [w for w in live if w.node.name == self.node.name]
            if local:
                src = local[0]
            else:
                src = self.streams.choice(f"fetch.{self.address}", live)
            start = self.env.now
            yield self.env.process(
                self.network.transfer(src.node, self.node, nbytes)
            )
            if self.failed:
                # The process died while this transfer was in flight:
                # the bytes evaporate with it — no record, no replica,
                # no ``managed_bytes`` (a dead worker's accounting was
                # zeroed by :meth:`fail` and must stay zero).
                return False
            if src.failed:
                # The *source* died mid-transfer: the stream was cut
                # and whatever arrived is garbage.  Drop the attempt —
                # no comm record, no accounting — and retry against the
                # remaining holders.
                candidates = [w for w in live if w is not src]
                continue
            record = CommRecord(
                key=dep,
                src_worker=src.address, dst_worker=self.address,
                src_host=src.node.name, dst_host=self.node.name,
                nbytes=nbytes, start=start, stop=self.env.now,
                same_node=src.node.name == self.node.name,
                same_switch=src.node.switch == self.node.switch,
            )
            self.comms.append(record)
            for plugin in self.plugins:
                plugin.communication(record)
            self.data[dep] = nbytes
            self.managed_bytes += nbytes
            # The scheduler tracks replicas so it can free every copy
            # later.
            if self.scheduler is not None:
                self.scheduler.add_replica(self, dep)
            self.maybe_spill()
            return True

    def _gather(self, spec: TaskSpec, who_has: dict, sizes: dict):
        """Process: ensure every dependency of ``spec`` is local."""
        waits = []
        for dep_name in spec.dep_names:
            if dep_name in self.data:
                continue
            if dep_name in self.spilled:
                # Local but evicted: read it back from scratch.
                waits.append(self.env.process(
                    self.unspill(dep_name), name=f"unspill-{dep_name}"))
                continue
            if sizes.get(dep_name, 0) == 0:
                # Metadata-only results (e.g. collective-training round
                # markers) ride along on scheduler messages; no worker
                # data-channel transfer happens, so none is recorded.
                self.data[dep_name] = 0
                if self.scheduler is not None:
                    self.scheduler.add_replica(self, dep_name)
                continue
            inflight = self._inflight_fetch.get(dep_name)
            if inflight is None:
                if (self.proxy_store is not None
                        and self.proxy_store.has(dep_name)):
                    # Pass-by-reference input: resolve it through the
                    # data plane instead of the peer-fetch path.
                    inflight = self.env.process(
                        self._resolve_proxy(dep_name,
                                            sizes.get(dep_name, 0)),
                        name=f"resolve-{dep_name}",
                    )
                else:
                    # The who_has snapshot was taken at dispatch time;
                    # any of its holders may have died since.  Filter
                    # corpses, then fall back to the scheduler's
                    # *current* replica map (another copy may exist)
                    # before giving up.
                    sources = [w for w in who_has.get(dep_name, ())
                               if not w.failed]
                    if not sources and self.scheduler is not None:
                        dep_ts = self.scheduler.tasks.get(dep_name)
                        if dep_ts is not None:
                            sources = [w for w in dep_ts.who_has.values()
                                       if not w.failed]
                    if not sources:
                        raise DataLostError(
                            f"{self.address}: no live source for "
                            f"dependency {dep_name}"
                        )
                    inflight = self.env.process(
                        self._fetch_one(dep_name, sources,
                                        sizes[dep_name]),
                        name=f"fetch-{dep_name}",
                    )
                self._inflight_fetch[dep_name] = inflight

                def _cleanup(event, dep_name=dep_name):
                    self._inflight_fetch.pop(dep_name, None)

                inflight.callbacks.append(_cleanup)
            waits.append(inflight)
        if waits:
            yield self.env.all_of(waits)
            if self.failed:
                return
            # Fetch processes never fail (see :meth:`_fetch_one`); a
            # dependency they could not deliver is simply absent.  Each
            # waiter decides for itself, so a task released mid-gather
            # never poisons the others and a lost input surfaces as the
            # reschedulable data-lost signal.
            missing = [dep for dep in spec.dep_names
                       if dep not in self.data
                       and dep not in self.spilled]
            if missing:
                raise DataLostError(
                    f"{self.address}: dependencies lost in flight: "
                    f"{', '.join(sorted(missing))}"
                )
        else:
            yield self.env.timeout(0.0)

    def _resolve_proxy(self, dep: str, nbytes: int):
        """Process: materialise one proxied dependency via the store.

        Follows the same never-fail contract as :meth:`_fetch_one`: on
        an unresolvable blob it falls back to the classic peer-fetch
        path, and when that is empty too it returns False for the
        gather post-check to turn into :class:`DataLostError`.
        """
        from ..proxystore import ProxyResolveError
        store = self.proxy_store
        try:
            got = yield from store.resolve(dep, self)
        except ProxyResolveError:
            # The backend lost the blob (or its owner died): fall back
            # to whichever live peers still hold a replica.
            sources = []
            if self.scheduler is not None:
                dep_ts = self.scheduler.tasks.get(dep)
                if dep_ts is not None:
                    sources = [w for w in dep_ts.who_has.values()
                               if not w.failed]
            if not sources:
                return False
            return (yield from self._fetch_one(dep, sources, nbytes))
        if self.failed:
            # Died while resolving: the bytes evaporate unaccounted.
            return False
        self.data[dep] = got
        self.managed_bytes += got
        if self.scheduler is not None:
            self.scheduler.add_replica(self, dep)
        self.maybe_spill()
        return True

    # ------------------------------------------------------------------
    # task execution
    # ------------------------------------------------------------------
    def _queue_ready(self, name: str, get_event) -> None:
        """Add a task to the stealable queue, announcing empty -> non-
        empty flips so the scheduler's occupancy index tracks which
        workers are steal candidates without sweeping the pool."""
        was_empty = not self.ready
        self.ready[name] = get_event
        if was_empty and self.scheduler is not None:
            self.scheduler.worker_ready_changed(self, True)

    def _unqueue_ready(self, name: str) -> None:
        if self.ready.pop(name, None) is None:
            return
        if not self.ready and self.scheduler is not None:
            self.scheduler.worker_ready_changed(self, False)

    def compute_batch(self, entries) -> list:
        """Start one compute process per entry off a **single** dispatch
        event.

        ``entries`` yields ``(spec, who_has, sizes, graph_index)``
        tuples.  The engine's :meth:`Environment.process_batch` resumes
        every process from one ``Initialize`` event, so a worker drain
        of *n* co-dispatched tasks costs one engine event instead of
        *n* — the tasks still start in entry order, exactly as
        consecutive per-task spawns would have.  Returns the
        :class:`Process` objects in entry order.
        """
        return self.env.process_batch(
            (self.compute_task(spec, who_has, sizes, graph_index),
             f"compute-{spec.name}")
            for spec, who_has, sizes, graph_index in entries)

    def compute_task(self, spec: TaskSpec, who_has: dict, sizes: dict,
                     graph_index: int):
        """Process: the full worker-side life of one task.

        Returns True if the task ran to completion here, False if it was
        stolen while queued.
        """
        if self.failed:
            # Dispatched to a process that already died (the scheduler
            # has not detected the crash yet): refuse immediately so
            # the dispatch return path can recover, instead of playing
            # out a zombie execution that pollutes provenance records.
            yield self.env.timeout(0.0)
            return False
        self._transition(spec, "released", "waiting", "compute-task")
        has_remote = any(True for _ in spec.deps)
        if has_remote:
            self._transition(spec, "waiting", "fetch", "ensure-communicating")
            try:
                yield self.env.process(self._gather(spec, who_has, sizes))
            except Interrupt as exc:
                # Scheduler-side timeout fired while we were still
                # fetching inputs; in-flight fetches finish on their
                # own (and cache their result for any retry).
                self._transition(spec, "fetch", "released",
                                 str(exc.cause or "timeout"))
                return False
            except (OSError, ValueError, RuntimeError) as exc:
                if self.failed:
                    return False
                self._transition(spec, "fetch", "erred", "task-erred")
                self.log("ERROR",
                         f"Gather Failed. Key: {spec.name}, "
                         f"Exception: {type(exc).__name__}: {exc}")
                try:
                    yield self.env.timeout(self.config.control_latency)
                except Interrupt:
                    pass  # timeout raced the error report; report anyway
                self.scheduler.task_erred(self, spec.name, exc)
                return True
        self._transition(spec, "fetch" if has_remote else "waiting",
                         "ready", "all-deps-local")

        # Queue for an executor thread; the balancer may steal us here.
        get_event = self.threads.get()
        self._queue_ready(spec.name, get_event)
        try:
            thread_id = yield get_event
        except Interrupt as exc:
            # Stolen or timed out: withdraw our claim on the thread pool.
            self._unqueue_ready(spec.name)
            if get_event.triggered:
                self.threads.put(get_event.value)
            else:
                self.threads.cancel(get_event)
            self._transition(spec, "ready", "released",
                             str(exc.cause or "steal"))
            return False
        self._unqueue_ready(spec.name)

        self.executing.add(spec.name)
        self._transition(spec, "ready", "executing", "thread-granted")
        exec_start = self.env.now
        io_time = 0.0
        compute_time = 0.0
        # The task's result materialises incrementally while it runs, so
        # its memory is accounted from execution start — long decoding
        # tasks (read_parquet) pressure the worker for their whole span.
        self.managed_bytes += spec.output_nbytes
        materialised = False
        failure: Optional[BaseException] = None
        interrupted: Optional[str] = None
        try:
            # Per-task coordination overhead: deserialization, GIL,
            # executor hand-off.  Not computation, not I/O.
            overhead = self.config.task_overhead * \
                self.streams.lognormal_factor(
                    f"overhead.{self.address}",
                    self.config.task_overhead_sigma)
            if overhead > 0:
                yield self.env.timeout(overhead)
            for op in spec.reads:
                t0 = self.env.now
                yield from self.io_layer.io(op.path, "read", op.offset,
                                            op.length, thread_id)
                io_time += self.env.now - t0
            if spec.compute_time > 0:
                noise = self.streams.lognormal_factor(
                    f"compute.{self.address}", self.config.compute_noise_sigma
                )
                gc_drag = 1.0 + 0.3 * self.memory_pressure
                compute_time = (
                    spec.compute_time / self.node.speed * noise * gc_drag
                )
                yield self.env.timeout(compute_time)
            for op in spec.writes:
                t0 = self.env.now
                yield from self.io_layer.io(op.path, "write", op.offset,
                                            op.length, thread_id)
                io_time += self.env.now - t0
            materialised = True
        except (OSError, ValueError, RuntimeError) as exc:
            # User-code/IO failure: the task errs rather than crashing
            # the worker, as a raised exception inside a real Dask task
            # would.
            failure = exc
        except Interrupt as exc:
            # Scheduler-side per-task timeout: abandon the execution.
            # The finally block rolls back the result reservation and
            # returns the thread; the scheduler errs/retries the task.
            interrupted = str(exc.cause or "timeout")
        finally:
            if not materialised and not self.failed:
                # Roll back the result reservation — unless the worker
                # died meanwhile: :meth:`fail` already zeroed the
                # accounting, and subtracting again would leak a
                # negative balance into the corpse.
                self.managed_bytes -= spec.output_nbytes
            self.executing.discard(spec.name)
            self.threads.put(thread_id)

        if interrupted is not None:
            self._transition(spec, "executing", "released", interrupted)
            return False

        if self.failed:
            # The process died while this task ran: nothing to report;
            # the scheduler's failure handling re-dispatches the task.
            return False

        if failure is not None:
            self._transition(spec, "executing", "erred", "task-erred")
            self.log("ERROR",
                     f"Compute Failed. Key: {spec.name}, "
                     f"Exception: {type(failure).__name__}: {failure}")
            try:
                yield self.env.timeout(self.config.control_latency)
            except Interrupt:
                pass  # timeout raced the error report; report anyway
            self.scheduler.task_erred(self, spec.name, failure)
            return True

        # Memory was reserved at execution start; only register the key.
        self.data[spec.name] = spec.output_nbytes
        self._transition(spec, "executing", "memory", "task-finished")
        self.maybe_spill()

        run = TaskRun(
            key=spec.name, group=spec.group, prefix=spec.prefix,
            worker=self.address, hostname=self.node.name,
            thread_id=thread_id, start=exec_start, stop=self.env.now,
            output_nbytes=spec.output_nbytes, graph_index=graph_index,
            compute_time=compute_time,
            io_time=io_time,
            n_reads=len(spec.reads), n_writes=len(spec.writes),
        )
        self.task_runs.append(run)
        for plugin in self.plugins:
            plugin.task_finished(run)

        if (self.proxy_store is not None
                and self.proxy_store.should_proxy(spec.output_nbytes)):
            # Stage the output into the data plane before announcing
            # completion, so every consumer the scheduler dispatches
            # next sees the proxy instead of a peer-transfer cost.
            yield from self.proxy_store.put(
                spec.name, spec.output_nbytes, self)
            if self.failed:
                return False

        # Report back to the scheduler after a control-plane hop.  A
        # timeout interrupt racing this hop loses: the work is done and
        # the result registered, so completion wins the race.
        try:
            yield self.env.timeout(self.config.control_latency)
        except Interrupt:
            pass
        self.scheduler.task_finished(self, spec.name, spec.output_nbytes,
                                     exec_start, self.env.now)
        return True

    # ------------------------------------------------------------------
    # memory management
    # ------------------------------------------------------------------
    def free_keys(self, keys) -> None:
        for key in keys:
            nbytes = self.data.pop(key, None)
            if nbytes is not None:
                self.managed_bytes -= nbytes
            self.spilled.pop(key, None)

    # -- spill-to-disk (distributed's memory.target behaviour) ----------
    def _spill_threshold(self) -> float:
        return self.config.memory_spill_fraction * self.config.memory_limit

    def maybe_spill(self) -> None:
        """Kick the spill process if memory crossed the target."""
        if (self.config.memory_spill_fraction <= 0
                or self._spilling or self._closed):
            return
        if self.managed_bytes <= self._spill_threshold():
            return
        self._spilling = True
        self.env.process(self._spill_loop(), name=f"{self.name}-spill")

    def _spill_loop(self):
        """Evict LRU results to local scratch until below the low mark."""
        low = self.config.memory_spill_low * self.config.memory_limit
        try:
            while (self.managed_bytes > low and self.data
                   and not self._closed):
                # Oldest inserted = least recently used; skip results of
                # currently executing tasks (still materialising).
                key = next((k for k in self.data
                            if k not in self.executing), None)
                if key is None:
                    return
                nbytes = self.data.pop(key)
                self.managed_bytes -= nbytes
                # The in-flight eviction must complete even if close()
                # lands during the scratch write: the bytes already left
                # memory, and the while-test re-reads every guard before
                # the next round.
                # repro: allow[conc-stale-loop-guard]
                yield self.env.timeout(
                    nbytes / self.config.spill_bandwidth)
                if self.failed:
                    return
                self.spilled[key] = nbytes
                self._record_spill(key, nbytes, "spill")
        finally:
            self._spilling = False

    def unspill(self, key: str):
        """Process: read one result back from scratch into memory."""
        nbytes = self.spilled.pop(key, None)
        if nbytes is None:
            yield self.env.timeout(0.0)
            return
        yield self.env.timeout(nbytes / self.config.spill_bandwidth)
        if self.failed:
            # Crashed during the scratch read: registering the bytes
            # now would resurrect data (and accounting) on a corpse.
            return
        self.data[key] = nbytes
        self.managed_bytes += nbytes
        self._record_spill(key, nbytes, "unspill")
        self.maybe_spill()

    def describe(self) -> dict:
        """Metadata for the application-layer provenance records."""
        return {
            "address": self.address,
            "name": self.name,
            "hostname": self.node.name,
            "nthreads": self.nthreads,
            "thread_ids": list(self.thread_ids),
            "memory_limit": self.config.memory_limit,
        }
