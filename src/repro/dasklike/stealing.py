"""Work-stealing balancer.

Dask's stealing extension periodically moves *queued* (not yet
executing) tasks from saturated workers to idle ones.  The paper's
lessons-learned section flags it as a double-edged sword: "Work
stealing is a runtime decision that may negatively impact overall
performance because of expensive data movements or unforeseen effects
in future task dispatching" (§V).  The ablation benchmark
``bench_ablation_stealing`` measures exactly that trade-off.

Implementation: every ``work_stealing_interval`` seconds the balancer
compares worker occupancies.  If the most loaded worker with queued
tasks exceeds the least loaded worker's occupancy by
``steal_ratio``, one queued task migrates: the victim's in-flight
worker process is interrupted (it withdraws its claim on the thread
pool), and the task is re-dispatched to the thief — which may have to
re-fetch the task's dependencies, the "expensive data movements" the
paper warns about.
"""

from __future__ import annotations

from .records import StealEvent
from .scheduler import Scheduler

__all__ = ["WorkStealing"]


class WorkStealing:
    """Scheduler extension implementing the balancing loop."""

    def __init__(self, scheduler: Scheduler):
        self.scheduler = scheduler
        self.env = scheduler.env
        self._running = False

    def start(self) -> None:
        if self._running or not self.scheduler.config.work_stealing:
            return
        self._running = True
        self.env.process(self._loop(), name="work-stealing")

    def stop(self) -> None:
        self._running = False

    def _loop(self):
        interval = self.scheduler.config.work_stealing_interval
        while self._running:
            yield self.env.timeout(interval)
            if not self._running:
                # stop() flipped the guard while we were parked on the
                # timeout; a balancing round now would steal on behalf
                # of a component that asked us to shut down.
                return
            self.balance()

    # ------------------------------------------------------------------
    def balance(self) -> int:
        """One balancing round; returns the number of tasks moved.

        Candidate selection runs off the scheduler's occupancy index —
        two heap queries — instead of sorting every worker each
        interval.  A worker can be dead (``failed``) yet still
        registered (a silent crash is only noticed at the next
        heartbeat deadline); the index skips corpses on both sides, so
        we never steal onto one, nor from a victim whose compute
        processes handle_worker_failure already tore down.
        """
        sched = self.scheduler
        index = sched.occupancy_index
        thief = index.least_occupied()
        if thief is None:
            return 0
        # Busiest live worker with a non-empty stealable queue; the
        # thief itself is never a victim.
        victim = index.busiest_stealable(exclude=(thief.address,))
        if victim is None:
            return 0
        victim_occ = sched.occupancy[victim.address]
        thief_occ = sched.occupancy[thief.address]
        if victim_occ <= sched.config.steal_ratio * max(thief_occ, 0.05):
            return 0
        # Steal the most recently queued task (deepest in the queue);
        # one move per round, like a gentle balancer.
        name = next(reversed(victim.ready))
        if self._steal(name, victim, thief):
            return 1
        return 0

    def _steal(self, name: str, victim, thief) -> bool:
        sched = self.scheduler
        if victim.failed or thief.failed:
            # Either endpoint died between candidate selection and the
            # steal (or balance was driven externally): interrupting a
            # dead victim's compute process — already torn down by
            # handle_worker_failure — or occupying a dead thief would
            # corrupt the occupancy accounting.
            return False
        ts = sched.tasks.get(name)
        if ts is None or ts.state != "processing":
            return False
        if ts.processing_on is not victim or ts.compute_process is None:
            return False
        proc = ts.compute_process
        if proc.triggered:
            return False
        proc.interrupt("steal")
        ts.compute_process = None

        estimate = ts.occupancy_contrib
        sched._adjust_occupancy(victim.address, -estimate)
        sched._adjust_occupancy(thief.address, estimate)
        event = StealEvent(
            key=name, victim=victim.address, thief=thief.address,
            time=self.env.now,
            victim_occupancy=sched.occupancy[victim.address],
            thief_occupancy=sched.occupancy[thief.address],
        )
        sched.steal_events.append(event)
        for plugin in sched.plugins:
            plugin.steal(event)
        sched.log("INFO", f"Moving {name} from {victim.address} "
                          f"to {thief.address}")

        sched._stop_processing(ts)
        ts.processing_on = thief
        table = sched._worker_processing.get(thief.address)
        if table is not None:
            table[ts.name] = None
        # All deps are in memory at steal time (the task was ready).
        # gather_sources drops holders that failed since the original
        # dispatch, so the thief never fetches from a corpse.
        who_has, sizes = sched.gather_sources(ts)
        ts.worker_process = self.env.process(
            sched._dispatch(ts, thief, who_has, sizes),
            name=f"steal-dispatch-{name}",
        )
        return True
