"""Occupancy-ordered worker index for O(1)-amortized placement.

Before this module existed, every placement decision swept
``Scheduler.workers`` (the ``decide_worker`` idle sweep and whole-pool
copy) and every stealing round sorted the full worker list.  Those are
O(workers) *per task transition* — invisible at the paper's 8-worker
scale, fatal at the ROADMAP's 10k-worker / 1M-task north star (the
scheduler-overhead knee of Böhm & Beránek, arXiv 2010.11105).

:class:`OccupancyIndex` replaces both sweeps with two lazily-maintained
heaps over ``(occupancy, registration-seq)`` keys:

* a min-heap answering *least occupied live worker* (placement's idle
  candidate and stealing's thief) — the "idle set keyed by occupancy
  band" the hotpath lint work-list called for, collapsed to its limit
  of one band per distinct occupancy value;
* a max-heap over the *ready set* (workers with queued, stealable
  tasks) answering *busiest victim candidate* for
  :meth:`WorkStealing.balance`.

Heap entries are immutable snapshots; occupancy updates push new
entries instead of editing old ones, and queries pop entries that no
longer match the live ``occupancy`` mapping (the scheduler's, shared by
reference, so external writes — tests poke it directly — merely stale
the heap instead of desyncing it).  A query that drains the heap
rebuilds it from the source of truth; a heap that grows past a small
multiple of the entry count is compacted.  Both make every operation
O(log workers) amortized.

Tie-breaking is load-bearing: the pre-index scheduler broke occupancy
ties by dict iteration order (first/last registered wins, depending on
the query).  The per-registration ``seq`` reproduces that order
exactly, which is what keeps the refactored scheduler's event streams
byte-identical to the originals (pinned by the parity suite).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Optional

__all__ = ["OccupancyIndex"]

#: Compaction threshold: rebuild a heap once it carries more than this
#: many entries beyond ``slack_factor`` per live member.  Rebuilds are
#: O(members) and happen at most once per ~7·members pushes, so pushes
#: stay O(log members) amortized.
_COMPACT_SLACK = 64
_COMPACT_FACTOR = 8


class OccupancyIndex:
    """Occupancy-ordered index over registered workers.

    Parameters
    ----------
    occupancy:
        The scheduler's live ``address -> occupancy`` mapping, shared
        by reference.  It stays the single source of truth; the index
        only caches orderings over it.
    """

    def __init__(self, occupancy: dict):
        self._current = occupancy
        #: address -> (worker, registration seq).  Insertion order
        #: mirrors ``Scheduler.workers``.
        self._members: dict[str, tuple] = {}
        self._seq = 0
        #: (occupancy, seq, address) — least occupied first.
        self._idle_heap: list = []
        #: (-occupancy, -seq, address) — busiest first, restricted to
        #: addresses in ``_stealable``.
        self._busy_heap: list = []
        #: Addresses with a non-empty worker ``ready`` queue, maintained
        #: by :meth:`Scheduler.worker_ready_changed` notifications.
        self._stealable: set = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, address: str) -> bool:
        return address in self._members

    # ------------------------------------------------------------------
    # membership and updates
    # ------------------------------------------------------------------
    def add(self, address: str, worker) -> None:
        """Register a worker; its seq reproduces dict insertion order."""
        self._seq += 1
        self._members[address] = (worker, self._seq)
        heapq.heappush(
            self._idle_heap,
            (self._current.get(address, 0.0), self._seq, address))

    def remove(self, address: str) -> None:
        self._members.pop(address, None)
        self._stealable.discard(address)

    def update(self, address: str, occupancy_value: float) -> None:
        """The worker's occupancy changed: push fresh heap snapshots."""
        member = self._members.get(address)
        if member is None:
            return
        seq = member[1]
        idle_heap = self._idle_heap
        heapq.heappush(idle_heap, (occupancy_value, seq, address))
        if self._stealable and address in self._stealable:
            heapq.heappush(self._busy_heap,
                           (-occupancy_value, -seq, address))
            self._maybe_compact()
        elif len(idle_heap) > (_COMPACT_SLACK
                               + _COMPACT_FACTOR * len(self._members)):
            self._rebuild_idle()

    def set_stealable(self, address: str, has_ready: bool) -> None:
        """A worker's ready queue flipped empty <-> non-empty."""
        if not has_ready:
            self._stealable.discard(address)
            return
        member = self._members.get(address)
        if member is None or address in self._stealable:
            return
        self._stealable.add(address)
        seq = member[1]
        heapq.heappush(self._busy_heap,
                       (-self._current.get(address, 0.0), -seq, address))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def least_occupied(self, exclude: Iterable[str] = (),
                       allow_failed: bool = False) -> Optional[object]:
        """Worker minimising ``(occupancy, registration order)``.

        Skips failed workers unless ``allow_failed`` (the no-live-
        workers fallback keeps pre-index placement semantics: during a
        total outage tasks are still dispatched somewhere, and the
        recovery path picks them back up).  ``exclude`` is a container
        of addresses — ``decide_worker`` passes its holder set so the
        idle candidate is always a non-holder.
        """
        heap = self._idle_heap
        # Fast path: the top snapshot is usually live and eligible —
        # return it without touching the set-aside machinery.
        if heap:
            occ, seq, address = heap[0]
            member = self._members.get(address)
            if (member is not None and member[1] == seq
                    and self._current.get(address) == occ):
                worker = member[0]
                if ((allow_failed or not worker.failed)
                        and address not in exclude):
                    return worker
        set_aside: list = []
        best = None
        rebuilt = False
        while True:
            while heap:
                occ, seq, address = heap[0]
                worker = self._live_entry(occ, seq, address)
                if worker is None:
                    heapq.heappop(heap)
                    continue
                if (worker.failed and not allow_failed) \
                        or address in exclude:
                    # Valid but ineligible for *this* query: park it so
                    # later queries (different exclusions) still see it.
                    set_aside.append(heapq.heappop(heap))
                    continue
                best = worker
                break
            if best is not None or rebuilt:
                break
            # Every snapshot was stale (external occupancy writes can
            # do that): rebuild once from the source of truth.
            self._rebuild_idle()
            rebuilt = True
        for item in set_aside:
            heapq.heappush(heap, item)
        return best

    def busiest_stealable(self, exclude: Iterable[str] = ()
                          ) -> Optional[object]:
        """Live worker with queued tasks maximising ``(occupancy,
        registration order)`` — the stealing victim candidate."""
        heap = self._busy_heap
        set_aside: list = []
        best = None
        while heap:
            neg_occ, neg_seq, address = heap[0]
            worker = self._live_entry(-neg_occ, -neg_seq, address)
            if worker is None or worker.failed \
                    or address not in self._stealable:
                heapq.heappop(heap)
                continue
            if not worker.ready:
                # Safety net against a missed empty-notification: fix
                # the flag so the next queued task re-announces it.
                self._stealable.discard(address)
                heapq.heappop(heap)
                continue
            if address in exclude:
                set_aside.append(heapq.heappop(heap))
                continue
            best = worker
            break
        for item in set_aside:
            heapq.heappush(heap, item)
        return best

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _live_entry(self, occ: float, seq: int, address: str):
        """The worker a snapshot refers to, or None when stale."""
        member = self._members.get(address)
        if member is None or member[1] != seq:
            return None
        if self._current.get(address) != occ:
            return None
        return member[0]

    def _maybe_compact(self) -> None:
        if len(self._idle_heap) > (_COMPACT_SLACK
                                   + _COMPACT_FACTOR * len(self._members)):
            self._rebuild_idle()
        if len(self._busy_heap) > (_COMPACT_SLACK
                                   + _COMPACT_FACTOR * len(self._stealable)):
            self._rebuild_busy()

    def _rebuild_idle(self) -> None:
        # In place: queries hold a reference to the list while popping.
        heap = self._idle_heap
        heap[:] = [
            (self._current.get(address, 0.0), seq, address)
            for address, (_worker, seq) in self._members.items()
        ]
        heapq.heapify(heap)

    def _rebuild_busy(self) -> None:
        heap = self._busy_heap
        heap[:] = [
            (-self._current.get(address, 0.0), -member[1], address)
            for address, member in (
                (a, self._members.get(a)) for a in sorted(self._stealable))
            if member is not None
        ]
        heapq.heapify(heap)
