"""Observable records produced by the simulated WMS runtime.

These are the raw observations the paper's instrumentation captures:
task executions with thread attribution, inter-worker communications,
runtime warnings (garbage collection, unresponsive event loops), and
free-text log lines from the client/scheduler/workers.  They carry the
shared identifiers the paper's FAIR discussion calls out (§V): worker
addresses and hostnames, POSIX thread IDs, and timestamps — the fields
that make records from different sources joinable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["TaskRun", "CommRecord", "WarningRecord", "LogEntry",
           "SpillRecord", "StealEvent"]


@dataclass(frozen=True)
class TaskRun:
    """One completed task execution on a worker thread."""

    key: str
    group: str
    prefix: str
    worker: str          # "ip:port" address
    hostname: str        # node name, joins with Darshan records
    thread_id: int       # pthread ID, joins with Darshan DXT records
    start: float         # executing began
    stop: float          # executing finished
    output_nbytes: int
    graph_index: int     # which submitted task graph this task came from
    compute_time: float  # pure compute portion (excludes in-task I/O)
    io_time: float       # in-task I/O portion
    n_reads: int = 0
    n_writes: int = 0

    @property
    def duration(self) -> float:
        return self.stop - self.start


@dataclass(frozen=True)
class CommRecord:
    """One incoming dependency transfer, from the receiver's viewpoint."""

    key: str             # the data key that moved
    src_worker: str
    dst_worker: str
    src_host: str
    dst_host: str
    nbytes: int
    start: float
    stop: float
    same_node: bool
    same_switch: bool

    @property
    def duration(self) -> float:
        return self.stop - self.start


@dataclass(frozen=True)
class WarningRecord:
    """A runtime health warning from a worker (or the scheduler)."""

    source: str          # worker address or "scheduler"
    hostname: str
    kind: str            # "unresponsive_event_loop" | "gc_collect"
    time: float
    duration: float
    message: str


@dataclass(frozen=True)
class LogEntry:
    """One free-text log line with its origin."""

    source: str          # "client" | "scheduler" | worker address
    time: float
    level: str           # "INFO" | "WARNING" | "ERROR"
    message: str


@dataclass(frozen=True)
class SpillRecord:
    """One movement between worker memory and node-local scratch."""

    worker: str
    hostname: str
    key: str
    nbytes: int
    time: float
    direction: str       # "spill" | "unspill"


@dataclass(frozen=True)
class StealEvent:
    """One work-stealing decision taken by the balancer."""

    key: str
    victim: str
    thief: str
    time: float
    victim_occupancy: float
    thief_occupancy: float
